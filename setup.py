"""Setup shim for environments without the `wheel` package (offline).

All metadata lives in pyproject.toml; this file only enables legacy
`pip install -e . --no-use-pep517` editable installs.
"""

from setuptools import setup

setup()
