"""Multi-platform competition: how much does pooled data matter?

The paper's Section V: "Many stores are registered on more than one
platform. The model could be more accurate if we can obtain the data from
multiple platforms."  We split one simulated market across two platforms
and compare site recommendations trained on one platform's (censored) log
vs the pooled log, judged against full-market demand.

    python examples/platform_competition.py
"""

from repro.extensions import DuopolyConfig, run_competition_experiment


def main() -> None:
    config = DuopolyConfig(
        scale=0.55,
        frac_only_a=0.3,
        frac_only_b=0.25,
        frac_both=0.45,
        platform_a_share=0.55,
        epochs=45,
    )
    result = run_competition_experiment(config)

    print(
        f"platform A sees {result.coverage_a:.0%} of the market's orders\n"
    )
    print(f"{'training data':<14}{'NDCG@3':>10}{'Precision@3':>14}{'RMSE':>10}")
    for key in ("platform_a", "pooled"):
        row = result[key]
        print(
            f"{key:<14}{row['NDCG@3']:>10.4f}"
            f"{row['Precision@3']:>14.4f}{row['RMSE']:>10.4f}"
        )
    print(
        f"\npooling both platforms' logs changes NDCG@3 by "
        f"{result.pooled_gain('NDCG@3'):+.1%} -- the paper's multi-platform "
        "limitation, quantified."
    )


if __name__ == "__main__":
    main()
