"""Compare the two delivery-time processes: formula vs courier agents.

``dispatch_mode="formula"`` stamps delivery times from the closed-form
congestion model; ``dispatch_mode="agents"`` lets them emerge from an
event-driven dispatcher over stateful courier agents (see
``repro.city.dispatch``).  Both produce the rush-hour capacity signature
the paper's motivation section describes.

    python examples/dispatch_modes.py
"""

import numpy as np

from repro.city import CityConfig, simulate
from repro.data import TimePeriod


def waiting_by_period(sim):
    per = {p: [] for p in TimePeriod}
    for o in sim.orders:
        per[o.period].append(o.total_minutes)
    return {p: float(np.mean(v)) if v else 0.0 for p, v in per.items()}


def main() -> None:
    base = dict(rows=8, cols=8, num_days=5, num_couriers=70, seed=3)
    formula = simulate(CityConfig(**base, dispatch_mode="formula"))
    agents = simulate(CityConfig(**base, dispatch_mode="agents"))

    print(f"formula: {formula.num_orders} orders; agents: {agents.num_orders} orders\n")
    wf = waiting_by_period(formula)
    wa = waiting_by_period(agents)

    print(f"{'period':<14}{'formula wait (min)':>20}{'agents wait (min)':>20}")
    for p in TimePeriod:
        print(f"{p.label:<14}{wf[p]:>20.1f}{wa[p]:>20.1f}")

    print(
        "\nBoth processes make the rush hours slower than the morning -- the"
        "\nformula via the supply-demand congestion factor, the agents via"
        "\nqueueing: every courier is still finishing the previous job."
    )
    for label, waits in (("formula", wf), ("agents", wa)):
        rush = waits[TimePeriod.NOON_RUSH]
        calm = waits[TimePeriod.MORNING]
        print(f"  {label}: noon rush {rush:.1f} min vs morning {calm:.1f} min")


if __name__ == "__main__":
    main()
