"""Online serving: train once, freeze a snapshot, answer queries fast.

The training-side model re-runs the full multi-graph propagation on every
``predict``; the serving layer (``repro.serve``) runs it once, freezes the
per-period embeddings, and serves top-k queries from a gather + small
matmuls -- with an LRU+TTL score cache, micro-batched concurrent scoring,
atomic hot swap for retrained models, and a retrieve-then-rank vector
index that shortlists candidate regions before the exact scorer runs.

    python examples/serve_online.py
"""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.city import tiny_dataset
from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer, save_model
from repro.data import SiteRecDataset
from repro.serve import ModelSnapshot, RecommendationService


def main() -> None:
    # 1. Train a small model (exactly as in quickstart.py).
    sim = tiny_dataset(seed=3)
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=0)
    model = O2SiteRec(
        dataset, split, O2SiteRecConfig(embedding_dim=20, capacity_dim=8)
    )
    trainer = Trainer(model, TrainConfig(epochs=40, lr=5e-3, patience=10))
    trainer.fit(split.train_pairs, dataset.pair_targets(split.train_pairs))

    # 2. The deployment hand-off: checkpoint -> frozen serving snapshot.
    save_model(model, "/tmp/o2_siterec_ckpt.npz")
    snapshot = ModelSnapshot.from_checkpoint(
        "/tmp/o2_siterec_ckpt.npz", dataset, split
    )
    snapshot.save("/tmp/o2_siterec_snap.npz")  # dataset-free artifact
    print(f"frozen snapshot {snapshot.snapshot_id}: {snapshot!r}")

    # 3. Snapshot scoring is identical to the model, but ~1000x faster.
    pairs = split.test_pairs[:20]
    t0 = time.perf_counter()
    cold = model.predict(pairs)
    cold_ms = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    warm = snapshot.predict(pairs)
    warm_ms = (time.perf_counter() - t0) * 1e3
    print(
        f"cold {cold_ms:.1f} ms vs snapshot {warm_ms:.2f} ms "
        f"({cold_ms / warm_ms:.0f}x); identical scores: "
        f"{bool(np.array_equal(cold, warm))}"
    )

    # 4. Serve top-k queries (cache + micro-batching under the hood).
    with RecommendationService(snapshot, default_k=3) as service:
        juice = snapshot.type_index("juice")
        print("\nTop sites for a new juice store:")
        for rec in service.query(juice, split.test_regions_for_type(juice)):
            print(
                f"  region {rec.region}: "
                f"predicted {rec.predicted_orders:.0f} orders/month"
            )

        # Concurrent load: callers share vectorised scoring passes.
        types = [t % snapshot.num_types for t in range(60)]
        with ThreadPoolExecutor(8) as pool:
            list(pool.map(lambda t: service.query(t, k=3), types))

        stats = service.stats()
        print(
            f"\nserved {stats['counters']['queries']} queries at "
            f"{stats['qps']:.0f} QPS; cache hits {stats['cache']['hits']}, "
            f"batches {stats['counters'].get('batches', 0)}"
        )
        print(
            "total latency p50/p99: "
            f"{stats['latency']['total']['p50_ms']:.2f} / "
            f"{stats['latency']['total']['p99_ms']:.2f} ms"
        )

        # 5. Hot swap: deploy a retrained model without dropping queries.
        trainer.fit(split.train_pairs, dataset.pair_targets(split.train_pairs))
        service.reload(ModelSnapshot.from_model(model))
        print(f"\nhot-swapped to snapshot {service.snapshot.snapshot_id}")
        print(f"post-reload top region: {service.query(juice, k=1)[0].region}")

    # 6. Retrieve-then-rank: attach a vector index so unconstrained
    #    queries probe IVF partitions of the exact score sheet instead of
    #    scanning every region, then re-rank survivors with the exact
    #    scorer (DESIGN.md section 10; `--index`/`O2_SERVE_INDEX` on the
    #    CLI).  The index rides inside the snapshot file either format.
    index = snapshot.build_index(kind="ivf", retrieve_m=16)
    snapshot.save("/tmp/o2_siterec_snap.arena", format="arena")
    info = index.describe()
    print(
        f"\nbuilt {info['kind']} index: {info['partitions']} partitions, "
        f"retrieve_m={info['retrieve_m']}, nprobe={info['nprobe']}, "
        f"{info['bytes'] / 1024:.1f} KiB"
    )
    with RecommendationService(snapshot, default_k=3, use_index=True) as fast:
        via_index = fast.query(juice)
        retrievals = fast.stats()["counters"]["retrievals"]
    with RecommendationService(snapshot, default_k=3, use_index=False) as exact:
        full_scan = exact.query(juice)
    identical = [(r.region, r.predicted_orders) for r in via_index] == [
        (r.region, r.predicted_orders) for r in full_scan
    ]
    recall = index.recall_against_full_scan(juice, k=3)
    print(
        f"retrieval recall@3: {recall:.3f}; indexed top-3 identical to "
        f"exact full scan: {identical} ({retrievals} retrieval pass)"
    )


if __name__ == "__main__":
    main()
