"""Cross-city transfer: pre-train in one city, recommend in another.

The paper names multi-city analysis as future work; this extension
pre-trains O2-SiteRec on a data-rich source city and transfers the
city-agnostic weights to a data-poor target city (see
``repro.extensions.transfer``).

    python examples/cross_city_transfer.py
"""

from repro.extensions import REGIMES, TransferConfig, run_transfer_experiment


def main() -> None:
    config = TransferConfig(
        source_scale=0.6,
        target_scale=0.55,
        target_train_frac=0.35,  # the target city has little history
        source_epochs=50,
        target_epochs=35,
        fine_tune_epochs=20,
    )
    print(
        f"source city scale {config.source_scale}, target scale "
        f"{config.target_scale} with only "
        f"{config.target_train_frac:.0%} of interactions for training\n"
    )

    result = run_transfer_experiment(config)
    print(f"transferred {result.parameters_transferred} parameter tensors\n")

    print(f"{'regime':<12}{'NDCG@3':>10}{'Precision@3':>14}{'RMSE':>10}")
    for regime in REGIMES:
        row = result[regime]
        print(
            f"{regime:<12}{row['NDCG@3']:>10.4f}"
            f"{row['Precision@3']:>14.4f}{row['RMSE']:>10.4f}"
        )
    print(
        f"\ntransfer vs scratch on NDCG@3: {result.improvement('NDCG@3'):+.1%}"
    )


if __name__ == "__main__":
    main()
