"""Quickstart: simulate a city, train O2-SiteRec, recommend store sites.

Runs in about a minute on a laptop:

    python examples/quickstart.py
"""

import numpy as np

from repro.city import tiny_dataset
from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer, recommend_sites
from repro.data import SiteRecDataset
from repro.metrics import evaluate_model


def main() -> None:
    # 1. A synthetic O2O city-month (stand-in for the Eleme order log).
    sim = tiny_dataset(seed=3)
    print(sim.summary())

    # 2. The observable dataset and the paper's 80/20 interaction split.
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=0)
    print(
        f"{len(dataset.store_regions)} store regions, "
        f"{len(split.train_pairs)} train / {len(split.test_pairs)} test pairs"
    )

    # 3. Train the full model (capacity model + hetero recommender).
    model = O2SiteRec(dataset, split, O2SiteRecConfig(embedding_dim=20, capacity_dim=8))
    trainer = Trainer(model, TrainConfig(epochs=40, lr=5e-3, patience=10))
    result = trainer.fit(split.train_pairs, dataset.pair_targets(split.train_pairs))
    print(
        f"trained {result.stopped_epoch} epochs, "
        f"loss {result.train_losses[0]:.4f} -> {result.train_losses[-1]:.4f}"
    )

    # 4. Evaluate on the held-out pairs.
    metrics = evaluate_model(model, dataset, split, top_n=5)
    print(
        f"NDCG@3 {metrics['NDCG@3']:.3f}  Precision@3 "
        f"{metrics['Precision@3']:.3f}  RMSE {metrics['RMSE']:.4f}"
    )

    # 5. Recommend sites for a juice store among held-out candidate regions.
    juice = dataset.type_index("juice")
    candidates = split.test_regions_for_type(juice)
    print(f"\nTop sites for a new juice store ({len(candidates)} candidates):")
    for rec in recommend_sites(
        model, juice, candidates, k=3, target_scale=dataset.target_scale
    ):
        row, col = dataset.grid.row_col(rec.region)
        actual = dataset.targets[rec.region, juice] * dataset.target_scale
        print(
            f"  region {rec.region} (row {row}, col {col}): "
            f"predicted {rec.predicted_orders:.0f} orders/month "
            f"(actual {actual:.0f})"
        )


if __name__ == "__main__":
    main()
