"""Supply-side study: quantify courier capacity and learn it from data.

Reproduces the paper's Section II-B analysis on a simulated month --
supply-demand ratios, delivery-time correlation, pressure-controlled
delivery scopes -- then trains the courier capacity model alone and shows
that its learned edge embeddings reconstruct delivery times.

    python examples/capacity_analysis.py
"""

import numpy as np

from repro.city import real_world_dataset
from repro.core import CourierCapacityModel
from repro.data import SiteRecDataset, TimePeriod
from repro.experiments import (
    delivery_scope_by_period,
    delivery_time_vs_ratio,
    supply_demand_by_bin,
)
from repro.graphs import CourierMobilityMultiGraph, RegionGeographicalGraph
from repro.optim import Adam


def main() -> None:
    sim = real_world_dataset(seed=7, scale=0.6)
    print(sim.summary(), "\n")

    # -- Fig. 1: supply, demand and their ratio over the day ---------------
    fig1 = supply_demand_by_bin(sim)
    print("hour  orders  couriers  ratio   (normalised)")
    for h, o, c, r in zip(fig1["hours"], fig1["orders"], fig1["couriers"], fig1["ratio"]):
        bar = "#" * int(o * 30)
        print(f"{h:4d}  {o:6.2f}  {c:8.2f}  {r:5.2f}  {bar}")

    # -- Fig. 2: delivery time tracks the ratio ----------------------------
    fig2 = delivery_time_vs_ratio(sim)
    print(
        f"\ncorrelation(delivery time, supply-demand ratio) = "
        f"{float(fig2['correlation']):.3f} (negative: shortage -> slow)"
    )

    # -- Fig. 3: pressure control shrinks rush-hour scopes -----------------
    fig3 = delivery_scope_by_period(sim)
    print("\naverage delivery scope by period:")
    for period, scope in zip(fig3["periods"], fig3["scope_m"]):
        print(f"  {period:13s} {scope:6.0f} m")

    # -- Learn capacity from the mobility multi-graph ----------------------
    dataset = SiteRecDataset.from_simulation(sim)
    geo = RegionGeographicalGraph.from_grid(dataset.grid)
    mobility = CourierMobilityMultiGraph.from_aggregates(
        dataset.aggregates, min_count=2
    )
    model = CourierCapacityModel(geo, embedding_dim=12, num_layers=2)
    optimizer = Adam(model.parameters(), lr=1e-2)

    print("\ntraining the courier capacity model (loss O1, Eq. 6):")
    for epoch in range(30):
        optimizer.zero_grad()
        losses = [
            model.reconstruction_loss(mobility.subgraph(p)) for p in TimePeriod
        ]
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        total = total * (1.0 / len(losses))
        total.backward()
        optimizer.step()
        if epoch % 10 == 0 or epoch == 29:
            print(f"  epoch {epoch:2d}: O1 = {float(total.data):.4f}")

    # How well do the learned edge embeddings explain delivery times?
    sg = mobility.subgraph(TimePeriod.NOON_RUSH)
    b = model.region_embeddings(sg)
    predicted = model.predict_delivery_time(
        model.edge_embeddings(b, sg.src, sg.dst)
    ).numpy()
    mae_minutes = float(np.abs(predicted - sg.delivery_time).mean()) * 60.0
    print(
        f"\nnoon-rush delivery-time reconstruction MAE: {mae_minutes:.1f} min "
        f"over {sg.num_edges} region pairs"
    )


if __name__ == "__main__":
    main()
