"""Mini model comparison: O2-SiteRec vs two baselines on a small city.

A minutes-scale version of the paper's Table III, using the experiment
harness directly:

    python examples/baseline_comparison.py
"""

from repro.experiments import (
    HarnessConfig,
    build_dataset,
    evaluate_model,
    train_baseline,
    train_o2siterec,
)


def main() -> None:
    config = HarnessConfig(rounds=1, scale=0.55, epochs=45, patience=12)
    dataset, split = build_dataset("real", seed=0, scale=config.scale)
    print(
        f"city: {dataset.num_regions} regions, {dataset.num_types} types, "
        f"{len(split.test_pairs)} held-out pairs\n"
    )

    rows = []
    for name in ("HGT", "GraphRec"):
        for setting in ("original", "adaption"):
            model = train_baseline(name, setting, dataset, split, config)
            result = evaluate_model(model, dataset, split, top_n=config.top_n)
            rows.append((f"{name}/{setting}", result))
    o2 = train_o2siterec(dataset, split, config)
    rows.append(("O2-SiteRec", evaluate_model(o2, dataset, split, top_n=config.top_n)))

    print(f"{'model':<22}{'NDCG@3':>10}{'Precision@3':>14}{'RMSE':>10}")
    for name, result in rows:
        print(
            f"{name:<22}{result['NDCG@3']:>10.4f}"
            f"{result['Precision@3']:>14.4f}{result['RMSE']:>10.4f}"
        )


if __name__ == "__main__":
    main()
