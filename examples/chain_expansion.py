"""Chain expansion planning: pick sites for several new outlets at once.

A light-meal chain wants to open outlets on an O2O platform.  We train
O2-SiteRec on the city's order history and rank every candidate region that
does not already host the chain's category, then show how courier capacity
shapes the shortlist (a site with great demand but chronically congested
couriers is downgraded by the model's capacity-aware S-U edges).

    python examples/chain_expansion.py
"""

import numpy as np

from repro.city import real_world_dataset
from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer, recommend_sites
from repro.data import SiteRecDataset, TimePeriod


def main() -> None:
    sim = real_world_dataset(seed=7, scale=0.6)
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=0)
    print(sim.summary())

    model = O2SiteRec(dataset, split, O2SiteRecConfig())
    Trainer(model, TrainConfig(epochs=60, lr=1e-2, patience=15)).fit(
        split.train_pairs, dataset.pair_targets(split.train_pairs)
    )

    chain_type = dataset.type_index("light_meal")
    # Candidate pool: held-out store regions (sites the model has no order
    # history for, exactly the new-site scenario).
    candidates = split.test_regions_for_type(chain_type)

    n_outlets = 5
    shortlist = recommend_sites(
        model,
        chain_type,
        candidates,
        k=n_outlets,
        target_scale=dataset.target_scale,
    )

    print(f"\nShortlist for {n_outlets} new light-meal outlets:")
    ratio = sim.fleet.ratio  # latent capacity, shown for interpretation only
    for rank, rec in enumerate(shortlist, start=1):
        row, col = dataset.grid.row_col(rec.region)
        archetype = sim.land.archetype_name(rec.region)
        noon_ratio = ratio[rec.region, int(TimePeriod.NOON_RUSH)]
        print(
            f"  #{rank} region {rec.region:3d} ({archetype:11s} row {row:2d} "
            f"col {col:2d}): predicted {rec.predicted_orders:6.0f} orders/month, "
            f"noon-rush capacity ratio {noon_ratio:.2f}"
        )

    # Sanity: how did the shortlist do against the (held-out) truth?
    truth = dataset.targets[candidates, chain_type]
    best_possible = np.sort(truth)[::-1][:n_outlets] * dataset.target_scale
    picked = (
        dataset.targets[[r.region for r in shortlist], chain_type]
        * dataset.target_scale
    )
    print(
        f"\nActual demand at picked sites: {picked.round(0).tolist()} "
        f"(best possible: {best_possible.round(0).tolist()})"
    )


if __name__ == "__main__":
    main()
