"""City atlas: visualise the synthetic city and the model's predictions.

Renders terminal heatmaps of land use, demand, courier capacity and the
trained model's predicted order counts for one store type.

    python examples/city_atlas.py
"""

import numpy as np

from repro import viz
from repro.city import ARCHETYPES, real_world_dataset
from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.data import SiteRecDataset, TimePeriod


def main() -> None:
    sim = real_world_dataset(seed=7, scale=0.6)
    dataset = SiteRecDataset.from_simulation(sim)
    grid = dataset.grid
    print(sim.summary(), "\n")

    symbols = {i: "DOR." [i] for i in range(len(ARCHETYPES))}
    print(
        viz.categorical_map(
            grid,
            sim.land.archetype,
            symbols=symbols,
            title="Land use (D=downtown O=office R=residential .=suburb)",
        ),
        "\n",
    )

    orders_per_region = dataset.aggregates.counts_sa.sum(axis=1)
    print(viz.ascii_heatmap(grid, orders_per_region, title="Orders served per region"), "\n")

    noon_ratio = sim.fleet.ratio[:, int(TimePeriod.NOON_RUSH)]
    print(
        viz.ascii_heatmap(
            grid, noon_ratio, title="Noon-rush supply-demand ratio (capacity)"
        ),
        "\n",
    )

    # Train and map predictions for one store type.
    split = dataset.split(seed=0)
    model = O2SiteRec(dataset, split, O2SiteRecConfig())
    result = Trainer(model, TrainConfig(epochs=50, lr=1e-2, patience=12)).fit(
        split.train_pairs, dataset.pair_targets(split.train_pairs)
    )
    print(viz.loss_curve(result.train_losses, title="Training loss"), "\n")

    juice = dataset.type_index("juice")
    predictions = np.zeros(grid.num_regions)
    pairs = np.stack(
        [
            dataset.store_regions,
            np.full(len(dataset.store_regions), juice, dtype=np.int64),
        ],
        axis=1,
    )
    predictions[dataset.store_regions] = model.predict(pairs)
    print(
        viz.ascii_heatmap(
            grid,
            predictions * dataset.target_scale,
            title="Predicted monthly juice orders per region",
        )
    )


if __name__ == "__main__":
    main()
