"""What-if analysis: how does courier capacity reshape site rankings?

Simulates the same city twice -- once with a tight courier fleet, once with
50% more couriers -- and compares where the top sites move.  Extra capacity
relaxes the pressure-controlled delivery scopes, so demand from farther
neighbourhoods becomes reachable and peripheral sites climb the ranking:
exactly the supply-side coupling the paper argues makes O2O site
recommendation different from brick-and-mortar.

    python examples/what_if_capacity.py
"""

import numpy as np

from repro.city import CityConfig, simulate
from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.data import SiteRecDataset, TimePeriod


def rank_sites(sim, store_type_name: str, k: int = 5):
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=0)
    model = O2SiteRec(dataset, split, O2SiteRecConfig())
    Trainer(model, TrainConfig(epochs=45, lr=1e-2, patience=12)).fit(
        split.train_pairs, dataset.pair_targets(split.train_pairs)
    )
    a = dataset.type_index(store_type_name)
    candidates = np.asarray(sorted(set(split.test_regions_for_type(a))))
    pairs = np.stack([candidates, np.full(len(candidates), a)], axis=1)
    scores = model.predict(pairs)
    order = np.argsort(-scores)[:k]
    return dataset, [(int(candidates[i]), float(scores[i])) for i in order]


def main() -> None:
    base = dict(rows=10, cols=10, num_days=10, seed=7)
    tight = simulate(CityConfig(**base, num_couriers=110))
    ample = simulate(CityConfig(**base, num_couriers=165))

    scope_tight = tight.fleet.scope_matrix()[:, int(TimePeriod.NOON_RUSH)].mean()
    scope_ample = ample.fleet.scope_matrix()[:, int(TimePeriod.NOON_RUSH)].mean()
    print(
        f"tight fleet: {tight.config.num_couriers} couriers, mean noon scope "
        f"{scope_tight:.0f} m, {tight.num_orders} orders"
    )
    print(
        f"ample fleet: {ample.config.num_couriers} couriers, mean noon scope "
        f"{scope_ample:.0f} m, {ample.num_orders} orders\n"
    )

    dataset, top_tight = rank_sites(tight, "light_meal")
    _, top_ample = rank_sites(ample, "light_meal")

    print("top-5 light-meal sites under each fleet (region: score):")
    print(f"{'rank':<6}{'tight fleet':>20}{'ample fleet':>20}")
    for i, (a, b) in enumerate(zip(top_tight, top_ample), start=1):
        print(f"#{i:<5}{a[0]:>14d} {a[1]:.3f}{b[0]:>14d} {b[1]:.3f}")

    moved = {r for r, _ in top_tight} ^ {r for r, _ in top_ample}
    print(
        f"\n{len(moved) // 2} of the top-5 sites change when the fleet grows"
        " -- courier capacity is part of the site decision."
    )


if __name__ == "__main__":
    main()
