"""Which periods drive each store type's recommendations?

Trains O2-SiteRec, then inspects the time semantics-level attention
(Eqs. 13-15): the paper's claim is that "various types of stores are
sensitive to different periods" -- breakfast stores should lean on the
morning subgraph, bbq on the night subgraph.

    python examples/period_attention.py
"""

import numpy as np

from repro.city import real_world_dataset
from repro.core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from repro.data import SiteRecDataset, TimePeriod


def main() -> None:
    sim = real_world_dataset(seed=7, scale=0.6)
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=0)
    model = O2SiteRec(dataset, split, O2SiteRecConfig())
    Trainer(model, TrainConfig(epochs=50, lr=1e-2, patience=12)).fit(
        split.train_pairs, dataset.pair_targets(split.train_pairs)
    )

    focus = ("breakfast", "steamed_buns", "coffee", "light_meal", "bbq", "juice")
    period_labels = [p.label for p in TimePeriod]
    print(f"{'store type':<14}" + "".join(f"{p:>14}" for p in period_labels))

    for name in focus:
        a = dataset.type_index(name)
        regions = split.test_regions_for_type(a)
        pairs = np.stack(
            [regions, np.full(len(regions), a, dtype=np.int64)], axis=1
        )
        attention = model.period_attention(pairs).mean(axis=0)  # (P,)
        cells = "".join(f"{w:>14.3f}" for w in attention)
        peak = period_labels[int(np.argmax(attention))]
        print(f"{name:<14}{cells}   <- peak: {peak}")

    print(
        "\nEach row is the average attention the model pays to each period's"
        "\nsubgraph when scoring candidate sites for that store type."
    )


if __name__ == "__main__":
    main()
