"""Commercial features of Section III-C: competitiveness and complementarity.

These are attributes of the S-A edges: for a store type ``a`` in store-region
``s``,

* **competitiveness** is the count of same-type stores in the region divided
  by the total number of nearby stores (competition pressure);
* **complementarity** follows the paper's formula
  ``f_sa = sum_{a*} log(rho_{a*-a}) (N_{s,a*} - N_bar_{a*})`` with
  ``rho_{a*-a} = 2 N_set(a*, a) / (N_A (N_A - 1))``, where ``N_set`` counts
  region co-occurrence of the type pair.
"""

from __future__ import annotations

import numpy as np


def competitiveness(
    store_counts: np.ndarray, grid, radius_m: float = 1000.0
) -> np.ndarray:
    """``(N, T)`` competitiveness of each type in each region.

    ``store_counts`` is the observable (region x type) store-count matrix.
    "Nearby stores" are all stores in the region itself and regions within
    ``radius_m``.
    """
    counts = np.asarray(store_counts, dtype=np.float64)
    num_regions, _ = counts.shape
    nearby_totals = np.zeros(num_regions)
    region_totals = counts.sum(axis=1)
    for r in range(num_regions):
        neigh = grid.neighbors_within(r, radius_m)
        nearby_totals[r] = region_totals[r] + region_totals[neigh].sum()
    denom = np.maximum(nearby_totals, 1.0)
    return counts / denom[:, None]


def cooccurrence_matrix(store_counts: np.ndarray) -> np.ndarray:
    """``(T, T)`` number of regions where both types are present."""
    present = (np.asarray(store_counts) > 0).astype(np.float64)
    return present.T @ present


def complementarity(store_counts: np.ndarray) -> np.ndarray:
    """``(N, T)`` complementarity features (paper formula, Section III-C).

    Pairs that never co-occur are skipped (their log would be undefined);
    the diagonal (a type with itself) is excluded.
    """
    counts = np.asarray(store_counts, dtype=np.float64)
    num_regions, num_types = counts.shape
    if num_types < 2:
        return np.zeros_like(counts)

    cooc = cooccurrence_matrix(counts)
    mean_per_type = counts.mean(axis=0)  # N_bar_{a*}
    rho = 2.0 * cooc / (num_types * (num_types - 1))

    result = np.zeros_like(counts)
    for a in range(num_types):
        total = np.zeros(num_regions)
        for a_star in range(num_types):
            if a_star == a or cooc[a_star, a] == 0:
                continue
            total += np.log(rho[a_star, a]) * (
                counts[:, a_star] - mean_per_type[a_star]
            )
        result[:, a] = total
    return result


def commercial_features(
    store_counts: np.ndarray, grid, radius_m: float = 1000.0
) -> np.ndarray:
    """``(N, T, 2)`` stacked [competitiveness, complementarity] features.

    Both channels are scaled to [-1, 1] by their maximum absolute value so
    downstream fusion layers see comparable magnitudes.
    """
    comp = competitiveness(store_counts, grid, radius_m)
    cmpl = complementarity(store_counts)

    def _scale(m: np.ndarray) -> np.ndarray:
        peak = np.abs(m).max()
        return m / peak if peak > 0 else m

    return np.stack([_scale(comp), _scale(cmpl)], axis=2)
