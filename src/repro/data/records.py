"""Raw record schemas mirroring Table I of the paper.

The simulator emits these records and the learning pipeline consumes *only*
them (plus public context data), exactly as the paper's pipeline consumes
the platform's accounting records.  All timestamps are minutes since the
start of the observation month; helpers convert to day / hour / period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .periods import TimePeriod

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class StoreRecord:
    """A store registered on the platform."""

    store_id: str
    store_type: int
    lon: float
    lat: float
    region: int


@dataclass(frozen=True)
class OrderRecord:
    """One delivery order (the fields of Table I).

    Spatial: store and customer coordinates plus their (coarse, privacy-
    preserving) region ids.  Temporal: creation, acceptance, pickup-report
    and delivery-report times in minutes since month start.  Context: ids,
    customer-store distance in metres, and the store type.
    """

    order_id: str
    store_id: str
    customer_id: str
    courier_id: str
    store_lon: float
    store_lat: float
    customer_lon: float
    customer_lat: float
    store_region: int
    customer_region: int
    created_minute: float
    accepted_minute: float
    pickup_minute: float
    delivered_minute: float
    distance_m: float
    store_type: int

    def __post_init__(self) -> None:
        if not (
            self.created_minute
            <= self.accepted_minute
            <= self.pickup_minute
            <= self.delivered_minute
        ):
            raise ValueError(
                f"order {self.order_id}: timestamps must be non-decreasing"
            )
        if self.distance_m < 0:
            raise ValueError(f"order {self.order_id}: negative distance")

    @property
    def day(self) -> int:
        return int(self.created_minute // MINUTES_PER_DAY)

    @property
    def hour(self) -> int:
        return int((self.created_minute % MINUTES_PER_DAY) // 60)

    @property
    def period(self) -> TimePeriod:
        return TimePeriod.from_hour(self.hour)

    @property
    def delivery_minutes(self) -> float:
        """Courier delivery time: pickup report to delivery report."""
        return self.delivered_minute - self.pickup_minute

    @property
    def total_minutes(self) -> float:
        """Customer-perceived waiting time: creation to delivery."""
        return self.delivered_minute - self.created_minute


@dataclass(frozen=True)
class TrajectoryPoint:
    """A courier GPS upload (couriers' trajectory data, Section II-A)."""

    courier_id: str
    minute: float
    lon: float
    lat: float


def minute_of(day: int, hour: int, minute: float = 0.0) -> float:
    """Absolute minute for ``day`` (0-based), ``hour`` and ``minute``."""
    if day < 0 or not 0 <= hour < 24 or not 0 <= minute < 60:
        raise ValueError(f"invalid timestamp components ({day}, {hour}, {minute})")
    return day * MINUTES_PER_DAY + hour * 60 + minute
