"""Persistence for order logs and store registries (CSV).

Lets a simulated month be written once and re-used across studies, and
gives the pipeline a real ingestion path: ``load_orders`` performs the same
schema validation a platform export would need.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Union

from .records import OrderRecord, StoreRecord

PathLike = Union[str, Path]

ORDER_FIELDS = [
    "order_id",
    "store_id",
    "customer_id",
    "courier_id",
    "store_lon",
    "store_lat",
    "customer_lon",
    "customer_lat",
    "store_region",
    "customer_region",
    "created_minute",
    "accepted_minute",
    "pickup_minute",
    "delivered_minute",
    "distance_m",
    "store_type",
]

STORE_FIELDS = ["store_id", "store_type", "lon", "lat", "region"]

_ORDER_INT_FIELDS = {"store_region", "customer_region", "store_type"}
_ORDER_FLOAT_FIELDS = {
    "store_lon",
    "store_lat",
    "customer_lon",
    "customer_lat",
    "created_minute",
    "accepted_minute",
    "pickup_minute",
    "delivered_minute",
    "distance_m",
}


def save_orders(orders: Iterable[OrderRecord], path: PathLike) -> int:
    """Write orders as CSV (Table I schema).  Returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=ORDER_FIELDS)
        writer.writeheader()
        for o in orders:
            writer.writerow({field: getattr(o, field) for field in ORDER_FIELDS})
            count += 1
    return count


def load_orders(path: PathLike) -> List[OrderRecord]:
    """Read orders from CSV, validating the schema and every record.

    Raises ``ValueError`` on missing columns or records violating the
    Table-I invariants (ordered timestamps, non-negative distance).
    """
    path = Path(path)
    orders: List[OrderRecord] = []
    with path.open(newline="") as f:
        reader = csv.DictReader(f)
        missing = set(ORDER_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"order CSV missing columns: {sorted(missing)}")
        for line_no, row in enumerate(reader, start=2):
            kwargs = {}
            for field in ORDER_FIELDS:
                value = row[field]
                if field in _ORDER_INT_FIELDS:
                    kwargs[field] = int(value)
                elif field in _ORDER_FLOAT_FIELDS:
                    kwargs[field] = float(value)
                else:
                    kwargs[field] = value
            try:
                orders.append(OrderRecord(**kwargs))
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from None
    return orders


def save_stores(stores: Iterable[StoreRecord], path: PathLike) -> int:
    """Write a store registry as CSV.  Returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=STORE_FIELDS)
        writer.writeheader()
        for s in stores:
            writer.writerow({field: getattr(s, field) for field in STORE_FIELDS})
            count += 1
    return count


def load_stores(path: PathLike) -> List[StoreRecord]:
    """Read a store registry from CSV."""
    path = Path(path)
    stores: List[StoreRecord] = []
    with path.open(newline="") as f:
        reader = csv.DictReader(f)
        missing = set(STORE_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"store CSV missing columns: {sorted(missing)}")
        for row in reader:
            stores.append(
                StoreRecord(
                    store_id=row["store_id"],
                    store_type=int(row["store_type"]),
                    lon=float(row["lon"]),
                    lat=float(row["lat"]),
                    region=int(row["region"]),
                )
            )
    return stores
