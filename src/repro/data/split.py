"""Train/test splitting of (store-region, store-type) interactions.

The paper randomly selects 80% of historical interactions between
store-region and store-type as training data and evaluates on the remaining
20% (Section IV-A2).  We stratify by store type so every type has candidate
regions in the test set (the ranking metrics are computed per type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class InteractionSplit:
    """An 80/20 split of (region, type) pairs.

    ``train_pairs`` and ``test_pairs`` have shape ``(K, 2)`` with columns
    (region id, type id).
    """

    train_pairs: np.ndarray
    test_pairs: np.ndarray

    def __post_init__(self) -> None:
        for name in ("train_pairs", "test_pairs"):
            pairs = getattr(self, name)
            if pairs.ndim != 2 or pairs.shape[1] != 2:
                raise ValueError(f"{name} must have shape (K, 2)")
        train = {tuple(p) for p in self.train_pairs}
        test = {tuple(p) for p in self.test_pairs}
        if train & test:
            raise ValueError("train and test pairs overlap")

    def test_regions_for_type(self, store_type: int) -> np.ndarray:
        """Candidate regions of ``store_type`` in the test fold."""
        mask = self.test_pairs[:, 1] == store_type
        return self.test_pairs[mask, 0]

    def train_regions_for_type(self, store_type: int) -> np.ndarray:
        mask = self.train_pairs[:, 1] == store_type
        return self.train_pairs[mask, 0]

    @property
    def num_types(self) -> int:
        pairs = np.concatenate([self.train_pairs, self.test_pairs])
        return int(pairs[:, 1].max()) + 1 if len(pairs) else 0


def split_interactions(
    store_regions: np.ndarray,
    num_types: int,
    train_frac: float = 0.8,
    seed: int = 0,
) -> InteractionSplit:
    """Stratified random split: per type, ``train_frac`` of store regions.

    Every type keeps at least one test region (and at least one training
    region) so both folds stay usable for small cities.
    """
    if not 0.0 < train_frac < 1.0:
        raise ValueError("train_frac must be in (0, 1)")
    regions = np.asarray(store_regions, dtype=np.int64)
    if len(regions) < 2:
        raise ValueError("need at least two store regions to split")
    rng = np.random.default_rng(seed)
    train_rows = []
    test_rows = []
    for a in range(num_types):
        order = rng.permutation(regions)
        cut = int(round(train_frac * len(order)))
        cut = min(max(cut, 1), len(order) - 1)
        for r in order[:cut]:
            train_rows.append((int(r), a))
        for r in order[cut:]:
            test_rows.append((int(r), a))
    return InteractionSplit(
        train_pairs=np.array(train_rows, dtype=np.int64),
        test_pairs=np.array(test_rows, dtype=np.int64),
    )
