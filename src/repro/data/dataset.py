"""The central dataset object consumed by every model.

:class:`SiteRecDataset` bundles the observable quantities derived from a
simulated (or, in principle, real) month of O2O operation:

* the region grid and geographic features (context data);
* store counts and commercial features (competitiveness/complementarity);
* order aggregates (counts by region/type/period, transactions, delivery
  statistics);
* the ground truth ``p_sa`` -- the normalised number of orders of each type
  in each store region (Section IV-A2);
* Adaption-setting features for the baselines (neighbourhood preferences and
  region delivery times).

The latent simulation internals (archetypes, true capacity ratios) are kept
on a separate ``analysis`` handle used only for evaluation grouping
(Fig. 14) -- never as model input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..geo import RegionGrid, region_feature_matrix
from .aggregates import OrderAggregates
from .features import commercial_features
from .periods import NUM_PERIODS
from .split import InteractionSplit, split_interactions


@dataclass
class AnalysisHandles:
    """Latent simulation internals exposed for *evaluation grouping only*."""

    archetype: Optional[np.ndarray] = None
    archetype_names: Optional[tuple] = None

    def regions_of(self, name: str) -> np.ndarray:
        if self.archetype is None or self.archetype_names is None:
            raise ValueError("no archetype information attached")
        idx = self.archetype_names.index(name)
        return np.flatnonzero(self.archetype == idx)


@dataclass
class SiteRecDataset:
    """Observable data for one city-month."""

    grid: RegionGrid
    type_names: List[str]
    aggregates: OrderAggregates
    store_counts: np.ndarray  # (N, T)
    region_features: np.ndarray  # (N, F) geographic features
    commercial: np.ndarray  # (N, T, 2) competitiveness/complementarity
    targets: np.ndarray  # (N, T) normalised order counts p_sa
    target_scale: float  # max raw count (denormaliser)
    store_regions: np.ndarray  # S node set (region ids)
    customer_regions: np.ndarray  # U node set (region ids)
    preference_features: np.ndarray  # (N, T) neighbourhood preferences
    delivery_time_feature: np.ndarray  # (N,) avg delivery minutes, filled
    analysis: AnalysisHandles = field(default_factory=AnalysisHandles)

    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return self.grid.num_regions

    @property
    def num_types(self) -> int:
        return len(self.type_names)

    @property
    def num_periods(self) -> int:
        return NUM_PERIODS

    def pair_targets(self, pairs: np.ndarray) -> np.ndarray:
        """Normalised ground truth for ``(K, 2)`` (region, type) pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        return self.targets[pairs[:, 0], pairs[:, 1]]

    def split(self, seed: int = 0, train_frac: float = 0.8) -> InteractionSplit:
        """The paper's 80/20 interaction split (stratified by type)."""
        return split_interactions(
            self.store_regions, self.num_types, train_frac=train_frac, seed=seed
        )

    def type_index(self, name: str) -> int:
        try:
            return self.type_names.index(name)
        except ValueError:
            raise KeyError(f"unknown store type {name!r}") from None

    # ------------------------------------------------------------------
    @classmethod
    def from_simulation(cls, sim, orders=None) -> "SiteRecDataset":
        """Build the dataset from a :class:`~repro.city.SimulationResult`.

        Consumes only observable outputs: the order log, store registry and
        public context data (POIs, roads).  ``orders`` overrides the order
        log (e.g. a temporal slice for the rolling-origin protocol of
        :mod:`repro.experiments.temporal`).
        """
        from ..city.config import ARCHETYPES  # local import avoids a cycle

        land = sim.land
        grid = land.grid
        num_types = sim.config.num_store_types
        store_counts = sim.store_type_counts()

        aggregates = OrderAggregates.from_orders(
            sim.orders if orders is None else orders, grid.num_regions, num_types
        )

        features = region_feature_matrix(
            land.poi_counts, land.intersections, land.roads, store_counts
        )
        commercial = commercial_features(store_counts, grid)

        counts = aggregates.counts_sa
        scale = max(counts.max(), 1.0)
        targets = counts / scale

        prefs = aggregates.neighborhood_preferences(grid, radius_m=2000.0)
        pref_peak = max(prefs.max(), 1.0)

        dt = aggregates.filled_region_delivery_time(grid)
        dt_peak = max(dt.max(), 1.0)

        return cls(
            grid=grid,
            type_names=list(sim.config.type_names),
            aggregates=aggregates,
            store_counts=store_counts,
            region_features=features,
            commercial=commercial,
            targets=targets,
            target_scale=float(scale),
            store_regions=aggregates.store_regions(store_counts),
            customer_regions=aggregates.customer_regions(),
            preference_features=prefs / pref_peak,
            delivery_time_feature=dt / dt_peak,
            analysis=AnalysisHandles(
                archetype=land.archetype.copy(),
                archetype_names=tuple(ARCHETYPES),
            ),
        )
