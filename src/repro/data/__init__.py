"""Data pipeline: record schemas, aggregation, features, dataset, splits."""

from .aggregates import OrderAggregates, PairStats
from .dataset import AnalysisHandles, SiteRecDataset
from .io import load_orders, load_stores, save_orders, save_stores
from .features import (
    commercial_features,
    competitiveness,
    complementarity,
    cooccurrence_matrix,
)
from .periods import NUM_PERIODS, TimePeriod
from .records import (
    MINUTES_PER_DAY,
    OrderRecord,
    StoreRecord,
    TrajectoryPoint,
    minute_of,
)
from .split import InteractionSplit, split_interactions
from .validation import (
    Finding,
    OrderLogValidationError,
    ValidationReport,
    validate_order_log,
)

__all__ = [
    "TimePeriod",
    "NUM_PERIODS",
    "OrderRecord",
    "StoreRecord",
    "TrajectoryPoint",
    "MINUTES_PER_DAY",
    "minute_of",
    "OrderAggregates",
    "PairStats",
    "SiteRecDataset",
    "AnalysisHandles",
    "InteractionSplit",
    "split_interactions",
    "competitiveness",
    "complementarity",
    "cooccurrence_matrix",
    "commercial_features",
    "save_orders",
    "load_orders",
    "save_stores",
    "load_stores",
    "validate_order_log",
    "ValidationReport",
    "Finding",
    "OrderLogValidationError",
]
