"""Content-addressed artifact cache for the data plane (``O2_PIPELINE_CACHE``).

Simulating a city, building a :class:`~repro.data.dataset.SiteRecDataset`
and splitting it are pure functions of ``(city config, seed, scale,
pipeline code version)``.  This module keys those artifacts by a SHA-256
over a canonical encoding of exactly that tuple and stores them on disk, so
a full experiment table simulates each (kind, seed, scale) once ever --
across benchmark scripts, harness rounds, worker processes and repeat runs.

Layout and guarantees:

* one directory per entry (``<root>/<key[:2]>/<key>/``) holding
  ``manifest.json``, one ``.npy`` file per array column and optionally a
  pickled ``payload.pkl`` for structured artifacts (datasets + splits);
* writes go to a temp directory first and are published with a single
  ``os.rename`` -- concurrent writers race benignly (the loser discards);
* array loads are memory-mapped (``mmap_mode="r"``), so a warm order log
  costs page faults, not a parse;
* the cache is bounded (``O2_PIPELINE_CACHE_MB``, default 2048): after each
  store, least-recently-used entries (directory mtime, refreshed on every
  hit) are evicted until the total size fits;
* corrupt or truncated entries are deleted and treated as misses -- the
  caller silently rebuilds (fail-soft, pinned by ``tests/test_data_cache.py``).

``O2_PIPELINE_CACHE`` semantics: unset/``1``/``on`` -> enabled under
``$XDG_CACHE_HOME/o2-siterec/pipeline`` (or ``~/.cache/...``);
``0``/``off`` -> disabled; any other value -> used as the cache directory.

CLI: ``python -m repro.data.cache {stats,clear,warm}``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..runtime import env_float, env_str

__all__ = [
    "PIPELINE_VERSION",
    "LRUCache",
    "pipeline_cache_enabled",
    "cache_root",
    "cache_key",
    "CacheEntry",
    "load_entry",
    "store_entry",
    "cache_stats",
    "clear_cache",
    "simulate_cached",
    "cached_dataset",
]

# Bump whenever simulation/dataset-building semantics change: every key
# embeds it, so stale artifacts from older code can never be served.
PIPELINE_VERSION = "pr9.1"

_OFF = ("0", "off", "false", "no")
_ON = ("", "1", "on", "true", "yes")


# ----------------------------------------------------------------------
# Small bounded mapping, shared with in-process caches (e.g. the order
# generator's per-(region, type, period) store-choice tables).
class LRUCache:
    """A dict bounded to ``maxsize`` entries with LRU eviction."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def __getitem__(self, key: Any) -> Any:
        self._data.move_to_end(key)
        return self._data[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


# ----------------------------------------------------------------------
# Configuration.
def cache_root() -> Optional[Path]:
    """Cache directory, or ``None`` when the cache is disabled."""
    low = env_str("O2_PIPELINE_CACHE", "1")
    if low in _OFF:
        return None
    if low in _ON:
        base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        return Path(base) / "o2-siterec" / "pipeline"
    # Any other value is a cache directory: keep the user's spelling
    # (paths are case-sensitive), only trimmed.
    return Path(os.environ["O2_PIPELINE_CACHE"].strip())


def pipeline_cache_enabled() -> bool:
    return cache_root() is not None


def _max_bytes() -> int:
    return int(env_float("O2_PIPELINE_CACHE_MB", 2048.0) * 2**20)


# ----------------------------------------------------------------------
# Content addressing.
def _canonical(obj: Any) -> Any:
    """JSON-able canonical form: stable across processes and sessions."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": [
                [f.name, _canonical(getattr(obj, f.name))] for f in fields(obj)
            ],
        }
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": [str(obj.dtype), list(obj.shape)],
            "sha256": hashlib.sha256(
                np.ascontiguousarray(obj).tobytes()
            ).hexdigest(),
        }
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                [str(k), _canonical(v)] for k, v in obj.items()
            )
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def cache_key(kind: str, *parts: Any) -> str:
    """SHA-256 over (artifact kind, pipeline version, canonical parts)."""
    payload = json.dumps(
        [kind, PIPELINE_VERSION, [_canonical(p) for p in parts]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Entry storage.
@dataclass
class CacheEntry:
    arrays: Dict[str, np.ndarray]
    payload: Any
    meta: Dict[str, Any]


def _entry_dir(root: Path, key: str) -> Path:
    return root / key[:2] / key


def store_entry(
    key: str,
    arrays: Optional[Dict[str, np.ndarray]] = None,
    payload: Any = None,
    meta: Optional[Dict[str, Any]] = None,
) -> bool:
    """Persist an entry atomically; returns whether it is now on disk."""
    root = cache_root()
    if root is None:
        return False
    final = _entry_dir(root, key)
    if (final / "manifest.json").exists():
        return True
    try:
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=str(root), prefix="tmp-"))
        names: List[str] = []
        for name, arr in (arrays or {}).items():
            np.save(tmp / f"{name}.npy", np.asarray(arr), allow_pickle=False)
            names.append(name)
        if payload is not None:
            with open(tmp / "payload.pkl", "wb") as fh:
                pickle.dump(payload, fh, protocol=4)
        manifest = {
            "version": PIPELINE_VERSION,
            "arrays": names,
            "payload": payload is not None,
            "meta": meta or {},
        }
        # The manifest is written last inside tmp, and tmp is published
        # with one rename: readers either see a complete entry or none.
        (tmp / "manifest.json").write_text(json.dumps(manifest))
        try:
            os.rename(tmp, final)
        except OSError:
            shutil.rmtree(str(tmp), ignore_errors=True)  # lost a benign race
        _evict(root)
        return True
    except OSError:
        return False


def load_entry(key: str, mmap: bool = True) -> Optional[CacheEntry]:
    """Fetch an entry; corrupt entries are deleted and reported as misses."""
    root = cache_root()
    if root is None:
        return None
    entry = _entry_dir(root, key)
    manifest_path = entry / "manifest.json"
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
        arrays = {
            name: np.load(
                entry / f"{name}.npy",
                mmap_mode="r" if mmap else None,
                allow_pickle=False,
            )
            for name in manifest["arrays"]
        }
        payload = None
        if manifest.get("payload"):
            with open(entry / "payload.pkl", "rb") as fh:
                payload = pickle.load(fh)
        os.utime(entry)  # refresh LRU recency
        return CacheEntry(
            arrays=arrays, payload=payload, meta=manifest.get("meta", {})
        )
    except Exception:
        shutil.rmtree(str(entry), ignore_errors=True)
        return None


def _entries(root: Path) -> Iterable[Tuple[float, int, Path]]:
    """(mtime, bytes, path) per entry directory."""
    if not root.exists():
        return
    for shard in root.iterdir():
        if not shard.is_dir() or shard.name.startswith("tmp-"):
            continue
        for entry in shard.iterdir():
            if not entry.is_dir():
                continue
            try:
                size = sum(f.stat().st_size for f in entry.iterdir())
                yield entry.stat().st_mtime, size, entry
            except OSError:
                continue


def _evict(root: Path) -> None:
    """Drop least-recently-used entries until the size bound is met."""
    budget = _max_bytes()
    entries = sorted(_entries(root))
    total = sum(size for _, size, _ in entries)
    for _, size, path in entries:
        if total <= budget:
            break
        shutil.rmtree(str(path), ignore_errors=True)
        total -= size


def cache_stats() -> Dict[str, Any]:
    root = cache_root()
    if root is None:
        return {"enabled": False, "root": None, "entries": 0, "bytes": 0}
    entries = list(_entries(root))
    return {
        "enabled": True,
        "root": str(root),
        "entries": len(entries),
        "bytes": sum(size for _, size, _ in entries),
        "max_bytes": _max_bytes(),
    }


def clear_cache() -> int:
    """Remove every entry; returns how many were deleted."""
    root = cache_root()
    if root is None or not root.exists():
        return 0
    count = 0
    for _, _, path in list(_entries(root)):
        shutil.rmtree(str(path), ignore_errors=True)
        count += 1
    return count


# ----------------------------------------------------------------------
# Order-log packing.  Columnar order logs (``OrderTable``) persist as one
# ``.npy`` chunk per column plus the shared registry arrays -- loads are
# memory-mapped column by column and never materialise records.  Legacy
# ``List[OrderRecord]`` logs keep the original fixed-width packing.
_FLOAT_FIELDS = (
    "store_lon",
    "store_lat",
    "customer_lon",
    "customer_lat",
    "created_minute",
    "accepted_minute",
    "pickup_minute",
    "delivered_minute",
    "distance_m",
)
_INT_FIELDS = ("store_region", "customer_region", "store_type")


def _orders_to_arrays(orders) -> Dict[str, np.ndarray]:
    table = getattr(orders, "table", None)
    if table is not None:
        return table.to_arrays()
    return {
        "order_id": np.array([o.order_id for o in orders]),
        "store_id": np.array([o.store_id for o in orders]),
        "customer_id": np.array([o.customer_id for o in orders]),
        "courier_id": np.array([o.courier_id for o in orders]),
        "floats": np.array(
            [[getattr(o, f) for f in _FLOAT_FIELDS] for o in orders]
        ),
        "ints": np.array(
            [[getattr(o, f) for f in _INT_FIELDS] for o in orders],
            dtype=np.int64,
        ),
    }


def _orders_from_arrays(arrays: Dict[str, np.ndarray]):
    if "tbl_store_index" in arrays:
        from .ordertable import OrderTable

        return OrderTable.from_arrays(arrays).records_view()
    from .records import OrderRecord

    flo = np.asarray(arrays["floats"])
    ints = np.asarray(arrays["ints"])
    return [
        OrderRecord(
            oid,
            sid,
            cid,
            kid,
            slon,
            slat,
            clon,
            clat,
            sreg,
            creg,
            cm,
            am,
            pm,
            dm,
            dist,
            st,
        )
        for oid, sid, cid, kid, (
            slon,
            slat,
            clon,
            clat,
            cm,
            am,
            pm,
            dm,
            dist,
        ), (sreg, creg, st) in zip(
            np.asarray(arrays["order_id"]).tolist(),
            np.asarray(arrays["store_id"]).tolist(),
            np.asarray(arrays["customer_id"]).tolist(),
            np.asarray(arrays["courier_id"]).tolist(),
            flo.tolist(),
            ints.tolist(),
        )
    ]


# ----------------------------------------------------------------------
# High-level artifacts.  City imports stay lazy: repro.city.orders imports
# LRUCache from this module at import time.
def simulate_cached(config) -> Any:
    """:func:`repro.city.simulator.simulate`, through the artifact cache.

    Hits replay the cached order log and re-run only the cheap pre-order
    stages (land use, stores, fleet): those consume the config RNG *before*
    order generation, so rebuilding them reproduces a fresh
    ``SimulationResult`` exactly.
    """
    from ..city.simulator import SimulationResult, simulate_uncached

    if not pipeline_cache_enabled():
        return simulate_uncached(config)
    key = cache_key("simulation", config)
    entry = load_entry(key)
    if entry is not None:
        try:
            orders = _orders_from_arrays(entry.arrays)
        except Exception:
            root = cache_root()
            if root is not None:
                shutil.rmtree(str(_entry_dir(root, key)), ignore_errors=True)
            orders = None
        if orders:
            rng = np.random.default_rng(config.seed)
            from ..city.couriers import build_fleet
            from ..city.landuse import synthesize_land_use
            from ..city.stores import place_stores

            land = synthesize_land_use(config, rng)
            stores = place_stores(config, land, rng)
            fleet = build_fleet(config, land, rng)
            return SimulationResult(
                config=config,
                land=land,
                stores=stores,
                fleet=fleet,
                orders=orders,
            )
    result = simulate_uncached(config)
    columnar = getattr(result.orders, "table", None) is not None
    store_entry(
        key,
        arrays=_orders_to_arrays(result.orders),
        meta={
            "artifact": "simulation",
            "num_orders": len(result.orders),
            "format": "table" if columnar else "records",
        },
    )
    return result


def cached_dataset(kind: str, seed: int, scale: float):
    """``(dataset, split)`` for one harness round, through the cache.

    Mirrors :func:`repro.experiments.harness.build_dataset`; the key is the
    *resolved* city config (not just ``(kind, seed, scale)``), so any change
    to the preset recipes invalidates naturally.
    """
    from ..city.simulator import (
        megacity_config,
        metropolis_config,
        real_world_config,
        simulation_config,
    )

    if kind == "real":
        config = real_world_config(seed=7 + seed, scale=scale)
    elif kind == "sim":
        config = simulation_config(seed=11 + seed, scale=scale)
    elif kind == "metropolis":
        config = metropolis_config(seed=7 + seed, scale=scale)
    elif kind == "megacity":
        config = megacity_config(seed=7 + seed, scale=scale)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")

    if not pipeline_cache_enabled():
        return _build_dataset_uncached(kind, seed, scale)

    key = cache_key("dataset", kind, int(seed), config)
    entry = load_entry(key)
    if entry is not None and isinstance(entry.payload, tuple):
        return entry.payload
    dataset, split = _build_dataset_uncached(kind, seed, scale)
    store_entry(
        key,
        payload=(dataset, split),
        meta={
            "artifact": "dataset",
            "kind": kind,
            "seed": int(seed),
            "scale": float(scale),
        },
    )
    return dataset, split


def _build_dataset_uncached(kind: str, seed: int, scale: float):
    from ..city.simulator import (
        megacity_dataset,
        metropolis_dataset,
        real_world_dataset,
        simulation_dataset,
    )
    from .dataset import SiteRecDataset

    if kind == "real":
        sim = real_world_dataset(seed=7 + seed, scale=scale)
    elif kind == "sim":
        sim = simulation_dataset(seed=11 + seed, scale=scale)
    elif kind == "metropolis":
        sim = metropolis_dataset(seed=7 + seed, scale=scale)
    elif kind == "megacity":
        sim = megacity_dataset(seed=7 + seed, scale=scale)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")
    dataset = SiteRecDataset.from_simulation(sim)
    return dataset, dataset.split(seed=seed)


# ----------------------------------------------------------------------
# CLI.
def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.data.cache",
        description="Inspect and manage the pipeline artifact cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("stats", help="print entry count and size")
    sub.add_parser("clear", help="delete every cached artifact")
    warm = sub.add_parser(
        "warm", help="pre-build harness datasets into the cache"
    )
    warm.add_argument(
        "--kind",
        default="real",
        choices=("real", "sim", "metropolis", "megacity"),
    )
    warm.add_argument("--seed", type=int, default=0)
    warm.add_argument("--scale", type=float, default=0.55)
    warm.add_argument(
        "--rounds", type=int, default=1, help="seeds seed..seed+rounds-1"
    )
    args = parser.parse_args(argv)

    if args.command == "stats":
        stats = cache_stats()
        print(json.dumps(stats, indent=2))
        return 0
    if args.command == "clear":
        print(f"removed {clear_cache()} entries")
        return 0
    if args.command == "warm":
        if not pipeline_cache_enabled():
            print("cache disabled (O2_PIPELINE_CACHE=0)")
            return 1
        for r in range(args.rounds):
            dataset, _ = cached_dataset(args.kind, args.seed + r, args.scale)
            print(
                f"warmed {args.kind} seed={args.seed + r} "
                f"scale={args.scale}: {dataset.targets.shape[0]} regions"
            )
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
