"""Time periods.

The paper analyses and models five periods of the day (Fig. 3): morning,
noon rush hour, afternoon, evening rush hour and night.  Each subgraph of a
multi-graph corresponds to one period.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Tuple


class TimePeriod(IntEnum):
    """The five daily periods used throughout the paper."""

    MORNING = 0  # 06:00 - 10:00
    NOON_RUSH = 1  # 10:00 - 14:00
    AFTERNOON = 2  # 14:00 - 16:00
    EVENING_RUSH = 3  # 16:00 - 20:00
    NIGHT = 4  # 20:00 - 24:00

    @property
    def hours(self) -> Tuple[int, int]:
        """Half-open hour range ``[start, end)`` covered by this period."""
        return _HOURS[self]

    @property
    def label(self) -> str:
        return _LABELS[self]

    @property
    def duration_hours(self) -> int:
        start, end = self.hours
        return end - start

    @classmethod
    def from_hour(cls, hour: int) -> "TimePeriod":
        """Map an hour of day (0-23) to its period.

        Hours outside any defined period (00:00-06:00, when the platform is
        mostly idle) are folded into NIGHT.
        """
        hour = int(hour) % 24
        for period, (start, end) in _HOURS.items():
            if start <= hour < end:
                return period
        return cls.NIGHT

    @classmethod
    def all(cls) -> List["TimePeriod"]:
        return list(cls)


_HOURS = {
    TimePeriod.MORNING: (6, 10),
    TimePeriod.NOON_RUSH: (10, 14),
    TimePeriod.AFTERNOON: (14, 16),
    TimePeriod.EVENING_RUSH: (16, 20),
    TimePeriod.NIGHT: (20, 24),
}

_LABELS = {
    TimePeriod.MORNING: "morning",
    TimePeriod.NOON_RUSH: "noon rush",
    TimePeriod.AFTERNOON: "afternoon",
    TimePeriod.EVENING_RUSH: "evening rush",
    TimePeriod.NIGHT: "night",
}

NUM_PERIODS = len(TimePeriod)
