"""Columnar order storage: struct-of-arrays instead of ``List[OrderRecord]``.

At metropolis scale and beyond the order log dominates the data plane.  A
``List[OrderRecord]`` spends ~400 bytes per order on object headers, boxed
floats and interned strings, and every consumer (aggregates, features,
graph build) pays a Python-level loop to read it back.  :class:`OrderTable`
stores the same information as a handful of numpy columns (~100 bytes per
order) that downstream code can reduce with vectorised kernels.

Two deliberate representation choices keep the table *bit-identical* to the
record list it replaces:

* numeric columns are ``float64``/``int32`` -- every float that appears in
  an :class:`~repro.data.records.OrderRecord` is stored at full precision,
  so a record materialised from the table compares equal to the reference
  record field-for-field;
* the string ids are not stored at all.  ``order_id`` is the row index
  (``O{i:07d}``), ``customer_id`` is ``U{tag:04d}_{serial:04d}`` from two
  int columns, and ``store_id``/``courier_id`` are indices into a small
  :class:`StoreRegistry` shared by every row.  Materialisation rebuilds the
  exact reference strings on demand.

:class:`OrderRecordSeq` is the lazy sequence view: indexing, slicing,
iteration and equality behave like the list of records, but records only
come into existence when touched.  ``list == view`` works through the
reflected ``__eq__`` (``list.__eq__`` returns ``NotImplemented`` for a
non-list, then Python asks the view).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Union

import numpy as np

from .records import OrderRecord

__all__ = ["INT_COLUMNS", "FLOAT_COLUMNS", "COLUMNS", "StoreRegistry",
           "OrderTable", "OrderRecordSeq"]

INT_COLUMNS = (
    "store_index",  # row into the StoreRegistry
    "store_region",
    "customer_region",
    "store_type",
    "cust_tag",  # region stamped into customer_id at creation time
    "cust_serial",  # the U%..._%04d draw
    "courier_num",  # row into StoreRegistry.courier_ids
)
FLOAT_COLUMNS = (
    "customer_lon",
    "customer_lat",
    "created_minute",
    "accepted_minute",
    "pickup_minute",
    "delivered_minute",
    "distance_m",
)
COLUMNS = INT_COLUMNS + FLOAT_COLUMNS


@dataclass(frozen=True)
class StoreRegistry:
    """Per-city id tables shared by every order row."""

    store_ids: np.ndarray  # (S,) unicode
    store_lon: np.ndarray  # (S,) float64
    store_lat: np.ndarray  # (S,) float64
    courier_ids: np.ndarray  # (C,) unicode, fleet flattening order

    def __len__(self) -> int:
        return len(self.store_ids)


class OrderTable:
    """Struct-of-arrays order log (the canonical representation)."""

    __slots__ = ("columns", "registry")

    def __init__(
        self, columns: Dict[str, np.ndarray], registry: StoreRegistry
    ) -> None:
        missing = [c for c in COLUMNS if c not in columns]
        if missing:
            raise ValueError(f"OrderTable missing columns: {missing}")
        n = len(columns[COLUMNS[0]])
        cols: Dict[str, np.ndarray] = {}
        for name in INT_COLUMNS:
            arr = np.ascontiguousarray(columns[name], dtype=np.int32)
            if len(arr) != n:
                raise ValueError(f"column {name!r} has length {len(arr)} != {n}")
            cols[name] = arr
        for name in FLOAT_COLUMNS:
            arr = np.ascontiguousarray(columns[name], dtype=np.float64)
            if len(arr) != n:
                raise ValueError(f"column {name!r} has length {len(arr)} != {n}")
            cols[name] = arr
        self.columns = cols
        self.registry = registry

    # -- basic shape ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns["store_index"])

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    @property
    def nbytes(self) -> int:
        return sum(int(c.nbytes) for c in self.columns.values())

    # -- record materialisation ----------------------------------------
    def record(self, i: int) -> OrderRecord:
        """Materialise row ``i`` as the exact reference ``OrderRecord``."""
        n = len(self)
        idx = int(i)
        if idx < 0:
            idx += n
        if not 0 <= idx < n:
            raise IndexError(f"order index {i} out of range for {n} orders")
        c = self.columns
        si = int(c["store_index"][idx])
        return OrderRecord(
            order_id=f"O{idx:07d}",
            store_id=str(self.registry.store_ids[si]),
            customer_id=(
                f"U{int(c['cust_tag'][idx]):04d}_"
                f"{int(c['cust_serial'][idx]):04d}"
            ),
            courier_id=str(self.registry.courier_ids[int(c["courier_num"][idx])]),
            store_lon=float(self.registry.store_lon[si]),
            store_lat=float(self.registry.store_lat[si]),
            customer_lon=float(c["customer_lon"][idx]),
            customer_lat=float(c["customer_lat"][idx]),
            store_region=int(c["store_region"][idx]),
            customer_region=int(c["customer_region"][idx]),
            created_minute=float(c["created_minute"][idx]),
            accepted_minute=float(c["accepted_minute"][idx]),
            pickup_minute=float(c["pickup_minute"][idx]),
            delivered_minute=float(c["delivered_minute"][idx]),
            distance_m=float(c["distance_m"][idx]),
            store_type=int(c["store_type"][idx]),
        )

    def records_view(self) -> "OrderRecordSeq":
        return OrderRecordSeq(self)

    def replace_columns(self, **updates: np.ndarray) -> "OrderTable":
        """A new table sharing unchanged columns (copy-on-write)."""
        cols = dict(self.columns)
        for name, arr in updates.items():
            if name not in cols:
                raise KeyError(f"unknown order column {name!r}")
            cols[name] = arr
        return OrderTable(cols, self.registry)

    # -- hashing / serialisation ---------------------------------------
    def sha256(self) -> str:
        """Digest over every column and the registry, stitching-sensitive."""
        digest = hashlib.sha256()
        for name in COLUMNS:
            digest.update(np.ascontiguousarray(self.columns[name]).tobytes())
        for arr in (
            self.registry.store_ids,
            self.registry.store_lon,
            self.registry.store_lat,
            self.registry.courier_ids,
        ):
            digest.update(np.ascontiguousarray(arr).tobytes())
        return digest.hexdigest()

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flat dict for the artifact cache (``tbl_*`` + ``reg_*`` keys)."""
        arrays = {f"tbl_{name}": self.columns[name] for name in COLUMNS}
        arrays["reg_store_ids"] = self.registry.store_ids
        arrays["reg_store_lon"] = self.registry.store_lon
        arrays["reg_store_lat"] = self.registry.store_lat
        arrays["reg_courier_ids"] = self.registry.courier_ids
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "OrderTable":
        registry = StoreRegistry(
            store_ids=np.asarray(arrays["reg_store_ids"]),
            store_lon=np.asarray(arrays["reg_store_lon"]),
            store_lat=np.asarray(arrays["reg_store_lat"]),
            courier_ids=np.asarray(arrays["reg_courier_ids"]),
        )
        columns = {name: np.asarray(arrays[f"tbl_{name}"]) for name in COLUMNS}
        return cls(columns, registry)

    @classmethod
    def concat(
        cls, chunks: Sequence[Dict[str, np.ndarray]], registry: StoreRegistry
    ) -> "OrderTable":
        """Stitch per-tile column chunks (in chunk order) into one table."""
        if not chunks:
            columns = {name: np.zeros(0) for name in COLUMNS}
            return cls(columns, registry)
        columns = {
            name: np.concatenate([np.asarray(c[name]) for c in chunks])
            for name in COLUMNS
        }
        return cls(columns, registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OrderTable {len(self)} orders x {len(COLUMNS)} columns, "
            f"{len(self.registry)} stores>"
        )


class OrderRecordSeq(Sequence):
    """Lazy ``Sequence[OrderRecord]`` view over an :class:`OrderTable`."""

    __slots__ = ("table",)

    def __init__(self, table: OrderTable) -> None:
        self.table = table

    def __len__(self) -> int:
        return len(self.table)

    def __getitem__(
        self, i: Union[int, slice]
    ) -> Union[OrderRecord, List[OrderRecord]]:
        if isinstance(i, slice):
            return [
                self.table.record(j) for j in range(*i.indices(len(self)))
            ]
        return self.table.record(i)

    def __iter__(self) -> Iterator[OrderRecord]:
        table = self.table
        for i in range(len(table)):
            yield table.record(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderRecordSeq):
            a, b = self.table, other.table
            if len(a) != len(b):
                return False
            same_registry = all(
                np.array_equal(x, y)
                for x, y in (
                    (a.registry.store_ids, b.registry.store_ids),
                    (a.registry.store_lon, b.registry.store_lon),
                    (a.registry.store_lat, b.registry.store_lat),
                    (a.registry.courier_ids, b.registry.courier_ids),
                )
            )
            if same_registry:
                return all(
                    np.array_equal(a.columns[name], b.columns[name])
                    for name in COLUMNS
                )
            # Different registries can still describe equal records.
        if not isinstance(other, Sequence) or isinstance(other, (str, bytes)):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(mine == theirs for mine, theirs in zip(self, other))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OrderRecordSeq of {len(self)} orders>"
