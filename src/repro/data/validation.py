"""Order-log linting: consistency checks before building a dataset.

Real platform exports are messy; these checks catch the problems that
silently corrupt the pipeline (regions out of range, stores missing from
the registry, timestamps outside the observation window, impossible courier
speeds).  ``validate_order_log`` returns a structured report; ``strict=True``
raises on the first error-level finding.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from .records import MINUTES_PER_DAY, OrderRecord, StoreRecord

# Anything faster than this from pickup to delivery is physically suspect
# (an e-bike courier, metres per minute).
MAX_PLAUSIBLE_SPEED_M_PER_MIN = 700.0


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    level: str  # "error" | "warning"
    check: str
    message: str
    order_id: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" (order {self.order_id})" if self.order_id else ""
        return f"[{self.level}] {self.check}: {self.message}{suffix}"


@dataclass
class ValidationReport:
    """All findings plus summary counters."""

    findings: List[Finding] = field(default_factory=list)
    orders_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.level == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.level == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (
            f"{self.orders_checked} orders checked: "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )


class OrderLogValidationError(ValueError):
    """Raised in strict mode on the first error-level finding."""


def validate_order_log(
    orders: Iterable[OrderRecord],
    num_regions: int,
    num_types: int,
    num_days: Optional[int] = None,
    stores: Optional[Sequence[StoreRecord]] = None,
    strict: bool = False,
    max_findings: int = 100,
) -> ValidationReport:
    """Lint an order log against the city's static facts.

    Checks: region/type ranges, observation-window bounds, courier speed
    plausibility, store-registry consistency (id exists, region matches,
    type matches), duplicate order ids.  Collection stops after
    ``max_findings`` findings (the report notes truncation via a warning).
    """
    report = ValidationReport()
    registry = {s.store_id: s for s in stores} if stores is not None else None
    seen_ids: Counter = Counter()

    def add(level: str, check: str, message: str, order_id=None) -> None:
        if len(report.findings) >= max_findings:
            return
        finding = Finding(level=level, check=check, message=message, order_id=order_id)
        report.findings.append(finding)
        if strict and level == "error":
            raise OrderLogValidationError(str(finding))

    # Orders created before midnight of the last day may legitimately be
    # delivered shortly after the window closes.
    delivery_grace = 6 * 60.0
    horizon = num_days * MINUTES_PER_DAY if num_days is not None else None
    for o in orders:
        report.orders_checked += 1
        seen_ids[o.order_id] += 1

        if not 0 <= o.store_region < num_regions:
            add("error", "region_range", f"store region {o.store_region}", o.order_id)
        if not 0 <= o.customer_region < num_regions:
            add(
                "error",
                "region_range",
                f"customer region {o.customer_region}",
                o.order_id,
            )
        if not 0 <= o.store_type < num_types:
            add("error", "type_range", f"store type {o.store_type}", o.order_id)

        if o.created_minute < 0 or (
            horizon is not None
            and (
                o.created_minute >= horizon
                or o.delivered_minute > horizon + delivery_grace
            )
        ):
            add(
                "error",
                "window",
                f"timestamps outside the {num_days}-day window",
                o.order_id,
            )

        if o.delivery_minutes > 0:
            speed = o.distance_m / o.delivery_minutes
            if speed > MAX_PLAUSIBLE_SPEED_M_PER_MIN:
                add(
                    "warning",
                    "speed",
                    f"implied courier speed {speed:.0f} m/min",
                    o.order_id,
                )

        if registry is not None:
            store = registry.get(o.store_id)
            if store is None:
                add("error", "registry", f"unknown store {o.store_id}", o.order_id)
            else:
                if store.region != o.store_region:
                    add(
                        "error",
                        "registry",
                        f"store {o.store_id} region mismatch "
                        f"({o.store_region} vs registry {store.region})",
                        o.order_id,
                    )
                if store.store_type != o.store_type:
                    add(
                        "error",
                        "registry",
                        f"store {o.store_id} type mismatch",
                        o.order_id,
                    )

    duplicates = [oid for oid, count in seen_ids.items() if count > 1]
    for oid in duplicates[:10]:
        add("error", "duplicate_id", f"order id appears {seen_ids[oid]} times", oid)

    if len(report.findings) >= max_findings:
        report.findings.append(
            Finding(
                level="warning",
                check="truncated",
                message=f"finding collection stopped at {max_findings}",
            )
        )
    return report
