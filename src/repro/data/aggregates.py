"""Order-log aggregations.

Everything the graphs and features need from the raw order records is
pre-aggregated here in one pass: order counts by (region, type[, period]),
store-region/customer-region transaction matrices per period, delivery-time
statistics per region pair and per region, and delivery-distance statistics
per store region.  These aggregates are *observable* quantities -- they are
derived purely from Table-I records.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from .periods import NUM_PERIODS, TimePeriod
from .records import OrderRecord

PairKey = Tuple[int, int]  # (store_region, customer_region)


@dataclass
class PairStats:
    """Accumulated statistics for one (store-region, customer-region) pair."""

    count: int = 0
    distance_sum: float = 0.0
    delivery_sum: float = 0.0

    @property
    def mean_distance(self) -> float:
        return self.distance_sum / self.count if self.count else 0.0

    @property
    def mean_delivery(self) -> float:
        return self.delivery_sum / self.count if self.count else 0.0


@dataclass
class OrderAggregates:
    """All per-month aggregates of an order log.

    Attributes
    ----------
    counts_sa:
        ``(N, T)`` orders per (store-region, type).
    counts_sat / counts_uat:
        ``(N, T, P)`` orders per (store-region | customer-region, type,
        period).
    pair_stats:
        Per period: ``{(s, u): PairStats}`` with counts, distances and
        delivery times -- the source of S-U edges and the courier mobility
        graph.
    farthest_distance / mean_distance:
        ``(N, P)`` farthest and average delivery distance per store region
        and period (drives the paper's S-U edge construction rule).
    region_delivery_time:
        ``(N,)`` average delivery minutes of orders from each store region
        (the Adaption baselines' courier-capacity feature).
    total_orders_s:
        ``(N, P)`` total orders of each store region per period.
    """

    num_regions: int
    num_types: int
    counts_sa: np.ndarray
    counts_sat: np.ndarray
    counts_uat: np.ndarray
    pair_stats: List[Dict[PairKey, PairStats]]
    farthest_distance: np.ndarray
    mean_distance: np.ndarray
    region_delivery_time: np.ndarray
    total_orders_s: np.ndarray

    @classmethod
    def from_orders(
        cls, orders: Iterable[OrderRecord], num_regions: int, num_types: int
    ) -> "OrderAggregates":
        counts_sa = np.zeros((num_regions, num_types))
        counts_sat = np.zeros((num_regions, num_types, NUM_PERIODS))
        counts_uat = np.zeros((num_regions, num_types, NUM_PERIODS))
        pair_stats: List[Dict[PairKey, PairStats]] = [
            defaultdict(PairStats) for _ in range(NUM_PERIODS)
        ]
        farthest = np.zeros((num_regions, NUM_PERIODS))
        dist_sum = np.zeros((num_regions, NUM_PERIODS))
        dt_sum = np.zeros(num_regions)
        dt_count = np.zeros(num_regions)
        totals = np.zeros((num_regions, NUM_PERIODS))

        for o in orders:
            t = int(o.period)
            s, u, a = o.store_region, o.customer_region, o.store_type
            counts_sa[s, a] += 1
            counts_sat[s, a, t] += 1
            counts_uat[u, a, t] += 1
            stats = pair_stats[t][(s, u)]
            stats.count += 1
            stats.distance_sum += o.distance_m
            stats.delivery_sum += o.delivery_minutes
            farthest[s, t] = max(farthest[s, t], o.distance_m)
            dist_sum[s, t] += o.distance_m
            totals[s, t] += 1
            dt_sum[s] += o.delivery_minutes
            dt_count[s] += 1

        mean_distance = np.divide(
            dist_sum, totals, out=np.zeros_like(dist_sum), where=totals > 0
        )
        region_dt = np.divide(
            dt_sum, dt_count, out=np.zeros_like(dt_sum), where=dt_count > 0
        )
        return cls(
            num_regions=num_regions,
            num_types=num_types,
            counts_sa=counts_sa,
            counts_sat=counts_sat,
            counts_uat=counts_uat,
            pair_stats=[dict(p) for p in pair_stats],
            farthest_distance=farthest,
            mean_distance=mean_distance,
            region_delivery_time=region_dt,
            total_orders_s=totals,
        )

    # ------------------------------------------------------------------
    def store_regions(self, store_counts: np.ndarray) -> np.ndarray:
        """Regions that contain at least one store (the S node set)."""
        return np.flatnonzero(store_counts.sum(axis=1) > 0)

    def customer_regions(self) -> np.ndarray:
        """Regions whose customers placed at least one order (the U set)."""
        return np.flatnonzero(self.counts_uat.sum(axis=(1, 2)) > 0)

    def mobility_edges(
        self, period: TimePeriod, min_count: int = 1
    ) -> List[Tuple[int, int, float, int]]:
        """Courier mobility edges for one period.

        Returns ``(store_region, customer_region, mean_delivery_minutes,
        count)`` for every pair with at least ``min_count`` deliveries
        (Definition 3: edges carry the actual delivery time).
        """
        result = []
        for (s, u), stats in self.pair_stats[int(period)].items():
            if stats.count >= min_count:
                result.append((s, u, stats.mean_delivery, stats.count))
        return result

    def neighborhood_preferences(
        self, grid, radius_m: float = 2000.0
    ) -> np.ndarray:
        """Customer-preference feature: per region, the vector of order
        counts of each type placed by customers in regions within
        ``radius_m`` (the Adaption setting of Section IV-A5; also Table II's
        preference signal)."""
        counts_u = self.counts_uat.sum(axis=2)  # (N, T)
        prefs = counts_u.copy()
        for r in range(self.num_regions):
            neigh = grid.neighbors_within(r, radius_m)
            if neigh:
                prefs[r] = counts_u[r] + counts_u[neigh].sum(axis=0)
        return prefs

    def filled_region_delivery_time(self, grid) -> np.ndarray:
        """Average delivery time per region, nearest-neighbour filled.

        Regions with no orders take the mean of their 1 km neighbours (the
        paper's missing-value rule for the Adaption setting).
        """
        dt = self.region_delivery_time.copy()
        missing = np.flatnonzero(dt == 0)
        global_mean = dt[dt > 0].mean() if (dt > 0).any() else 0.0
        for r in missing:
            neigh = grid.neighbors_within(r, 1000.0)
            values = dt[neigh] if neigh else np.array([])
            values = values[values > 0]
            dt[r] = values.mean() if len(values) else global_mean
        return dt
