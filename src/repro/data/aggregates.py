"""Order-log aggregations.

Everything the graphs and features need from the raw order records is
pre-aggregated here in one pass: order counts by (region, type[, period]),
store-region/customer-region transaction matrices per period, delivery-time
statistics per region pair and per region, and delivery-distance statistics
per store region.  These aggregates are *observable* quantities -- they are
derived purely from Table-I records.

Two build paths produce bit-identical aggregates:

* the reference record loop (any iterable of ``OrderRecord``), and
* :meth:`OrderAggregates.from_table`, the columnar path taken when the
  orders are an :class:`~repro.data.ordertable.OrderRecordSeq` view: counts
  via ``bincount``, float sums via ``np.add.at`` (unbuffered, so the
  accumulation order equals the record loop's, float-for-float), maxima via
  ``np.maximum.at``.

Pair statistics live in sorted :class:`PairTable` columns; the legacy
``pair_stats`` dicts are materialised lazily, in first-occurrence order, so
consumers that depend on dict insertion order (the courier mobility graph)
see exactly the reference ordering.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .periods import NUM_PERIODS, TimePeriod
from .records import MINUTES_PER_DAY, OrderRecord

PairKey = Tuple[int, int]  # (store_region, customer_region)

# int(created % 1440 // 60) -> TimePeriod, as a gather table.
_HOUR_PERIOD = np.array(
    [int(TimePeriod.from_hour(h)) for h in range(24)], dtype=np.int64
)


@dataclass
class PairStats:
    """Accumulated statistics for one (store-region, customer-region) pair."""

    count: int = 0
    distance_sum: float = 0.0
    delivery_sum: float = 0.0

    @property
    def mean_distance(self) -> float:
        return self.distance_sum / self.count if self.count else 0.0

    @property
    def mean_delivery(self) -> float:
        return self.delivery_sum / self.count if self.count else 0.0


@dataclass(eq=False)
class PairTable:
    """Columnar per-period pair statistics, sorted by ``s * N + u`` key.

    ``first_seen`` records where in the period's record stream each pair
    first occurred; iterating pairs by ascending ``first_seen`` reproduces
    the insertion order of the reference ``{(s, u): PairStats}`` dict,
    which downstream edge lists depend on.
    """

    num_regions: int
    keys: np.ndarray  # (K,) int64, sorted: store_region * N + customer_region
    counts: np.ndarray  # (K,) int64
    distance_sums: np.ndarray  # (K,) float64
    delivery_sums: np.ndarray  # (K,) float64
    first_seen: np.ndarray  # (K,) int64

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def empty(cls, num_regions: int) -> "PairTable":
        z = np.zeros(0, dtype=np.int64)
        return cls(num_regions, z, z.copy(), np.zeros(0), np.zeros(0),
                   z.copy())

    @classmethod
    def from_dict(
        cls, stats: Dict[PairKey, PairStats], num_regions: int
    ) -> "PairTable":
        if not stats:
            return cls.empty(num_regions)
        keys = np.array(
            [s * num_regions + u for (s, u) in stats], dtype=np.int64
        )
        counts = np.array([st.count for st in stats.values()], dtype=np.int64)
        dsums = np.array([st.distance_sum for st in stats.values()])
        lsums = np.array([st.delivery_sum for st in stats.values()])
        first = np.arange(len(keys), dtype=np.int64)  # insertion order
        order = np.argsort(keys, kind="stable")
        return cls(
            num_regions,
            keys[order],
            counts[order],
            dsums[order],
            lsums[order],
            first[order],
        )

    def to_dict(self) -> Dict[PairKey, PairStats]:
        """Materialise the reference dict, in first-occurrence order."""
        n = self.num_regions
        result: Dict[PairKey, PairStats] = {}
        for i in np.argsort(self.first_seen, kind="stable"):
            key = (int(self.keys[i] // n), int(self.keys[i] % n))
            result[key] = PairStats(
                count=int(self.counts[i]),
                distance_sum=float(self.distance_sums[i]),
                delivery_sum=float(self.delivery_sums[i]),
            )
        return result

    def counts_for(self, query_keys: np.ndarray) -> np.ndarray:
        """Pair counts for ``s * N + u`` keys (0 where the pair is absent)."""
        if not len(self.keys):
            return np.zeros(len(query_keys), dtype=np.int64)
        pos = np.searchsorted(self.keys, query_keys)
        pos_c = np.minimum(pos, len(self.keys) - 1)
        hit = self.keys[pos_c] == query_keys
        return np.where(hit, self.counts[pos_c], 0)


@dataclass
class OrderAggregates:
    """All per-month aggregates of an order log.

    Attributes
    ----------
    counts_sa:
        ``(N, T)`` orders per (store-region, type).
    counts_sat / counts_uat:
        ``(N, T, P)`` orders per (store-region | customer-region, type,
        period).
    pair_tables:
        Per period: a sorted :class:`PairTable` with counts, distances and
        delivery times -- the source of S-U edges and the courier mobility
        graph.  The legacy ``pair_stats`` dict view is a lazy property.
    farthest_distance / mean_distance:
        ``(N, P)`` farthest and average delivery distance per store region
        and period (drives the paper's S-U edge construction rule).
    region_delivery_time:
        ``(N,)`` average delivery minutes of orders from each store region
        (the Adaption baselines' courier-capacity feature).
    total_orders_s:
        ``(N, P)`` total orders of each store region per period.
    """

    num_regions: int
    num_types: int
    counts_sa: np.ndarray
    counts_sat: np.ndarray
    counts_uat: np.ndarray
    pair_tables: List[PairTable]
    farthest_distance: np.ndarray
    mean_distance: np.ndarray
    region_delivery_time: np.ndarray
    total_orders_s: np.ndarray

    @property
    def pair_stats(self) -> List[Dict[PairKey, PairStats]]:
        """Per-period ``{(s, u): PairStats}`` dicts (lazy, reference order)."""
        cached: Optional[List[Dict[PairKey, PairStats]]] = self.__dict__.get(
            "_pair_stats_cache"
        )
        if cached is None:
            cached = [pt.to_dict() for pt in self.pair_tables]
            self.__dict__["_pair_stats_cache"] = cached
        return cached

    def max_pair_count(self) -> int:
        """Largest per-period pair count across the month (0 when empty)."""
        return max(
            (int(pt.counts.max()) for pt in self.pair_tables if len(pt)),
            default=0,
        )

    @classmethod
    def from_orders(
        cls, orders: Iterable[OrderRecord], num_regions: int, num_types: int
    ) -> "OrderAggregates":
        table = getattr(orders, "table", None)
        if table is not None:
            return cls.from_table(table, num_regions, num_types)
        counts_sa = np.zeros((num_regions, num_types))
        counts_sat = np.zeros((num_regions, num_types, NUM_PERIODS))
        counts_uat = np.zeros((num_regions, num_types, NUM_PERIODS))
        pair_stats: List[Dict[PairKey, PairStats]] = [
            defaultdict(PairStats) for _ in range(NUM_PERIODS)
        ]
        farthest = np.zeros((num_regions, NUM_PERIODS))
        dist_sum = np.zeros((num_regions, NUM_PERIODS))
        dt_sum = np.zeros(num_regions)
        dt_count = np.zeros(num_regions)
        totals = np.zeros((num_regions, NUM_PERIODS))

        for o in orders:
            t = int(o.period)
            s, u, a = o.store_region, o.customer_region, o.store_type
            counts_sa[s, a] += 1
            counts_sat[s, a, t] += 1
            counts_uat[u, a, t] += 1
            stats = pair_stats[t][(s, u)]
            stats.count += 1
            stats.distance_sum += o.distance_m
            stats.delivery_sum += o.delivery_minutes
            farthest[s, t] = max(farthest[s, t], o.distance_m)
            dist_sum[s, t] += o.distance_m
            totals[s, t] += 1
            dt_sum[s] += o.delivery_minutes
            dt_count[s] += 1

        mean_distance = np.divide(
            dist_sum, totals, out=np.zeros_like(dist_sum), where=totals > 0
        )
        region_dt = np.divide(
            dt_sum, dt_count, out=np.zeros_like(dt_sum), where=dt_count > 0
        )
        materialised = [dict(p) for p in pair_stats]
        agg = cls(
            num_regions=num_regions,
            num_types=num_types,
            counts_sa=counts_sa,
            counts_sat=counts_sat,
            counts_uat=counts_uat,
            pair_tables=[
                PairTable.from_dict(p, num_regions) for p in materialised
            ],
            farthest_distance=farthest,
            mean_distance=mean_distance,
            region_delivery_time=region_dt,
            total_orders_s=totals,
        )
        agg.__dict__["_pair_stats_cache"] = materialised
        return agg

    @classmethod
    def from_table(
        cls, table, num_regions: int, num_types: int
    ) -> "OrderAggregates":
        """Columnar aggregation over an :class:`OrderTable`.

        Bit-identical to the record loop: integer counts are exact either
        way, float sums accumulate in record order (``np.add.at`` is
        unbuffered and processes elements in sequence), maxima are
        order-independent.
        """
        s = table.column("store_region").astype(np.int64)
        u = table.column("customer_region").astype(np.int64)
        a = table.column("store_type").astype(np.int64)
        dist = table.column("distance_m")
        delivery = table.column("delivered_minute") - table.column(
            "pickup_minute"
        )
        hours = (
            table.column("created_minute").astype(np.int64) % MINUTES_PER_DAY
        ) // 60
        t = _HOUR_PERIOD[hours]

        N, T, P = num_regions, num_types, NUM_PERIODS
        counts_sa = np.bincount(s * T + a, minlength=N * T).astype(
            np.float64
        ).reshape(N, T)
        counts_sat = np.bincount(
            (s * T + a) * P + t, minlength=N * T * P
        ).astype(np.float64).reshape(N, T, P)
        counts_uat = np.bincount(
            (u * T + a) * P + t, minlength=N * T * P
        ).astype(np.float64).reshape(N, T, P)

        farthest = np.zeros((N, P))
        np.maximum.at(farthest, (s, t), dist)
        dist_sum = np.zeros((N, P))
        np.add.at(dist_sum, (s, t), dist)
        totals = np.bincount(s * P + t, minlength=N * P).astype(
            np.float64
        ).reshape(N, P)
        dt_sum = np.zeros(N)
        np.add.at(dt_sum, s, delivery)
        dt_count = np.bincount(s, minlength=N).astype(np.float64)

        pair_key = s * N + u
        tables: List[PairTable] = []
        for t_i in range(P):
            mask = t == t_i
            keys_t = pair_key[mask]
            if not keys_t.size:
                tables.append(PairTable.empty(N))
                continue
            uniq, inv = np.unique(keys_t, return_inverse=True)
            cnt = np.bincount(inv, minlength=len(uniq)).astype(np.int64)
            dsum = np.zeros(len(uniq))
            np.add.at(dsum, inv, dist[mask])
            lsum = np.zeros(len(uniq))
            np.add.at(lsum, inv, delivery[mask])
            first = np.full(len(uniq), np.iinfo(np.int64).max)
            np.minimum.at(first, inv, np.arange(len(keys_t), dtype=np.int64))
            tables.append(PairTable(N, uniq, cnt, dsum, lsum, first))

        mean_distance = np.divide(
            dist_sum, totals, out=np.zeros_like(dist_sum), where=totals > 0
        )
        region_dt = np.divide(
            dt_sum, dt_count, out=np.zeros_like(dt_sum), where=dt_count > 0
        )
        return cls(
            num_regions=num_regions,
            num_types=num_types,
            counts_sa=counts_sa,
            counts_sat=counts_sat,
            counts_uat=counts_uat,
            pair_tables=tables,
            farthest_distance=farthest,
            mean_distance=mean_distance,
            region_delivery_time=region_dt,
            total_orders_s=totals,
        )

    # ------------------------------------------------------------------
    def store_regions(self, store_counts: np.ndarray) -> np.ndarray:
        """Regions that contain at least one store (the S node set)."""
        return np.flatnonzero(store_counts.sum(axis=1) > 0)

    def customer_regions(self) -> np.ndarray:
        """Regions whose customers placed at least one order (the U set)."""
        return np.flatnonzero(self.counts_uat.sum(axis=(1, 2)) > 0)

    def mobility_edges(
        self, period: TimePeriod, min_count: int = 1
    ) -> List[Tuple[int, int, float, int]]:
        """Courier mobility edges for one period.

        Returns ``(store_region, customer_region, mean_delivery_minutes,
        count)`` for every pair with at least ``min_count`` deliveries
        (Definition 3: edges carry the actual delivery time).  Emitted in
        first-occurrence order -- the insertion order of the reference
        ``pair_stats`` dict.
        """
        pt = self.pair_tables[int(period)]
        if not len(pt):
            return []
        order = np.argsort(pt.first_seen, kind="stable")
        keys = pt.keys[order]
        counts = pt.counts[order]
        means = np.divide(
            pt.delivery_sums[order],
            counts,
            out=np.zeros(len(counts)),
            where=counts > 0,
        )
        keep = counts >= min_count
        return [
            (int(k // pt.num_regions), int(k % pt.num_regions), float(m),
             int(c))
            for k, m, c in zip(keys[keep], means[keep], counts[keep])
        ]

    def neighborhood_preferences(
        self, grid, radius_m: float = 2000.0
    ) -> np.ndarray:
        """Customer-preference feature: per region, the vector of order
        counts of each type placed by customers in regions within
        ``radius_m`` (the Adaption setting of Section IV-A5; also Table II's
        preference signal)."""
        counts_u = self.counts_uat.sum(axis=2)  # (N, T)
        prefs = counts_u.copy()
        for r in range(self.num_regions):
            neigh = grid.neighbors_within(r, radius_m)
            if neigh:
                prefs[r] = counts_u[r] + counts_u[neigh].sum(axis=0)
        return prefs

    def filled_region_delivery_time(self, grid) -> np.ndarray:
        """Average delivery time per region, nearest-neighbour filled.

        Regions with no orders take the mean of their 1 km neighbours (the
        paper's missing-value rule for the Adaption setting).
        """
        dt = self.region_delivery_time.copy()
        missing = np.flatnonzero(dt == 0)
        global_mean = dt[dt > 0].mean() if (dt > 0).any() else 0.0
        for r in missing:
            neigh = grid.neighbors_within(r, 1000.0)
            values = dt[neigh] if neigh else np.array([])
            values = values[values > 0]
            dt[r] = values.mean() if len(values) else global_mean
        return dt
