"""Store placement.

Stores are placed per region with Poisson intensity from the land use, with
types drawn from the archetype-affinity of the catalogue.  Each store gets a
fixed location inside its region and a latent quality factor that scales its
attractiveness (never observed directly by the pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..data.records import StoreRecord
from .config import ARCHETYPES, CityConfig
from .landuse import CityLandUse


@dataclass
class PlacedStore:
    """A store plus its latent simulation attributes."""

    record: StoreRecord
    x: float  # metres
    y: float  # metres
    quality: float  # latent attractiveness multiplier


def place_stores(
    config: CityConfig, land: CityLandUse, rng: np.random.Generator
) -> List[PlacedStore]:
    """Sample stores for every region.

    Type choice weights combine the archetype affinity with the latent
    regional taste (market equilibrium: operators open stores of the types
    the neighbourhood demands) plus a small random perturbation.
    """
    stores: List[PlacedStore] = []
    affinity = np.array(
        [t.archetype_affinity for t in config.store_types]
    )  # (T, 4)
    # Popular categories are over-represented among stores, exactly as in a
    # real city (many light-meal shops, few bbq joints); this supply-demand
    # alignment is what makes neighbourhood preferences predictive of store
    # orders (Table II).
    popularity = np.array(
        [np.mean(t.period_popularity) for t in config.store_types]
    )
    counter = 0
    for region in range(land.num_regions):
        arch = int(land.archetype[region])
        # Store counts track commercial intensity closely (zoning and rents
        # regulate supply tightly); full Poisson noise would drown the
        # demand signal that site recommendation is meant to recover.
        count = int(round(land.commercial_intensity[region] + rng.normal(0.0, 0.7)))
        if count <= 0:
            continue
        weights = (
            affinity[:, arch]
            * popularity
            * land.taste[region]
            * rng.lognormal(0.0, 0.15, size=len(affinity))
        )
        weights = weights / weights.sum()
        types = rng.choice(len(config.store_types), size=count, p=weights)
        row, col = land.grid.row_col(region)
        for t in types:
            x = (col + rng.random()) * config.cell_size
            y = (row + rng.random()) * config.cell_size
            lon, lat = land.grid.to_lonlat(x, y)
            record = StoreRecord(
                store_id=f"S{counter:06d}",
                store_type=int(t),
                lon=lon,
                lat=lat,
                region=region,
            )
            stores.append(
                PlacedStore(
                    record=record,
                    x=x,
                    y=y,
                    quality=float(rng.lognormal(0.0, 0.35)),
                )
            )
            counter += 1
    if not stores:
        raise RuntimeError(
            "store placement produced no stores; increase commercial intensity"
        )
    return stores


def store_type_counts(
    stores: List[PlacedStore], num_regions: int, num_types: int
) -> np.ndarray:
    """``(num_regions, num_types)`` store counts (observable context data)."""
    counts = np.zeros((num_regions, num_types), dtype=np.float64)
    for s in stores:
        counts[s.record.region, s.record.store_type] += 1
    return counts
