"""Command-line city generator.

Simulate a city-month and write the order log + store registry to CSV:

    python -m repro.city --rows 12 --cols 12 --days 7 --out-dir ./data
    python -m repro.city --preset real --scale 0.6 --out-dir ./data
"""

from __future__ import annotations

import argparse
from pathlib import Path

from ..data.io import save_orders, save_stores
from .config import CityConfig
from .simulator import real_world_dataset, simulate, simulation_dataset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.city",
        description="Generate a synthetic O2O city-month as CSV files.",
    )
    parser.add_argument("--preset", choices=["real", "sim", "custom"], default="custom")
    parser.add_argument("--scale", type=float, default=1.0, help="preset scale")
    parser.add_argument("--rows", type=int, default=10)
    parser.add_argument("--cols", type=int, default=10)
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--couriers", type=int, default=150)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--dispatch",
        choices=["formula", "agents"],
        default="formula",
        help="delivery-time process (see repro.city.dispatch)",
    )
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.preset == "real":
        sim = real_world_dataset(seed=args.seed, scale=args.scale)
    elif args.preset == "sim":
        sim = simulation_dataset(seed=args.seed, scale=args.scale)
    else:
        sim = simulate(
            CityConfig(
                rows=args.rows,
                cols=args.cols,
                num_days=args.days,
                num_couriers=args.couriers,
                seed=args.seed,
                dispatch_mode=args.dispatch,
            )
        )

    args.out_dir.mkdir(parents=True, exist_ok=True)
    orders_path = args.out_dir / "orders.csv"
    stores_path = args.out_dir / "stores.csv"
    n_orders = save_orders(sim.orders, orders_path)
    n_stores = save_stores([s.record for s in sim.stores], stores_path)

    print(sim.summary())
    print(f"wrote {n_orders} orders to {orders_path}")
    print(f"wrote {n_stores} stores to {stores_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
