"""Courier trajectory synthesis.

The real platform uploads courier GPS points every 20 seconds (Section
II-A); the paper uses trajectories only to infer per-edge delivery times.
We synthesise trajectories by linear interpolation between the store and
the customer over the delivery interval, with lateral jitter to mimic road
noise.  Offered both as a generator (memory-safe for large months) and a
convenience list builder.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from ..data.records import OrderRecord, TrajectoryPoint
from ..geo import RegionGrid


def trajectory_for_order(
    order: OrderRecord,
    grid: RegionGrid,
    interval_s: float = 20.0,
    jitter_m: float = 25.0,
    rng: np.random.Generator = None,
) -> List[TrajectoryPoint]:
    """GPS points for one delivery leg (store -> customer)."""
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    rng = rng or np.random.default_rng(0)
    sx, sy = grid.from_lonlat(order.store_lon, order.store_lat)
    cx, cy = grid.from_lonlat(order.customer_lon, order.customer_lat)
    duration = order.delivery_minutes
    steps = max(int(duration * 60.0 / interval_s), 1)
    points = []
    for i in range(steps + 1):
        frac = i / steps
        x = sx + (cx - sx) * frac + rng.normal(0, jitter_m)
        y = sy + (cy - sy) * frac + rng.normal(0, jitter_m)
        lon, lat = grid.to_lonlat(x, y)
        points.append(
            TrajectoryPoint(
                courier_id=order.courier_id,
                minute=order.pickup_minute + duration * frac,
                lon=lon,
                lat=lat,
            )
        )
    return points


def iter_trajectories(
    orders: Iterable[OrderRecord],
    grid: RegionGrid,
    interval_s: float = 20.0,
    seed: int = 0,
) -> Iterator[TrajectoryPoint]:
    """Stream trajectory points for many orders (lazy)."""
    rng = np.random.default_rng(seed)
    for order in orders:
        yield from trajectory_for_order(order, grid, interval_s, rng=rng)
