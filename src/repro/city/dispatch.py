"""Event-driven courier dispatch simulation.

The default simulator stamps delivery times from a closed-form congestion
model.  This module offers the agent-based alternative
(``CityConfig.dispatch_mode = "agents"``): couriers are stateful agents
with positions and availability times; each order is assigned to the
courier who can reach the store soonest, and pickup/delivery timestamps
emerge from the agents' movements.  Rush-hour shortages then produce long
delivery times *mechanically* -- every courier is still finishing the
previous job -- rather than through a formula, which is how the real
platform's capacity constraint (Section II-B) actually arises.

The dispatcher mirrors published descriptions of on-demand dispatch (cf.
the paper's reference [1]): greedy nearest-ETA assignment over the on-shift
fleet, with couriers returning to duty at the customer's location.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..data.periods import TimePeriod
from ..data.records import OrderRecord
from .config import CityConfig
from .couriers import ACTIVE_FRACTION, CourierFleet
from .fastsim import fast_sim_enabled
from .landuse import CityLandUse


@dataclass
class CourierState:
    """One courier agent."""

    courier_id: str
    x: float
    y: float
    available_at: float  # minute the courier is free again
    on_shift: bool = True


class DispatchSimulator:
    """Greedy nearest-ETA dispatcher over a stateful courier fleet."""

    def __init__(
        self,
        config: CityConfig,
        land: CityLandUse,
        fleet: CourierFleet,
        rng: np.random.Generator,
        max_wait_minutes: float = 45.0,
    ) -> None:
        if max_wait_minutes <= 0:
            raise ValueError("max_wait_minutes must be positive")
        self.config = config
        self.land = land
        self.fleet = fleet
        self.rng = rng
        # The platform's admission control: if no courier can reach the
        # store within this bound, the order is rejected (in reality the
        # delivery scope would have been shrunk before this point -- this
        # is the same pressure-control mechanism at the dispatch stage).
        self.max_wait_minutes = max_wait_minutes
        self.rejected: int = 0
        self._couriers = self._spawn_couriers()
        # Vectorised views of courier state, kept in sync with _couriers.
        self._xy = np.array([[c.x, c.y] for c in self._couriers])
        self._available = np.array([c.available_at for c in self._couriers])

    def _spawn_couriers(self) -> List[CourierState]:
        couriers: List[CourierState] = []
        grid = self.land.grid
        for region, pool in enumerate(self.fleet.couriers_by_region):
            row, col = grid.row_col(region)
            for courier_id in pool:
                x = (col + self.rng.random()) * self.config.cell_size
                y = (row + self.rng.random()) * self.config.cell_size
                couriers.append(
                    CourierState(courier_id=courier_id, x=x, y=y, available_at=0.0)
                )
        if not couriers:
            raise RuntimeError("fleet has no couriers to dispatch")
        return couriers

    # ------------------------------------------------------------------
    def _on_shift_mask(self, minute: float) -> np.ndarray:
        """Which couriers are on shift at ``minute``.

        Shift membership is deterministic per courier and period: courier
        ``i`` works a period when ``i`` falls inside the period's active
        fraction of the (rotated) fleet, so the on-duty headcount matches
        the schedule the closed-form model uses.
        """
        period = TimePeriod.from_hour(int((minute % 1440) // 60))
        fraction = ACTIVE_FRACTION[period]
        n = len(self._couriers)
        count = max(int(round(fraction * n)), 1)
        start = int(period) * (n // 5)
        indices = (np.arange(count) + start) % n
        mask = np.zeros(n, dtype=bool)
        mask[indices] = True
        return mask

    def assign(self, order: OrderRecord) -> Optional[OrderRecord]:
        """Dispatch one order; ``None`` if admission control rejects it.

        The store-side fields, creation time and customer location are kept;
        acceptance, pickup and delivery are recomputed from the assigned
        courier's state.
        """
        cfg = self.config
        grid = self.land.grid
        sx, sy = grid.from_lonlat(order.store_lon, order.store_lat)
        cx, cy = grid.from_lonlat(order.customer_lon, order.customer_lat)

        mask = self._on_shift_mask(order.created_minute)
        candidates = np.flatnonzero(mask)
        if len(candidates) == 0:  # pragma: no cover - mask always non-empty
            candidates = np.arange(len(self._couriers))

        to_store = np.hypot(
            self._xy[candidates, 0] - sx, self._xy[candidates, 1] - sy
        )
        free_at = np.maximum(self._available[candidates], order.created_minute)
        eta = free_at + to_store / cfg.courier_speed_m_per_min
        best = int(candidates[np.argmin(eta)])
        if float(np.min(eta)) - order.created_minute > self.max_wait_minutes:
            self.rejected += 1
            return None

        accepted = max(
            order.created_minute + 0.3,
            min(float(eta[np.argmin(eta)]) - 1e-9, order.created_minute + 15.0),
        )
        accepted = max(accepted, order.created_minute + 0.3)

        prep_ready = order.pickup_minute - order.accepted_minute  # original prep
        arrive_store = float(np.min(eta)) + cfg.handling_minutes / 2.0
        pickup = max(arrive_store, order.created_minute + prep_ready)

        travel = (
            np.hypot(sx - cx, sy - cy) / cfg.courier_speed_m_per_min
        ) * self.rng.lognormal(0.0, 0.08)
        delivered = pickup + travel + cfg.handling_minutes / 2.0

        # Update the winning courier: finishes at the customer's door.
        courier = self._couriers[best]
        courier.x, courier.y = cx, cy
        courier.available_at = delivered + 0.5  # drop-off/confirmation
        self._xy[best] = (cx, cy)
        self._available[best] = courier.available_at

        return replace(
            order,
            courier_id=courier.courier_id,
            accepted_minute=min(accepted, pickup),
            pickup_minute=pickup,
            delivered_minute=delivered,
        )

    def run(self, orders: Sequence[OrderRecord]) -> List[OrderRecord]:
        """Dispatch a month of orders in creation order.

        Rejected orders (admission control) are dropped from the log, as
        they would never appear in the platform's completed-order records;
        the count is available as :attr:`rejected`.
        """
        ordered = sorted(orders, key=lambda o: o.created_minute)
        if fast_sim_enabled():
            return self._run_fast(ordered)
        dispatched = (self.assign(o) for o in ordered)
        return [o for o in dispatched if o is not None]

    def _run_fast(self, ordered: List[OrderRecord]) -> List[OrderRecord]:
        """:meth:`assign` loop with per-order overhead hoisted.

        Bit-for-bit equal to the reference: the sole RNG draw per accepted
        order happens at the same point in the stream, the store/customer
        coordinates are the same ``from_lonlat`` arithmetic evaluated
        columnar up front, and the on-shift candidate set (a pure function
        of the period) is computed once per period instead of per order.
        """
        cfg = self.config
        grid = self.land.grid
        speed = cfg.courier_speed_m_per_min
        half_handling = cfg.handling_minutes / 2.0
        max_wait = self.max_wait_minutes
        n = len(self._couriers)

        slon = np.array([o.store_lon for o in ordered])
        slat = np.array([o.store_lat for o in ordered])
        clon = np.array([o.customer_lon for o in ordered])
        clat = np.array([o.customer_lat for o in ordered])
        sx, sy = grid.from_lonlat(slon, slat)
        cx, cy = grid.from_lonlat(clon, clat)
        sx = sx.tolist()
        sy = sy.tolist()
        cx = cx.tolist()
        cy = cy.tolist()

        candidate_cache = {}
        xy = self._xy
        available = self._available
        couriers = self._couriers
        lognormal = self.rng.lognormal
        out: List[OrderRecord] = []

        for i, order in enumerate(ordered):
            created = order.created_minute
            period = TimePeriod.from_hour(int((created % 1440) // 60))
            candidates = candidate_cache.get(period)
            if candidates is None:
                mask = self._on_shift_mask(created)
                candidates = np.flatnonzero(mask)
                if len(candidates) == 0:  # pragma: no cover - non-empty
                    candidates = np.arange(n)
                candidate_cache[period] = candidates

            sxi = sx[i]
            syi = sy[i]
            to_store = np.hypot(xy[candidates, 0] - sxi, xy[candidates, 1] - syi)
            free_at = np.maximum(available[candidates], created)
            eta = free_at + to_store / speed
            j = int(np.argmin(eta))
            eta_min = float(eta[j])
            if eta_min - created > max_wait:
                self.rejected += 1
                continue
            best = int(candidates[j])

            accepted = max(
                created + 0.3, min(eta_min - 1e-9, created + 15.0)
            )
            prep_ready = order.pickup_minute - order.accepted_minute
            arrive_store = eta_min + half_handling
            pickup = max(arrive_store, created + prep_ready)

            cxi = cx[i]
            cyi = cy[i]
            travel = (np.hypot(sxi - cxi, syi - cyi) / speed) * lognormal(
                0.0, 0.08
            )
            delivered = pickup + travel + half_handling

            courier = couriers[best]
            courier.x, courier.y = cxi, cyi
            courier.available_at = delivered + 0.5
            xy[best] = (cxi, cyi)
            available[best] = courier.available_at

            out.append(
                replace(
                    order,
                    courier_id=courier.courier_id,
                    accepted_minute=min(accepted, pickup),
                    pickup_minute=pickup,
                    delivered_minute=delivered,
                )
            )
        return out

    # ------------------------------------------------------------------
    def utilisation(self, minute: float) -> float:
        """Fraction of on-shift couriers busy at ``minute`` (diagnostics)."""
        mask = self._on_shift_mask(minute)
        if not mask.any():
            return 0.0
        busy = self._available[mask] > minute
        return float(busy.mean())


def dispatch_orders(
    config: CityConfig,
    land: CityLandUse,
    fleet: CourierFleet,
    orders: Sequence[OrderRecord],
    seed: int = 0,
) -> List[OrderRecord]:
    """Convenience wrapper: agent-dispatch a generated order list."""
    rng = np.random.default_rng(seed)
    return DispatchSimulator(config, land, fleet, rng).run(orders)
