"""Switch for the vectorised simulation fast path (``O2_FAST_SIM``).

The reference simulator (:mod:`repro.city.orders`, :mod:`repro.city.dispatch`,
:func:`repro.city.simulator._resynthesize_customer_locations`) draws every
per-order random variate and assembles every record inside nested Python
loops.  The fast path produces **bit-for-bit identical** order streams by

* consuming the shared RNG in exactly the reference draw order (grouped
  draws stay grouped, per-order draws stay per-order, only consolidated
  into fewer ``Generator`` calls that provably consume the same bits), and
* moving all derived arithmetic (locations, timestamps, delivery times)
  out of the loop into columnar numpy expressions that reproduce the
  reference's scalar operation order elementwise.

The equivalences this relies on (verified by ``tests/test_fast_sim.py``):

* ``rng.random(n)`` draws the same doubles as ``n`` scalar ``rng.random()``
  calls;
* ``rng.lognormal(0.0, [s1, s2])`` draws the same values as two scalar
  ``rng.lognormal(0.0, si)`` calls;
* ``rng.normal(0.0, s)`` equals ``s * rng.standard_normal()`` bit-for-bit
  (``0.0 + s*z`` cannot round differently from ``s*z``);
* ``rng.choice(a, size=k, p=p)`` equals ``a[cdf.searchsorted(rng.random(k),
  'right')]`` with ``cdf = p.cumsum(); cdf /= cdf[-1]`` -- numpy's own
  implementation of the replacement path.

Like ``O2_FAST_KERNELS`` the switch defaults to on; ``O2_FAST_SIM=0`` pins
the reference loops (which reproduce the pre-optimisation records exactly,
because they *are* the pre-optimisation code).
"""

from __future__ import annotations

from typing import Optional

from ..runtime import env_flag

__all__ = [
    "fast_sim_enabled",
    "set_fast_sim",
    "use_fast_sim",
    "order_table_enabled",
    "set_order_table",
    "use_order_table",
]

_fast_sim = env_flag("O2_FAST_SIM", True)
_order_table = env_flag("O2_ORDER_TABLE", True)


def fast_sim_enabled() -> bool:
    """Whether the simulator uses the vectorised (columnar) hot loops."""
    return _fast_sim


def set_fast_sim(enabled: bool) -> bool:
    """Toggle the fast simulation path; returns the previous setting."""
    global _fast_sim
    previous = _fast_sim
    _fast_sim = bool(enabled)
    return previous


class use_fast_sim:
    """Context manager pinning the fast-sim switch (tests/benchmarks)."""

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._previous: Optional[bool] = None

    def __enter__(self) -> "use_fast_sim":
        self._previous = set_fast_sim(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_fast_sim(self._previous)


def order_table_enabled() -> bool:
    """Whether the fast path emits a columnar :class:`OrderTable`.

    On (the default) the fast simulation paths return the struct-of-arrays
    order log behind a lazy record view -- record-identical to the list the
    reference loop builds, but ~4x smaller and consumable without Python
    loops.  ``O2_ORDER_TABLE=0`` pins the materialised ``List[OrderRecord]``
    (the pre-PR-9 representation; also the serial baseline leg of
    ``benchmarks/bench_megacity.py``).
    """
    return _order_table


def set_order_table(enabled: bool) -> bool:
    """Toggle columnar order emission; returns the previous setting."""
    global _order_table
    previous = _order_table
    _order_table = bool(enabled)
    return previous


class use_order_table:
    """Context manager pinning the order-table switch (tests/benchmarks)."""

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._previous: Optional[bool] = None

    def __enter__(self) -> "use_order_table":
        self._previous = set_order_table(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_order_table(self._previous)
