"""Land-use archetypes and static city synthesis (regions, POIs, roads).

Each region is assigned one of four archetypes -- downtown, office,
residential, suburb -- as a function of distance from the city centre plus
noise.  The archetype drives everything observable about the region: POI
mix, road density, population by period, commercial intensity.  The learning
pipeline never sees the archetype itself (it is latent), only the derived
context data, mirroring how the real pipeline sees Gaode POIs and OSM roads
but not "the zoning plan".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..data.periods import NUM_PERIODS, TimePeriod
from ..geo import RegionGrid
from .config import ARCHETYPES, NUM_ARCHETYPES, POI_TYPES, CityConfig

# Population profile per period, per archetype (relative occupancy).
#            morn  noon  aft   eve   night
_POPULATION_PROFILE = {
    "downtown": (0.8, 1.3, 1.1, 1.3, 1.0),
    "office": (1.0, 1.6, 1.3, 0.9, 0.3),
    "residential": (1.2, 0.7, 0.8, 1.3, 1.4),
    "suburb": (0.9, 0.6, 0.6, 0.9, 1.0),
}

# Mean population scale relative to CityConfig.base_population.
_POPULATION_SCALE = {
    "downtown": 1.3,
    "office": 1.1,
    "residential": 1.0,
    "suburb": 0.45,
}

# POI intensity per archetype over POI_TYPES (Poisson means).
_POI_PROFILE = {
    #              rest off  res  mall sch  hosp metro ent  bank park
    "downtown": (22, 10, 8, 6, 2, 2, 3, 8, 6, 2),
    "office": (14, 18, 4, 3, 2, 1, 3, 3, 8, 1),
    "residential": (10, 2, 20, 2, 4, 2, 1, 2, 2, 3),
    "suburb": (3, 1, 6, 0.5, 1, 0.5, 0.3, 0.5, 0.5, 2),
}

# Road density (roads, intersections) Poisson means.
_ROAD_PROFILE = {
    "downtown": (26, 18),
    "office": (22, 15),
    "residential": (16, 10),
    "suburb": (7, 4),
}

# Number of stores per region (Poisson mean).
_COMMERCIAL_INTENSITY = {
    "downtown": 11.0,
    "office": 8.0,
    "residential": 5.5,
    "suburb": 1.6,
}


@dataclass
class CityLandUse:
    """Static synthetic city: archetypes and derived context data.

    Attributes
    ----------
    grid:
        The region partition.
    archetype:
        ``(N,)`` int array indexing into :data:`ARCHETYPES`.
    poi_counts:
        ``(N, len(POI_TYPES))`` POI counts (public context data).
    roads, intersections:
        ``(N,)`` road-network statistics (public context data).
    population:
        ``(N, NUM_PERIODS)`` mean population per period (latent; the
        pipeline only observes orders).
    commercial_intensity:
        ``(N,)`` expected number of stores (latent).
    taste:
        ``(N, num_store_types)`` sticky regional taste multipliers (latent).
        Shared by store placement and order generation: real store layouts
        equilibrate with local demand, which is what produces the strong
        preference-order correlation of Table II.
    """

    grid: RegionGrid
    archetype: np.ndarray
    poi_counts: np.ndarray
    roads: np.ndarray
    intersections: np.ndarray
    population: np.ndarray
    commercial_intensity: np.ndarray
    taste: np.ndarray

    @property
    def num_regions(self) -> int:
        return self.grid.num_regions

    def archetype_name(self, region: int) -> str:
        return ARCHETYPES[int(self.archetype[region])]

    def regions_of_archetype(self, name: str) -> np.ndarray:
        """Region ids whose archetype is ``name`` (used by Fig. 14)."""
        idx = ARCHETYPES.index(name)
        return np.flatnonzero(self.archetype == idx)


def assign_archetypes(grid: RegionGrid, rng: np.random.Generator) -> np.ndarray:
    """Sample an archetype per region from a distance-from-centre prior."""
    n = grid.num_regions
    d = np.array([grid.distance_from_center(r) for r in range(n)])
    d_norm = d / max(d.max(), 1.0)

    # Probability of each archetype as a function of normalised distance.
    p_downtown = np.clip(1.1 - 2.6 * d_norm, 0.02, None)
    p_office = np.clip(0.9 - 1.6 * np.abs(d_norm - 0.25), 0.02, None)
    p_residential = np.clip(1.0 - 1.8 * np.abs(d_norm - 0.55), 0.05, None)
    p_suburb = np.clip(2.2 * d_norm - 0.9, 0.01, None)
    probs = np.stack([p_downtown, p_office, p_residential, p_suburb], axis=1)
    probs /= probs.sum(axis=1, keepdims=True)

    cumulative = probs.cumsum(axis=1)
    draws = rng.random(n)[:, None]
    return (draws > cumulative).sum(axis=1).astype(np.int64)


def _smooth_field(
    values: np.ndarray, grid: RegionGrid, passes: int = 2, radius_m: float = 800.0
) -> np.ndarray:
    """Spatially smooth a per-region field by neighbourhood averaging.

    Real demand fields are spatially coherent (adjacent neighbourhoods share
    tastes and density); iid noise per region would destroy the strong
    preference-order correlation of Table II.
    """
    neighbors = [grid.neighbors_within(r, radius_m) for r in range(grid.num_regions)]
    out = np.asarray(values, dtype=np.float64).copy()
    for _ in range(passes):
        smoothed = out.copy()
        for r, neigh in enumerate(neighbors):
            if neigh:
                smoothed[r] = 0.5 * out[r] + 0.5 * out[neigh].mean(axis=0)
        out = smoothed
    return out


def synthesize_land_use(config: CityConfig, rng: np.random.Generator) -> CityLandUse:
    """Build the static city: archetypes, POIs, roads, populations."""
    grid = RegionGrid(config.rows, config.cols, config.cell_size)
    archetype = assign_archetypes(grid, rng)
    n = grid.num_regions

    poi_means = np.array([_POI_PROFILE[ARCHETYPES[a]] for a in archetype])
    poi_counts = rng.poisson(poi_means).astype(np.float64)

    road_means = np.array([_ROAD_PROFILE[ARCHETYPES[a]] for a in archetype])
    roads = rng.poisson(road_means[:, 0]).astype(np.float64)
    intersections = rng.poisson(road_means[:, 1]).astype(np.float64)

    profile = np.array([_POPULATION_PROFILE[ARCHETYPES[a]] for a in archetype])
    scale = np.array([_POPULATION_SCALE[ARCHETYPES[a]] for a in archetype])
    log_noise = _smooth_field(rng.normal(0.0, 0.35, size=n), grid)
    base = config.base_population * _smooth_field(scale, grid) * np.exp(log_noise)
    population = base[:, None] * profile

    # Stores concentrate where demand is (market equilibrium): scale the
    # archetype intensity by relative population density.
    density = population.mean(axis=1)
    density_factor = density / max(density.mean(), 1e-9)
    intensity_noise = np.exp(_smooth_field(rng.normal(0.0, 0.2, size=n), grid))
    intensity = (
        np.array([_COMMERCIAL_INTENSITY[ARCHETYPES[a]] for a in archetype])
        * density_factor
        * intensity_noise
    )

    taste = np.exp(
        _smooth_field(
            rng.normal(0.0, 0.5, size=(n, config.num_store_types)), grid
        )
    )

    return CityLandUse(
        grid=grid,
        archetype=archetype,
        poi_counts=poi_counts,
        roads=roads,
        intersections=intersections,
        population=population,
        commercial_intensity=intensity,
        taste=taste,
    )
