"""Synthetic O2O city simulator (the stand-in for the Eleme dataset)."""

from .config import (
    ARCHETYPES,
    NUM_ARCHETYPES,
    POI_TYPES,
    CityConfig,
    StoreType,
    default_store_types,
)
from .couriers import ACTIVE_FRACTION, ORDER_PROPENSITY, CourierFleet, build_fleet
from .dispatch import CourierState, DispatchSimulator, dispatch_orders
from .landuse import CityLandUse, assign_archetypes, synthesize_land_use
from .orders import OrderGenerator
from .simulator import (
    SimulationResult,
    megacity_dataset,
    metropolis_dataset,
    real_world_dataset,
    simulate,
    simulation_dataset,
    tiny_dataset,
)
from .stores import PlacedStore, place_stores, store_type_counts
from .trajectories import iter_trajectories, trajectory_for_order

__all__ = [
    "CityConfig",
    "StoreType",
    "default_store_types",
    "ARCHETYPES",
    "NUM_ARCHETYPES",
    "POI_TYPES",
    "CityLandUse",
    "assign_archetypes",
    "synthesize_land_use",
    "PlacedStore",
    "place_stores",
    "store_type_counts",
    "CourierFleet",
    "build_fleet",
    "DispatchSimulator",
    "CourierState",
    "dispatch_orders",
    "ACTIVE_FRACTION",
    "ORDER_PROPENSITY",
    "OrderGenerator",
    "SimulationResult",
    "simulate",
    "megacity_dataset",
    "metropolis_dataset",
    "real_world_dataset",
    "simulation_dataset",
    "tiny_dataset",
    "trajectory_for_order",
    "iter_trajectories",
]
