"""Tile-parallel order generation with deterministic per-tile RNG streams.

``CityConfig.order_streams == "tiles"`` replaces the shared-stream order
generator with an embarrassingly parallel one: the region grid is cut into
near-square tiles of ~:data:`TILE_TARGET_REGIONS` regions
(:func:`repro.graphs.partition.partition_grid` -- the same tiling the
sharded graph plane uses), every tile draws all of its orders from its own
``SeedSequence``-spawned stream, and the per-tile columnar chunks are
stitched in tile order into one :class:`~repro.data.ordertable.OrderTable`.

Determinism contract: the output is a pure function of the config.  The
tile layout depends only on the grid shape (a fixed target constant, never
an environment knob), each tile's stream is ``SeedSequence(seed).spawn``
child ``tile + 1`` (child ``0`` drives the city-wide day factors), and
stitching is by tile id -- so one process, ``O2_NUM_PROCS=4``, or any other
worker count produce byte-identical tables (pinned by
``tests/test_tilesim.py``), and pipeline-cache keys never shift with the
execution environment.

This mode is a *different stochastic discipline* from ``"shared"``: the
shared stream interleaves every order's draws in one global sequence (the
paper-scale reference, bit-pinned by ``tests/test_fast_sim.py``), while
tiles draw block-wise.  Same demand model, same arithmetic
(:func:`repro.city.orders.compute_order_columns`), different random
numbers -- which is exactly what makes the mode parallel and fully
vectorised: per-tile Poisson tensors, one augmented-``searchsorted`` pass
for type choice, per-(period, type) candidate tables restricted to touched
regions and halo stores for store choice.

Under a process pool, workers spill their column chunks as ``.npy`` files
into a shared on-disk arena and the parent stitches memory-mapped loads --
order logs never travel through pickle.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.ordertable import COLUMNS, OrderTable
from ..data.periods import NUM_PERIODS, TimePeriod
from ..data.records import MINUTES_PER_DAY
from ..graphs.partition import GridTilePartition, partition_grid
from ..parallel import num_procs, process_map
from .fastsim import order_table_enabled

__all__ = ["TILE_TARGET_REGIONS", "generate_tiled", "tile_layout"]

# Target regions per tile.  A fixed constant (never an env knob): the tile
# layout -- and therefore the RNG stream assignment and the output -- must
# be a pure function of the city config so cached artifacts stay valid
# across machines and worker counts.
TILE_TARGET_REGIONS = 1024


def tile_layout(rows: int, cols: int) -> GridTilePartition:
    """The canonical tiling for a ``rows x cols`` city."""
    want = max(1, -(-(rows * cols) // TILE_TARGET_REGIONS))
    return partition_grid(rows, cols, want)


# ----------------------------------------------------------------------
# Worker context.  Set in the parent before forking; tile workers are
# top-level functions (``Pool.map`` pickles the callable even under fork)
# that read this module global inherited through fork.
@dataclass
class _TileContext:
    gen: object  # OrderGenerator
    partition: GridTilePartition
    streams: List[np.random.SeedSequence]
    day_factors: np.ndarray  # (D,)
    store_x: np.ndarray  # (S,)
    store_y: np.ndarray  # (S,)
    pool_sizes: np.ndarray  # (N,) effective courier-pool sizes
    period_start: np.ndarray  # (P,) start hour
    period_hours: np.ndarray  # (P,) duration in hours
    halo_m: float  # candidate-store halo width in metres
    arena: Optional[str] = None  # spill directory under a process pool
    by_type: List[np.ndarray] = field(default_factory=list)  # global stores/type


_TILE_CTX: Optional[_TileContext] = None


def _chunk_path(arena: str, tile: int, name: str) -> str:
    return os.path.join(arena, f"tile{tile:05d}_{name}.npy")


def _tile_worker(tile: int) -> int:
    """Pool entry point: generate one tile, spill columns to the arena."""
    ctx = _TILE_CTX
    chunk = _tile_columns(tile)
    if chunk is None:
        return 0
    for name in COLUMNS:
        np.save(_chunk_path(ctx.arena, tile, name), chunk[name],
                allow_pickle=False)
    return len(chunk[COLUMNS[0]])


def _load_chunk(arena: str, tile: int) -> Dict[str, np.ndarray]:
    return {
        name: np.load(_chunk_path(arena, tile, name), mmap_mode="r",
                      allow_pickle=False)
        for name in COLUMNS
    }


# ----------------------------------------------------------------------
# Per-tile generation: one vectorised pass, one private RNG stream.
def _tile_columns(tile: int) -> Optional[Dict[str, np.ndarray]]:
    ctx = _TILE_CTX
    gen = ctx.gen
    cfg = gen.config
    grid = gen.land.grid
    rng = np.random.default_rng(ctx.streams[tile])

    tregs = ctx.partition.tile_regions(tile)  # global region ids, ascending
    n_local = len(tregs)
    num_days = cfg.num_days

    # 1. Demand: Poisson counts over (day, period, local region).
    lam = (
        ctx.day_factors[:, None, None]
        * (gen.fleet.demand_rate[tregs].T * ctx.period_hours[:, None])[None]
    )  # (D, P, R)
    counts = rng.poisson(lam)
    n = int(counts.sum())
    if n == 0:
        return None

    # Expand to per-order (day, period, local-region) labels in C order --
    # day outer, period, region -- mirroring the reference loop nesting.
    cell = np.repeat(np.arange(counts.size, dtype=np.int64), counts.ravel())
    d_of = cell // (NUM_PERIODS * n_local)
    p_of = (cell // n_local) % NUM_PERIODS
    r_of = cell % n_local  # local row into tregs

    # 2. Store type per order: inverse-CDF over the (region, period) type
    # distribution, all orders in one augmented searchsorted.
    arch = gen.land.archetype[tregs].astype(np.int64)  # (R,)
    taste = gen.land.taste[tregs]  # (R, T)
    num_types = cfg.num_store_types
    # W[r, p, ty] = popularity[ty, p] * affinity[ty, arch[r]] * taste[r, ty]
    weights = (
        gen._popularity.T[None, :, :]
        * gen._affinity[:, arch].T[:, None, :]
        * taste[:, None, :]
    )  # (R, P, T)
    totals = weights.sum(axis=2, keepdims=True)
    probs = np.divide(
        weights,
        totals,
        out=np.full_like(weights, 1.0 / num_types),
        where=totals > 0,
    )
    type_cdf = probs.cumsum(axis=2).reshape(n_local * NUM_PERIODS, num_types)
    np.clip(type_cdf, 0.0, 1.0, out=type_cdf)  # keep the augmented key sorted
    type_cdf[:, -1] = 1.0
    group = r_of * NUM_PERIODS + p_of
    aug = (
        np.arange(n_local * NUM_PERIODS, dtype=np.float64)[:, None] + type_cdf
    ).ravel()
    u_type = rng.random(n)
    ty_of = np.searchsorted(aug, group + u_type, side="right") - group * num_types

    # 3. Store per order.  ``u_store`` is drawn for every order up front (a
    # fixed stream position independent of candidate availability); the
    # per-(period, type) loop only decides how each u is interpreted.
    u_store = rng.random(n)
    pick = np.full(n, -1, dtype=np.int64)

    r0, r1, c0, c1 = ctx.partition.tile_bounds(tile)
    x0, x1 = c0 * cfg.cell_size - ctx.halo_m, c1 * cfg.cell_size + ctx.halo_m
    y0, y1 = r0 * cfg.cell_size - ctx.halo_m, r1 * cfg.cell_size + ctx.halo_m

    cen = gen._centroids  # (N, 2) metres
    sregions = gen._store_regions
    squal = np.asarray([s.quality for s in gen.stores])
    scopes = gen._scopes  # (N, P)
    cong = gen._congestion  # (S, P)
    speed = cfg.courier_speed_m_per_min

    for p in range(NUM_PERIODS):
        in_p = p_of == p
        for ty in range(num_types):
            sel = np.flatnonzero(in_p & (ty_of == ty))
            if len(sel) == 0:
                continue
            cand = ctx.by_type[ty]
            cand_h = cand[
                (ctx.store_x[cand] >= x0) & (ctx.store_x[cand] <= x1)
                & (ctx.store_y[cand] >= y0) & (ctx.store_y[cand] <= y1)
            ]
            # The 3-nearest fallback may reach past the halo: only trust the
            # halo subset when it can serve the fallback on its own.
            if len(cand_h) >= 3:
                cand = cand_h
            if len(cand) == 0:
                continue  # type has no store anywhere: orders dropped
            rows = np.unique(r_of[sel])  # touched local regions
            row_of = np.searchsorted(rows, r_of[sel])
            cxy = cen[tregs[rows]]  # (m, 2)
            dx = ctx.store_x[cand][None, :] - cxy[:, 0:1]
            dy = ctx.store_y[cand][None, :] - cxy[:, 1:2]
            dmat = np.sqrt(dx * dx + dy * dy)  # (m, k)
            est = cfg.handling_minutes + dmat / speed * cong[cand, p][None, :]
            wmat = squal[cand][None, :] * np.exp(
                -(dmat / cfg.distance_decay_m + est / cfg.time_tolerance_min)
            )
            wmat = np.where(dmat <= scopes[sregions[cand], p][None, :], wmat, 0.0)
            rowsum = wmat.sum(axis=1)
            for b in np.flatnonzero(rowsum <= 0):
                # No store's scope covers this region: the platform still
                # shows the three nearest (long delivery times and all).
                nearest = np.argsort(dmat[b], kind="stable")[:3]
                wmat[b, nearest] = squal[cand][nearest] * np.exp(
                    -(dmat[b, nearest] / cfg.distance_decay_m
                      + est[b, nearest] / cfg.time_tolerance_min)
                )
                rowsum[b] = wmat[b].sum()
            cdf = wmat.cumsum(axis=1) / rowsum[:, None]
            np.clip(cdf, 0.0, 1.0, out=cdf)
            cdf[:, -1] = 1.0
            aug = (np.arange(len(rows), dtype=np.float64)[:, None] + cdf).ravel()
            j = (
                np.searchsorted(aug, row_of + u_store[sel], side="right")
                - row_of * len(cand)
            )
            pick[sel] = cand[j]

    kept = pick >= 0
    if not kept.all():
        d_of, p_of, r_of, ty_of = d_of[kept], p_of[kept], r_of[kept], ty_of[kept]
        pick = pick[kept]
    m = len(pick)
    if m == 0:
        return None

    # 4. Per-order noise draws, one vector call each (block discipline).
    noisy = cfg.observation_noise > 0
    uni = rng.random((m, 3))
    exp_d = rng.exponential(1.2, m)
    prep_ln = rng.lognormal(0.0, 0.2, m)
    deliv_ln = rng.lognormal(0.0, 0.12, m)
    noise_z = rng.standard_normal(m) if noisy else None
    cust = rng.integers(0, 10_000, m)
    sregs = sregions[pick]
    cour = rng.integers(ctx.pool_sizes[sregs])

    # 5. Assemble through the shared columnar arithmetic.
    greg = tregs[r_of]
    row, col = np.divmod(greg, grid.cols)
    base = d_of * MINUTES_PER_DAY + ctx.period_start[p_of] * 60
    from .orders import compute_order_columns

    out = compute_order_columns(
        cfg,
        gen._prep[ty_of],
        cong[pick, p_of],
        uni,
        exp_d,
        prep_ln,
        deliv_ln,
        noise_z,
        base,
        ctx.period_hours[p_of],
        col,
        row,
        ctx.store_x[pick],
        ctx.store_y[pick],
    )
    clon, clat = grid.to_lonlat(out["cx"], out["cy"])
    return {
        "store_index": pick,
        "store_region": sregs,
        "customer_region": greg,
        "store_type": ty_of,
        "cust_tag": greg,
        "cust_serial": cust,
        "courier_num": gen._courier_numbers_for(sregs, cour),
        "customer_lon": clon,
        "customer_lat": clat,
        "created_minute": out["created"],
        "accepted_minute": out["accepted"],
        "pickup_minute": out["pickup"],
        "delivered_minute": out["delivered"],
        "distance_m": out["distance"],
    }


# ----------------------------------------------------------------------
# Driver.
def generate_tiled(gen):
    """Generate the order log tile-by-tile; see the module docstring."""
    global _TILE_CTX
    cfg = gen.config
    grid = gen.land.grid
    part = tile_layout(grid.rows, grid.cols)

    # Stream 0 drives the city-wide day factors (shared by every tile, so
    # demand keeps its day-to-day correlation); stream t+1 belongs to tile t.
    children = np.random.SeedSequence(cfg.seed).spawn(part.num_tiles + 1)
    day_rng = np.random.default_rng(children[0])
    weekend = np.array([d % 7 in (5, 6) for d in range(cfg.num_days)])
    day_factors = np.where(weekend, 1.15, 1.0) * day_rng.lognormal(
        0.0, cfg.demand_noise, cfg.num_days
    )

    # Warm the shared lookups in the parent so forked workers inherit them.
    registry = gen.store_registry()
    _, pool_sizes = gen._courier_pools()
    ctx = _TileContext(
        gen=gen,
        partition=part,
        streams=children[1:],
        day_factors=day_factors,
        store_x=np.array([s.x for s in gen.stores]),
        store_y=np.array([s.y for s in gen.stores]),
        pool_sizes=np.array(pool_sizes, dtype=np.int64),
        period_start=np.array(
            [TimePeriod(t).hours[0] for t in range(NUM_PERIODS)], dtype=np.int64
        ),
        period_hours=np.array(
            [TimePeriod(t).duration_hours for t in range(NUM_PERIODS)],
            dtype=np.int64,
        ),
        halo_m=cfg.max_scope_m + cfg.cell_size,
        by_type=[gen._store_index[t].indices for t in range(cfg.num_store_types)],
    )

    tiles = list(range(part.num_tiles))
    _TILE_CTX = ctx
    try:
        if _pool_usable(len(tiles)):
            with tempfile.TemporaryDirectory(prefix="o2-tilesim-") as arena:
                ctx.arena = arena
                sizes = process_map(_tile_worker, tiles, chunksize=1)
                chunks = [
                    _load_chunk(arena, t)
                    for t, size in zip(tiles, sizes)
                    if size
                ]
                table = OrderTable.concat(chunks, registry)
        else:
            produced = (_tile_columns(t) for t in tiles)
            table = OrderTable.concat(
                [c for c in produced if c is not None], registry
            )
    finally:
        _TILE_CTX = None
    view = table.records_view()
    return view if order_table_enabled() else list(view)


def _pool_usable(num_tiles: int) -> bool:
    """Fork-based pools only: workers read ``_TILE_CTX`` through fork."""
    if num_tiles < 2 or num_procs() < 2:
        return False
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()
