"""Courier fleet: supply, congestion, delivery times and delivery scopes.

This module encodes the paper's Section II-B observations as the simulator's
ground truth:

* the *supply-demand ratio* (couriers per order) dips during the noon and
  evening rush hours (Fig. 1);
* *delivery time* tracks the supply-demand ratio (Fig. 2) -- our delivery
  time model multiplies travel time by a congestion factor that grows as the
  regional ratio falls;
* the platform's *pressure control* scales each store's delivery scope with
  the regional ratio (Fig. 3), shrinking it at rush hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..data.periods import NUM_PERIODS, TimePeriod
from .config import CityConfig
from .landuse import CityLandUse

# Fraction of the fleet on shift per period.
ACTIVE_FRACTION = {
    TimePeriod.MORNING: 0.55,
    TimePeriod.NOON_RUSH: 0.95,
    TimePeriod.AFTERNOON: 0.60,
    TimePeriod.EVENING_RUSH: 1.00,
    TimePeriod.NIGHT: 0.50,
}

# Relative customer ordering propensity per period (drives demand peaks).
ORDER_PROPENSITY = {
    TimePeriod.MORNING: 0.55,
    TimePeriod.NOON_RUSH: 1.45,
    TimePeriod.AFTERNOON: 0.50,
    TimePeriod.EVENING_RUSH: 1.30,
    TimePeriod.NIGHT: 0.60,
}


@dataclass
class CourierFleet:
    """Per-(region, period) courier supply and derived capacity quantities.

    Attributes
    ----------
    supply:
        ``(N, P)`` couriers allocated to each region in each period.
    demand_rate:
        ``(N, P)`` expected orders per hour originating near each region.
    ratio:
        ``(N, P)`` supply-demand ratio, normalised so the city mean is 1.
    couriers_by_region:
        courier-id pool per region (for stamping order records).
    """

    config: CityConfig
    supply: np.ndarray
    demand_rate: np.ndarray
    ratio: np.ndarray
    couriers_by_region: List[List[str]]

    # -- capacity-derived quantities ----------------------------------------
    def congestion(self, region: int, period: TimePeriod) -> float:
        """Travel-time multiplier: grows when the regional ratio is low.

        Exponential in the (normalised) supply-demand ratio so rush-hour
        shortages produce the pronounced delivery-time spread of Fig. 2.
        """
        rho = self.ratio[region, int(period)]
        return 1.0 + self.config.congestion_strength * 0.25 * float(np.exp(-rho))

    def delivery_minutes(
        self,
        store_region: int,
        distance_m: float,
        period: TimePeriod,
        rng: np.random.Generator = None,
    ) -> float:
        """Ground-truth delivery time (pickup-report to delivery-report)."""
        cfg = self.config
        travel = distance_m / cfg.courier_speed_m_per_min
        minutes = cfg.handling_minutes + travel * self.congestion(
            store_region, period
        )
        if rng is not None:
            minutes *= rng.lognormal(0.0, 0.12)
            if cfg.observation_noise > 0:
                minutes += rng.normal(0.0, cfg.observation_noise * minutes)
        return float(max(minutes, 2.0))

    def delivery_scope_m(self, region: int, period: TimePeriod) -> float:
        """Pressure-controlled farthest delivery distance of a store region."""
        cfg = self.config
        rho = self.ratio[region, int(period)]
        scope = cfg.base_scope_m * rho**0.35
        return float(np.clip(scope, cfg.min_scope_m, cfg.max_scope_m))

    def congestion_matrix(self) -> np.ndarray:
        """``(N, P)`` congestion multipliers for all regions and periods.

        Built from the scalar :meth:`congestion` on purpose: numpy's
        vectorised transcendentals (SIMD ``pow``/``exp``) can differ from
        the scalar kernels in the last ulp, and downstream consumers need
        bitwise parity with the per-order reference loop.  The matrix is
        computed once per simulation, so speed is irrelevant here.
        """
        n, p = self.ratio.shape
        return np.array(
            [
                [self.congestion(r, TimePeriod(t)) for t in range(p)]
                for r in range(n)
            ]
        )

    def scope_matrix(self) -> np.ndarray:
        """``(N, P)`` delivery scopes; scalar math, see congestion_matrix."""
        n, p = self.ratio.shape
        return np.array(
            [
                [self.delivery_scope_m(r, TimePeriod(t)) for t in range(p)]
                for r in range(n)
            ]
        )

    def active_couriers(self, period: TimePeriod) -> float:
        """City-wide couriers on shift in ``period`` (Fig. 1 supply curve)."""
        return self.config.num_couriers * ACTIVE_FRACTION[period]

    def sample_courier(
        self, region: int, rng: np.random.Generator
    ) -> str:
        """Pick a courier id serving ``region`` (falls back to any courier)."""
        pool = self.couriers_by_region[region]
        if not pool:
            pool = [c for regional in self.couriers_by_region for c in regional]
        return pool[int(rng.integers(len(pool)))]


def expected_demand(config: CityConfig, land: CityLandUse) -> np.ndarray:
    """Expected orders per hour per (region, period) from population."""
    propensity = np.array([ORDER_PROPENSITY[p] for p in TimePeriod])
    return (
        land.population
        * (config.order_rate / 1000.0)
        * propensity[None, :]
        * config.sparsity
    )


def _smooth_over_neighbors(values: np.ndarray, land: CityLandUse) -> np.ndarray:
    """Average each region's column vector with its 800 m neighbours."""
    n = land.num_regions
    smoothed = values.copy()
    for r in range(n):
        neigh = land.grid.neighbors_within(r, 800.0)
        if neigh:
            smoothed[r] = (values[r] + values[neigh].sum(axis=0)) / (len(neigh) + 1)
    return smoothed


def build_fleet(
    config: CityConfig, land: CityLandUse, rng: np.random.Generator
) -> CourierFleet:
    """Allocate the fleet across regions and periods.

    Couriers follow demand (platforms position them where orders are), but
    the per-period fleet size is capped by the shift schedule, so rush-hour
    regions end up with a *lower* ratio despite having *more* couriers --
    exactly the Fig. 1 observation.
    """
    demand = expected_demand(config, land)  # (N, P) orders/hour
    smoothed = _smooth_over_neighbors(demand, land)

    supply = np.zeros_like(demand)
    for period in TimePeriod:
        t = int(period)
        total = config.num_couriers * ACTIVE_FRACTION[period]
        weights = smoothed[:, t] + smoothed[:, t].mean() * 0.1 + 1e-9
        supply[:, t] = total * weights / weights.sum()

    ratio = supply / np.maximum(demand, 1e-6)
    ratio = ratio / max(ratio.mean(), 1e-9)
    # Clamp so deserted regions do not get absurd capacity.
    ratio = np.clip(ratio, 0.15, 6.0)

    # Assign courier ids to home regions by noon-rush supply.
    noon = supply[:, int(TimePeriod.NOON_RUSH)]
    probs = noon / noon.sum()
    homes = rng.choice(land.num_regions, size=config.num_couriers, p=probs)
    pools: List[List[str]] = [[] for _ in range(land.num_regions)]
    for i, home in enumerate(homes):
        pools[int(home)].append(f"C{i:05d}")

    return CourierFleet(
        config=config,
        supply=supply,
        demand_rate=demand,
        ratio=ratio,
        couriers_by_region=pools,
    )
