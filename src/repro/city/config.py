"""Simulation configuration and the store-type catalogue.

The store-type catalogue includes the six types the paper's Fig. 12/13
highlights (light meal, light salad, fruit, steamed buns, juice, fried
chicken) plus common O2O categories.  Each type carries a period-popularity
profile (Fig. 5: preferences change along the day) and an affinity to the
land-use archetypes (demand for juice concentrates downtown, steamed buns in
residential mornings, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.periods import NUM_PERIODS

# Archetype order used in every affinity vector below.
ARCHETYPES = ("downtown", "office", "residential", "suburb")
NUM_ARCHETYPES = len(ARCHETYPES)

POI_TYPES = (
    "restaurant",
    "office_building",
    "residence",
    "mall",
    "school",
    "hospital",
    "metro_station",
    "entertainment",
    "bank",
    "park",
)


@dataclass(frozen=True)
class StoreType:
    """A store category with its temporal and spatial demand profile."""

    name: str
    # Relative popularity per period (morning, noon, afternoon, evening, night).
    period_popularity: Tuple[float, ...]
    # Relative demand per archetype (downtown, office, residential, suburb).
    archetype_affinity: Tuple[float, ...]
    # Mean food-preparation time in minutes.
    prep_minutes: float = 10.0

    def __post_init__(self) -> None:
        if len(self.period_popularity) != NUM_PERIODS:
            raise ValueError(f"{self.name}: need {NUM_PERIODS} period weights")
        if len(self.archetype_affinity) != NUM_ARCHETYPES:
            raise ValueError(f"{self.name}: need {NUM_ARCHETYPES} archetype weights")


def default_store_types() -> List[StoreType]:
    """The 14-type catalogue used by the default simulations."""
    return [
        #                 morn  noon  aft   eve   night   down  off   res   sub
        StoreType("light_meal", (0.6, 1.8, 0.7, 1.6, 0.7), (1.2, 1.6, 1.0, 0.5), 9),
        StoreType("light_salad", (0.4, 1.5, 0.6, 1.2, 0.4), (1.5, 1.7, 0.7, 0.3), 7),
        StoreType("fruit", (0.5, 0.9, 1.3, 1.2, 1.0), (1.1, 0.9, 1.3, 0.7), 5),
        StoreType("steamed_buns", (1.9, 0.8, 0.3, 0.6, 0.3), (0.7, 0.9, 1.6, 1.0), 6),
        StoreType("juice", (0.5, 1.2, 1.5, 1.0, 0.6), (1.6, 1.4, 0.7, 0.4), 5),
        StoreType("fried_chicken", (0.2, 1.0, 0.8, 1.5, 1.6), (1.2, 0.8, 1.2, 0.8), 11),
        StoreType("coffee", (1.5, 1.3, 1.4, 0.7, 0.3), (1.7, 1.8, 0.5, 0.3), 6),
        StoreType("snack", (0.6, 0.9, 1.4, 1.0, 1.4), (1.3, 1.0, 1.1, 0.7), 7),
        StoreType("breakfast", (2.2, 0.5, 0.1, 0.2, 0.1), (0.8, 1.1, 1.5, 1.0), 6),
        StoreType("dessert", (0.3, 0.9, 1.5, 1.1, 1.1), (1.5, 1.2, 0.9, 0.4), 8),
        StoreType("noodles", (0.7, 1.7, 0.6, 1.4, 0.8), (1.0, 1.2, 1.2, 0.8), 9),
        StoreType("pizza", (0.1, 1.1, 0.5, 1.4, 1.1), (1.3, 1.1, 0.9, 0.5), 14),
        StoreType("hotpot", (0.1, 0.7, 0.3, 1.5, 1.5), (1.2, 0.7, 1.1, 0.6), 16),
        StoreType("bbq", (0.1, 0.5, 0.2, 1.2, 2.0), (1.1, 0.6, 1.2, 0.8), 13),
    ]


@dataclass
class CityConfig:
    """All knobs of the synthetic O2O city.

    The defaults give a medium city that trains in seconds; the presets in
    :mod:`repro.city.simulator` derive the paper-shaped configurations.
    """

    rows: int = 14
    cols: int = 14
    cell_size: float = 500.0
    num_days: int = 14
    num_couriers: int = 240
    seed: int = 7

    # Demand scale: expected orders per 1000 residents per period-hour.
    order_rate: float = 1.1
    # Mean population of a fully residential region.
    base_population: float = 2600.0

    # Courier behaviour.
    courier_speed_m_per_min: float = 250.0  # ~15 km/h e-bike
    handling_minutes: float = 6.0  # parking, pickup, handover
    congestion_strength: float = 14.0  # delivery-time sensitivity to shortage

    # Delivery scope pressure control (Section II-B2).
    base_scope_m: float = 3200.0
    min_scope_m: float = 1500.0
    max_scope_m: float = 4200.0

    # Customer choice model.  A mild distance decay lets the platform's
    # pressure-controlled scope bound actually bind, so observed farthest
    # delivery distances track the scope control (Fig. 3).
    distance_decay_m: float = 2600.0
    time_tolerance_min: float = 15.0

    # "formula": delivery times from the closed-form congestion model;
    # "agents": event-driven courier dispatch (see repro.city.dispatch).
    dispatch_mode: str = "formula"

    # "shared": every order consumes one shared RNG stream in a fixed
    # global sequence (the paper-scale reference discipline, bit-pinned by
    # tests/test_fast_sim.py); "tiles": each grid tile draws from its own
    # SeedSequence-spawned stream (repro.city.tilesim) -- embarrassingly
    # parallel and deterministic for any worker count, used by the
    # megacity preset.
    order_streams: str = "shared"

    # Data-quality knobs (the "simulation dataset" preset degrades these).
    demand_noise: float = 0.15  # day-to-day lognormal sigma on demand
    observation_noise: float = 0.0  # extra noise on recorded delivery times
    sparsity: float = 1.0  # multiplier on overall demand volume

    store_types: List[StoreType] = field(default_factory=default_store_types)

    def __post_init__(self) -> None:
        if self.rows < 4 or self.cols < 4:
            raise ValueError("city grid must be at least 4x4")
        if self.num_days < 1:
            raise ValueError("num_days must be >= 1")
        if not self.store_types:
            raise ValueError("store_types must be non-empty")
        if self.sparsity <= 0:
            raise ValueError("sparsity must be positive")
        if self.dispatch_mode not in ("formula", "agents"):
            raise ValueError(
                f"dispatch_mode must be 'formula' or 'agents', "
                f"got {self.dispatch_mode!r}"
            )
        if self.order_streams not in ("shared", "tiles"):
            raise ValueError(
                f"order_streams must be 'shared' or 'tiles', "
                f"got {self.order_streams!r}"
            )

    @property
    def num_store_types(self) -> int:
        return len(self.store_types)

    @property
    def type_names(self) -> List[str]:
        return [t.name for t in self.store_types]

    def type_index(self, name: str) -> int:
        try:
            return self.type_names.index(name)
        except ValueError:
            raise KeyError(f"unknown store type {name!r}") from None
