"""Order generation: the demand side of the synthetic O2O platform.

For every (day, period, customer-region) we draw a Poisson number of orders,
assign each a store type (period popularity x archetype affinity x sticky
regional taste -- Section II-C: preferences differ by period and by
neighbourhood), and pick a store among those whose pressure-controlled
delivery scope covers the customer, weighted by store quality, distance
decay and estimated delivery time (Section II-B3: long delivery times deter
customers).  The result is a list of Table-I order records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.cache import LRUCache
from ..data.ordertable import OrderTable, StoreRegistry
from ..data.periods import NUM_PERIODS, TimePeriod
from ..data.records import MINUTES_PER_DAY, OrderRecord
from .config import CityConfig
from .couriers import CourierFleet
from .fastsim import fast_sim_enabled, order_table_enabled
from .landuse import CityLandUse
from .stores import PlacedStore

# Hard cap on cached (region, type, period) store-choice tables.  The
# per-generator bound is the city's own key count when that is smaller, so
# normal cities cache every cell while huge sweeps stay bounded (~2 KB/entry).
CHOICE_CACHE_SIZE = 65536


@dataclass
class _StoreIndex:
    """Per-type store lookup tables for vectorised choice."""

    indices: np.ndarray  # global store index per type member
    positions: np.ndarray  # (k, 2) metres
    regions: np.ndarray  # (k,)
    qualities: np.ndarray  # (k,)


def _index_stores(stores: List[PlacedStore], num_types: int) -> List[_StoreIndex]:
    by_type: List[List[int]] = [[] for _ in range(num_types)]
    for i, s in enumerate(stores):
        by_type[s.record.store_type].append(i)
    result = []
    for members in by_type:
        members_arr = np.array(members, dtype=np.int64)
        result.append(
            _StoreIndex(
                indices=members_arr,
                positions=np.array([[stores[i].x, stores[i].y] for i in members])
                if members
                else np.zeros((0, 2)),
                regions=np.array(
                    [stores[i].record.region for i in members], dtype=np.int64
                ),
                qualities=np.array([stores[i].quality for i in members]),
            )
        )
    return result


def compute_order_columns(
    cfg: CityConfig,
    prep_per_order: np.ndarray,
    congestion_per_order: np.ndarray,
    uni: np.ndarray,
    exp_d: np.ndarray,
    prep_ln: np.ndarray,
    deliv_ln: np.ndarray,
    noise_z: Optional[np.ndarray],
    base: np.ndarray,
    duration: np.ndarray,
    col: np.ndarray,
    row: np.ndarray,
    store_x: np.ndarray,
    store_y: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Columnar twin of the per-order arithmetic in ``_make_order``.

    Shared by the shared-stream fast path (:meth:`OrderGenerator
    ._assemble_fast`) and the tile-parallel generator
    (:mod:`repro.city.tilesim`); every expression mirrors the scalar
    operation order of the reference exactly so floats match bit-for-bit.
    """
    # cx = (col + u) * cell; cy = (row + u) * cell
    cx = (col + uni[:, 0]) * cfg.cell_size
    cy = (row + uni[:, 1]) * cfg.cell_size
    distance = np.hypot(store_x - cx, store_y - cy)
    # created = day*1440 + start*60 + u*(end-start)*60
    created = base + (uni[:, 2] * duration) * 60
    accepted = created + 0.3 + exp_d
    # prep = max(2.0, prep_minutes[type] * lognormal)
    prep = np.maximum(2.0, prep_per_order * prep_ln)
    pickup = accepted + prep
    # CourierFleet.delivery_minutes, columnar:
    travel = distance / cfg.courier_speed_m_per_min
    minutes = cfg.handling_minutes + travel * congestion_per_order
    minutes = minutes * deliv_ln
    if noise_z is not None:
        # rng.normal(0.0, s) == s * standard_normal(), bit-for-bit.
        minutes = minutes + (cfg.observation_noise * minutes) * noise_z
    delivery = np.maximum(minutes, 2.0)
    delivered = pickup + delivery
    return {
        "cx": cx,
        "cy": cy,
        "distance": distance,
        "created": created,
        "accepted": accepted,
        "pickup": pickup,
        "delivered": delivered,
    }


class OrderGenerator:
    """Generates a month of orders for a synthetic city."""

    def __init__(
        self,
        config: CityConfig,
        land: CityLandUse,
        stores: List[PlacedStore],
        fleet: CourierFleet,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.land = land
        self.stores = stores
        self.fleet = fleet
        self.rng = rng
        self._store_index = _index_stores(stores, config.num_store_types)
        self._centroids = land.grid.centroids()
        # Sticky regional taste: shared with store placement (see landuse).
        self._taste = land.taste
        self._popularity = np.array(
            [t.period_popularity for t in config.store_types]
        )  # (T, P)
        self._affinity = np.array(
            [t.archetype_affinity for t in config.store_types]
        )  # (T, 4)
        self._prep = np.array([t.prep_minutes for t in config.store_types])
        # Congestion multiplier per (store, period), from the store's region.
        self._store_regions = np.array(
            [s.record.region for s in stores], dtype=np.int64
        )
        self._congestion = fleet.congestion_matrix()[self._store_regions]
        self._scopes = fleet.scope_matrix()  # (N, P)
        self._choice_cache: LRUCache = LRUCache(
            maxsize=min(
                land.num_regions * config.num_store_types * NUM_PERIODS,
                CHOICE_CACHE_SIZE,
            )
        )

    # ------------------------------------------------------------------
    def _type_probabilities(self, region: int, period: TimePeriod) -> np.ndarray:
        arch = int(self.land.archetype[region])
        weights = (
            self._popularity[:, int(period)]
            * self._affinity[:, arch]
            * self._taste[region]
        )
        total = weights.sum()
        if total <= 0:  # pragma: no cover - defensive
            return np.full(len(weights), 1.0 / len(weights))
        return weights / total

    def _store_choice(
        self, region: int, store_type: int, period: TimePeriod
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Candidate store lookup for one (region, type, period) cell.

        Returns ``(candidates, probs, cdf, global_indices)``: positions in
        the per-type table, their choice probabilities, the normalised
        cumulative distribution (the fast path inlines ``rng.choice`` as an
        inverse-CDF lookup), and the matching global store indices.  Cached
        per (region, type, period) -- scopes and congestion are static
        within a simulated month -- in a bounded LRU.
        """
        key = (region, store_type, int(period))
        cached = self._choice_cache.get(key)
        if cached is not None:
            return cached

        table = self._store_index[store_type]
        if len(table.indices) == 0:
            empty = (
                np.array([], dtype=np.int64),
                np.array([]),
                np.array([]),
                np.array([], dtype=np.int64),
            )
            self._choice_cache[key] = empty
            return empty

        cfg = self.config
        centroid = self._centroids[region]
        dists = np.sqrt(((table.positions - centroid) ** 2).sum(axis=1))
        scopes = self._scopes[table.regions, int(period)]
        within = dists <= scopes
        if not within.any():
            # Fall back to the three nearest stores (platform always shows
            # *something*, albeit with long delivery times).
            within = np.zeros_like(within)
            within[np.argsort(dists)[:3]] = True

        candidates = np.flatnonzero(within)
        d = dists[candidates]
        est_time = (
            cfg.handling_minutes
            + d
            / cfg.courier_speed_m_per_min
            * self._congestion[table.indices[candidates], int(period)]
        )
        weights = (
            table.qualities[candidates]
            * np.exp(-d / cfg.distance_decay_m)
            * np.exp(-est_time / cfg.time_tolerance_min)
        )
        total = weights.sum()
        probs = weights / total if total > 0 else np.full(len(weights), 1.0 / len(weights))
        # Inverse-CDF table, normalised exactly the way ``rng.choice`` does
        # internally so the fast path's searchsorted draws match bit-for-bit.
        cdf = probs.cumsum()
        cdf /= cdf[-1]
        entry = (candidates, probs, cdf, table.indices[candidates])
        self._choice_cache[key] = entry
        return entry

    # ------------------------------------------------------------------
    def generate(self) -> Sequence[OrderRecord]:
        """Simulate ``config.num_days`` days of orders.

        With :func:`repro.city.fastsim.fast_sim_enabled` the columnar fast
        path runs instead of the reference loop; the two produce identical
        record streams (``tests/test_fast_sim.py``).  With
        ``config.order_streams == "tiles"`` the deterministic-streams
        tile-parallel generator runs instead (its own RNG discipline, see
        :mod:`repro.city.tilesim`).
        """
        if getattr(self.config, "order_streams", "shared") == "tiles":
            from .tilesim import generate_tiled

            return generate_tiled(self)
        if fast_sim_enabled():
            return self._generate_fast()
        cfg = self.config
        rng = self.rng
        orders: List[OrderRecord] = []
        order_counter = 0
        num_regions = self.land.num_regions

        for day in range(cfg.num_days):
            weekend = day % 7 in (5, 6)
            day_factor = (1.15 if weekend else 1.0) * rng.lognormal(
                0.0, cfg.demand_noise
            )
            for period in TimePeriod:
                t = int(period)
                start_hour, end_hour = period.hours
                lam = (
                    self.fleet.demand_rate[:, t]
                    * period.duration_hours
                    * day_factor
                )
                counts = rng.poisson(lam)
                for region in np.flatnonzero(counts):
                    n = int(counts[region])
                    type_probs = self._type_probabilities(region, period)
                    type_counts = rng.multinomial(n, type_probs)
                    for store_type in np.flatnonzero(type_counts):
                        k = int(type_counts[store_type])
                        candidates, probs = self._store_choice(
                            region, int(store_type), period
                        )[:2]
                        if len(candidates) == 0:
                            continue  # type has no store anywhere
                        picks = rng.choice(candidates, size=k, p=probs)
                        for pick in picks:
                            orders.append(
                                self._make_order(
                                    order_counter,
                                    day,
                                    period,
                                    region,
                                    int(store_type),
                                    int(pick),
                                )
                            )
                            order_counter += 1
        return orders

    # -- columnar fast path --------------------------------------------
    def _courier_pools(self) -> Tuple[List[List[str]], List[int]]:
        """Per-region courier-id pools with the empty-pool fallback applied.

        ``CourierFleet.sample_courier`` flattens the whole fleet whenever a
        region has no home couriers; precomputing the flattened pool once
        keeps the fast path's ``rng.integers(len(pool))`` draws identical.
        """
        pools = self.fleet.couriers_by_region
        flat = [c for regional in pools for c in regional]
        effective = [p if p else flat for p in pools]
        return effective, [len(p) for p in effective]

    def _courier_numbering(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(offsets, has_pool, flat_ids)`` for integer courier lookup.

        ``flat_ids`` is the whole fleet in region-concatenation order --
        the same flattening ``_courier_pools`` uses for the empty-pool
        fallback -- so an in-pool draw ``ci`` for store region ``sr`` maps
        to global courier number ``offsets[sr] + ci`` and a fallback draw
        maps to ``ci`` directly.
        """
        cached = getattr(self, "_courier_numbers", None)
        if cached is None:
            pools = self.fleet.couriers_by_region
            sizes = np.array([len(p) for p in pools], dtype=np.int64)
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            flat_ids = np.array(
                [c for regional in pools for c in regional]
            )
            cached = (offsets, sizes > 0, flat_ids)
            self._courier_numbers = cached
        return cached

    def _courier_numbers_for(
        self, store_regions: np.ndarray, draws: np.ndarray
    ) -> np.ndarray:
        """Global courier numbers for per-order pool draws ``draws``."""
        offsets, has_pool, _ = self._courier_numbering()
        nums = np.empty(len(draws), dtype=np.int64)
        mask = has_pool[store_regions]
        nums[mask] = offsets[store_regions[mask]] + draws[mask]
        nums[~mask] = draws[~mask]
        return nums

    def store_registry(self) -> StoreRegistry:
        """Shared id tables for :class:`~repro.data.ordertable.OrderTable`."""
        cached = getattr(self, "_registry", None)
        if cached is None:
            stores = self.stores
            cached = StoreRegistry(
                store_ids=np.array([s.record.store_id for s in stores]),
                store_lon=np.array([s.record.lon for s in stores]),
                store_lat=np.array([s.record.lat for s in stores]),
                courier_ids=self._courier_numbering()[2],
            )
            self._registry = cached
        return cached

    def _generate_fast(self) -> Sequence[OrderRecord]:
        """Columnar twin of the reference loop above.

        RNG calls happen in exactly the reference order: the per-day and
        per-period group draws are unchanged, ``rng.choice`` becomes the
        equivalent ``rng.random(k)`` + inverse-CDF lookup, and the per-order
        draws run in a tight buffer-filling loop (three uniforms as one
        ``rng.random(3)``, the delivery-noise ``normal`` as a
        ``standard_normal`` scaled later).  All derived arithmetic is
        deferred to :meth:`_assemble_fast`.
        """
        cfg = self.config
        rng = self.rng
        cols = self.land.grid.cols
        noisy = cfg.observation_noise > 0

        rand = rng.random
        rexp = rng.exponential
        rlog = rng.lognormal
        rint = rng.integers
        rstd = rng.standard_normal

        _, pool_sizes = self._courier_pools()
        store_regions = self._store_regions
        choice_get = self._choice_cache.get
        type_prob_cache: Dict[Tuple[int, int], np.ndarray] = {}

        # Per-order draw buffers (plain lists: append beats array stores at
        # the typical group size of 1-2 picks) and per-group metadata.
        u0, u1, u2 = [], [], []
        exp_d, prep_ln, deliv_ln, noise_z = [], [], [], []
        cust, cour = [], []
        picked_groups = []  # (k,) global store indices per group
        g_meta = []  # (base_minute, duration, t, col, row, region, type, k)

        for day in range(cfg.num_days):
            weekend = day % 7 in (5, 6)
            day_factor = (1.15 if weekend else 1.0) * rng.lognormal(
                0.0, cfg.demand_noise
            )
            for period in TimePeriod:
                t = int(period)
                start_hour, end_hour = period.hours
                lam = (
                    self.fleet.demand_rate[:, t]
                    * period.duration_hours
                    * day_factor
                )
                counts = rng.poisson(lam)
                base = day * MINUTES_PER_DAY + start_hour * 60
                duration = end_hour - start_hour

                for region in np.flatnonzero(counts).tolist():
                    n = int(counts[region])
                    type_probs = type_prob_cache.get((region, t))
                    if type_probs is None:
                        type_probs = self._type_probabilities(region, period)
                        type_prob_cache[(region, t)] = type_probs
                    type_counts = rng.multinomial(n, type_probs)
                    row, col = divmod(region, cols)
                    for store_type in np.flatnonzero(type_counts).tolist():
                        k = int(type_counts[store_type])
                        entry = choice_get((region, store_type, t))
                        if entry is None:
                            entry = self._store_choice(
                                region, store_type, period
                            )
                        candidates, _, cdf, global_idx = entry
                        if len(candidates) == 0:
                            continue  # type has no store anywhere
                        # rng.choice(candidates, size=k, p=probs), inlined.
                        picked = global_idx[
                            cdf.searchsorted(rand(k), side="right")
                        ]
                        picked_groups.append(picked)
                        g_meta.append(
                            (base, duration, t, col, row, region, store_type, k)
                        )
                        if noisy:
                            for sr in store_regions[picked].tolist():
                                u0.append(rand())
                                u1.append(rand())
                                u2.append(rand())
                                exp_d.append(rexp(1.2))
                                prep_ln.append(rlog(0.0, 0.2))
                                deliv_ln.append(rlog(0.0, 0.12))
                                noise_z.append(rstd())
                                cust.append(rint(10_000))
                                cour.append(rint(pool_sizes[sr]))
                        else:
                            for sr in store_regions[picked].tolist():
                                u0.append(rand())
                                u1.append(rand())
                                u2.append(rand())
                                exp_d.append(rexp(1.2))
                                prep_ln.append(rlog(0.0, 0.2))
                                deliv_ln.append(rlog(0.0, 0.12))
                                cust.append(rint(10_000))
                                cour.append(rint(pool_sizes[sr]))

        if not picked_groups:
            return []
        draws = {
            "u0": np.array(u0),
            "u1": np.array(u1),
            "u2": np.array(u2),
            "exp": np.array(exp_d),
            "prep_ln": np.array(prep_ln),
            "deliv_ln": np.array(deliv_ln),
            "noise_z": np.array(noise_z) if noisy else None,
            "cust": np.array(cust, dtype=np.int64),
            "cour": np.array(cour, dtype=np.int64),
        }
        return self._assemble_fast(picked_groups, g_meta, draws, noisy)

    def _assemble_fast(
        self, picked_groups, g_meta, draws, noisy: bool
    ) -> Sequence[OrderRecord]:
        """Turn draw buffers into orders with columnar arithmetic.

        Each expression mirrors the scalar operation order of
        :meth:`_make_order` exactly (same grouping, same operand order) so
        every float matches the reference bit-for-bit.  The result is a
        lazy :class:`~repro.data.ordertable.OrderRecordSeq` view over an
        :class:`~repro.data.ordertable.OrderTable` unless
        ``O2_ORDER_TABLE=0`` pins the materialised record list.
        """
        cfg = self.config
        grid = self.land.grid

        gidx = np.concatenate(picked_groups)
        meta = np.array(g_meta, dtype=np.int64)  # (G, 8)
        ks = meta[:, 7]
        base = np.repeat(meta[:, 0], ks)
        duration = np.repeat(meta[:, 1], ks)
        t_arr = np.repeat(meta[:, 2], ks)
        col = np.repeat(meta[:, 3], ks)
        row = np.repeat(meta[:, 4], ks)
        creg = np.repeat(meta[:, 5], ks)
        stype = np.repeat(meta[:, 6], ks)
        uni = np.stack([draws["u0"], draws["u1"], draws["u2"]], axis=1)
        exp_d = draws["exp"]
        prep_ln = draws["prep_ln"]
        deliv_ln = draws["deliv_ln"]
        cust = draws["cust"]
        cour = draws["cour"]

        stores = self.stores
        store_x = np.array([s.x for s in stores])
        store_y = np.array([s.y for s in stores])

        cols = compute_order_columns(
            cfg,
            self._prep[stype],
            self._congestion[gidx, t_arr],
            uni,
            exp_d,
            prep_ln,
            deliv_ln,
            draws["noise_z"] if noisy else None,
            base,
            duration,
            col,
            row,
            store_x[gidx],
            store_y[gidx],
        )
        cx, cy = cols["cx"], cols["cy"]
        distance = cols["distance"]
        created, accepted = cols["created"], cols["accepted"]
        pickup, delivered = cols["pickup"], cols["delivered"]
        clon, clat = grid.to_lonlat(cx, cy)
        sregs = self._store_regions[gidx]

        if order_table_enabled():
            table = OrderTable(
                {
                    "store_index": gidx,
                    "store_region": sregs,
                    "customer_region": creg,
                    "store_type": stype,
                    "cust_tag": creg,
                    "cust_serial": cust,
                    "courier_num": self._courier_numbers_for(sregs, cour),
                    "customer_lon": clon,
                    "customer_lat": clat,
                    "created_minute": created,
                    "accepted_minute": accepted,
                    "pickup_minute": pickup,
                    "delivered_minute": delivered,
                    "distance_m": distance,
                },
                self.store_registry(),
            )
            return table.records_view()

        store_lon = np.array([s.record.lon for s in stores])
        store_lat = np.array([s.record.lat for s in stores])
        store_ids = [s.record.store_id for s in stores]
        pools, _ = self._courier_pools()
        records = [
            OrderRecord(
                f"O{i:07d}",
                store_ids[g],
                f"U{r:04d}_{u:04d}",
                pools[sr][ci],
                slon,
                slat,
                lon,
                lat,
                sr,
                r,
                cr,
                ac,
                pu,
                de,
                dist,
                st,
            )
            for i, (
                g,
                r,
                u,
                sr,
                ci,
                slon,
                slat,
                lon,
                lat,
                cr,
                ac,
                pu,
                de,
                dist,
                st,
            ) in enumerate(
                zip(
                    gidx.tolist(),
                    creg.tolist(),
                    cust.tolist(),
                    sregs.tolist(),
                    cour.tolist(),
                    store_lon[gidx].tolist(),
                    store_lat[gidx].tolist(),
                    clon.tolist(),
                    clat.tolist(),
                    created.tolist(),
                    accepted.tolist(),
                    pickup.tolist(),
                    delivered.tolist(),
                    distance.tolist(),
                    stype.tolist(),
                )
            )
        ]
        return records

    def _make_order(
        self,
        counter: int,
        day: int,
        period: TimePeriod,
        customer_region: int,
        store_type: int,
        pick: int,
    ) -> OrderRecord:
        cfg = self.config
        rng = self.rng
        table = self._store_index[store_type]
        store = self.stores[int(table.indices[pick])]

        row, col = self.land.grid.row_col(customer_region)
        cx = (col + rng.random()) * cfg.cell_size
        cy = (row + rng.random()) * cfg.cell_size
        distance = float(np.hypot(store.x - cx, store.y - cy))

        start_hour, end_hour = period.hours
        created = (
            day * MINUTES_PER_DAY
            + start_hour * 60
            + rng.random() * (end_hour - start_hour) * 60
        )
        accepted = created + 0.3 + rng.exponential(1.2)
        prep = max(2.0, self._prep[store_type] * rng.lognormal(0.0, 0.2))
        pickup = accepted + prep
        delivery = self.fleet.delivery_minutes(
            store.record.region, distance, period, rng
        )
        delivered = pickup + delivery

        clon, clat = self.land.grid.to_lonlat(cx, cy)
        return OrderRecord(
            order_id=f"O{counter:07d}",
            store_id=store.record.store_id,
            customer_id=f"U{customer_region:04d}_{int(rng.integers(10_000)):04d}",
            courier_id=self.fleet.sample_courier(store.record.region, rng),
            store_lon=store.record.lon,
            store_lat=store.record.lat,
            customer_lon=clon,
            customer_lat=clat,
            store_region=store.record.region,
            customer_region=customer_region,
            created_minute=float(created),
            accepted_minute=float(accepted),
            pickup_minute=float(pickup),
            delivered_minute=float(delivered),
            distance_m=distance,
            store_type=store_type,
        )
