"""Order generation: the demand side of the synthetic O2O platform.

For every (day, period, customer-region) we draw a Poisson number of orders,
assign each a store type (period popularity x archetype affinity x sticky
regional taste -- Section II-C: preferences differ by period and by
neighbourhood), and pick a store among those whose pressure-controlled
delivery scope covers the customer, weighted by store quality, distance
decay and estimated delivery time (Section II-B3: long delivery times deter
customers).  The result is a list of Table-I order records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..data.periods import NUM_PERIODS, TimePeriod
from ..data.records import MINUTES_PER_DAY, OrderRecord
from .config import CityConfig
from .couriers import CourierFleet
from .landuse import CityLandUse
from .stores import PlacedStore


@dataclass
class _StoreIndex:
    """Per-type store lookup tables for vectorised choice."""

    indices: np.ndarray  # global store index per type member
    positions: np.ndarray  # (k, 2) metres
    regions: np.ndarray  # (k,)
    qualities: np.ndarray  # (k,)


def _index_stores(stores: List[PlacedStore], num_types: int) -> List[_StoreIndex]:
    by_type: List[List[int]] = [[] for _ in range(num_types)]
    for i, s in enumerate(stores):
        by_type[s.record.store_type].append(i)
    result = []
    for members in by_type:
        members_arr = np.array(members, dtype=np.int64)
        result.append(
            _StoreIndex(
                indices=members_arr,
                positions=np.array([[stores[i].x, stores[i].y] for i in members])
                if members
                else np.zeros((0, 2)),
                regions=np.array(
                    [stores[i].record.region for i in members], dtype=np.int64
                ),
                qualities=np.array([stores[i].quality for i in members]),
            )
        )
    return result


class OrderGenerator:
    """Generates a month of orders for a synthetic city."""

    def __init__(
        self,
        config: CityConfig,
        land: CityLandUse,
        stores: List[PlacedStore],
        fleet: CourierFleet,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.land = land
        self.stores = stores
        self.fleet = fleet
        self.rng = rng
        self._store_index = _index_stores(stores, config.num_store_types)
        self._centroids = land.grid.centroids()
        # Sticky regional taste: shared with store placement (see landuse).
        self._taste = land.taste
        self._popularity = np.array(
            [t.period_popularity for t in config.store_types]
        )  # (T, P)
        self._affinity = np.array(
            [t.archetype_affinity for t in config.store_types]
        )  # (T, 4)
        self._prep = np.array([t.prep_minutes for t in config.store_types])
        # Congestion multiplier per (store, period), from the store's region.
        self._congestion = np.array(
            [
                [
                    fleet.congestion(s.record.region, TimePeriod(t))
                    for t in range(NUM_PERIODS)
                ]
                for s in stores
            ]
        )
        self._scopes = fleet.scope_matrix()  # (N, P)
        self._choice_cache: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _type_probabilities(self, region: int, period: TimePeriod) -> np.ndarray:
        arch = int(self.land.archetype[region])
        weights = (
            self._popularity[:, int(period)]
            * self._affinity[:, arch]
            * self._taste[region]
        )
        total = weights.sum()
        if total <= 0:  # pragma: no cover - defensive
            return np.full(len(weights), 1.0 / len(weights))
        return weights / total

    def _store_choice(
        self, region: int, store_type: int, period: TimePeriod
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate store indices (into the per-type table) and probabilities.

        Cached per (region, type, period): scopes and congestion are static
        within a simulated month.
        """
        key = (region, store_type, int(period))
        cached = self._choice_cache.get(key)
        if cached is not None:
            return cached

        table = self._store_index[store_type]
        if len(table.indices) == 0:
            self._choice_cache[key] = (np.array([], dtype=np.int64), np.array([]))
            return self._choice_cache[key]

        cfg = self.config
        centroid = self._centroids[region]
        dists = np.sqrt(((table.positions - centroid) ** 2).sum(axis=1))
        scopes = self._scopes[table.regions, int(period)]
        within = dists <= scopes
        if not within.any():
            # Fall back to the three nearest stores (platform always shows
            # *something*, albeit with long delivery times).
            within = np.zeros_like(within)
            within[np.argsort(dists)[:3]] = True

        candidates = np.flatnonzero(within)
        d = dists[candidates]
        est_time = (
            cfg.handling_minutes
            + d
            / cfg.courier_speed_m_per_min
            * self._congestion[table.indices[candidates], int(period)]
        )
        weights = (
            table.qualities[candidates]
            * np.exp(-d / cfg.distance_decay_m)
            * np.exp(-est_time / cfg.time_tolerance_min)
        )
        total = weights.sum()
        probs = weights / total if total > 0 else np.full(len(weights), 1.0 / len(weights))
        self._choice_cache[key] = (candidates, probs)
        return self._choice_cache[key]

    # ------------------------------------------------------------------
    def generate(self) -> List[OrderRecord]:
        """Simulate ``config.num_days`` days of orders."""
        cfg = self.config
        rng = self.rng
        orders: List[OrderRecord] = []
        order_counter = 0
        num_regions = self.land.num_regions

        for day in range(cfg.num_days):
            weekend = day % 7 in (5, 6)
            day_factor = (1.15 if weekend else 1.0) * rng.lognormal(
                0.0, cfg.demand_noise
            )
            for period in TimePeriod:
                t = int(period)
                start_hour, end_hour = period.hours
                lam = (
                    self.fleet.demand_rate[:, t]
                    * period.duration_hours
                    * day_factor
                )
                counts = rng.poisson(lam)
                for region in np.flatnonzero(counts):
                    n = int(counts[region])
                    type_probs = self._type_probabilities(region, period)
                    type_counts = rng.multinomial(n, type_probs)
                    for store_type in np.flatnonzero(type_counts):
                        k = int(type_counts[store_type])
                        candidates, probs = self._store_choice(
                            region, int(store_type), period
                        )
                        if len(candidates) == 0:
                            continue  # type has no store anywhere
                        picks = rng.choice(candidates, size=k, p=probs)
                        for pick in picks:
                            orders.append(
                                self._make_order(
                                    order_counter,
                                    day,
                                    period,
                                    region,
                                    int(store_type),
                                    int(pick),
                                )
                            )
                            order_counter += 1
        return orders

    def _make_order(
        self,
        counter: int,
        day: int,
        period: TimePeriod,
        customer_region: int,
        store_type: int,
        pick: int,
    ) -> OrderRecord:
        cfg = self.config
        rng = self.rng
        table = self._store_index[store_type]
        store = self.stores[int(table.indices[pick])]

        row, col = self.land.grid.row_col(customer_region)
        cx = (col + rng.random()) * cfg.cell_size
        cy = (row + rng.random()) * cfg.cell_size
        distance = float(np.hypot(store.x - cx, store.y - cy))

        start_hour, end_hour = period.hours
        created = (
            day * MINUTES_PER_DAY
            + start_hour * 60
            + rng.random() * (end_hour - start_hour) * 60
        )
        accepted = created + 0.3 + rng.exponential(1.2)
        prep = max(2.0, self._prep[store_type] * rng.lognormal(0.0, 0.2))
        pickup = accepted + prep
        delivery = self.fleet.delivery_minutes(
            store.record.region, distance, period, rng
        )
        delivered = pickup + delivery

        clon, clat = self.land.grid.to_lonlat(cx, cy)
        return OrderRecord(
            order_id=f"O{counter:07d}",
            store_id=store.record.store_id,
            customer_id=f"U{customer_region:04d}_{int(rng.integers(10_000)):04d}",
            courier_id=self.fleet.sample_courier(store.record.region, rng),
            store_lon=store.record.lon,
            store_lat=store.record.lat,
            customer_lon=clon,
            customer_lat=clat,
            store_region=store.record.region,
            customer_region=customer_region,
            created_minute=float(created),
            accepted_minute=float(accepted),
            pickup_minute=float(pickup),
            delivered_minute=float(delivered),
            distance_m=distance,
            store_type=store_type,
        )
