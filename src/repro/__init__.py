"""O2-SiteRec: store site recommendation under the O2O model.

A full reproduction of Yan et al., "O2-SiteRec: Store Site Recommendation
under the O2O Model via Multi-graph Attention Networks" (ICDE 2022),
including a from-scratch numpy autograd/NN substrate, a synthetic O2O city
simulator standing in for the proprietary Eleme dataset, the O2-SiteRec
model, all six baselines and the complete experiment harness.

Quickstart::

    from repro import city, core
    from repro.data import SiteRecDataset

    sim = city.tiny_dataset()
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=0)
    model = core.O2SiteRec(dataset, split)
    core.Trainer(model).fit(split.train_pairs,
                            dataset.pair_targets(split.train_pairs))
    core.recommend_sites(model, store_type=0,
                         candidate_regions=split.test_regions_for_type(0))
"""

from . import (
    baselines,
    city,
    core,
    data,
    experiments,
    extensions,
    geo,
    graphs,
    metrics,
    nn,
    optim,
    serve,
    tensor,
)

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "optim",
    "geo",
    "city",
    "data",
    "graphs",
    "core",
    "baselines",
    "metrics",
    "extensions",
    "experiments",
    "serve",
    "__version__",
]
