"""Courier Mobility Multi-graph (Definition 3).

For each period ``t`` an edge ``(r_i, r_j)`` records that couriers moved
(delivered) from region ``r_i`` to region ``r_j``, attributed with the mean
observed delivery time.  The union over periods forms the multi-graph; each
period's subgraph is one reconstruction task of the courier capacity model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..data.aggregates import OrderAggregates
from ..data.periods import TimePeriod

# Delivery-time normalisation: 60 minutes maps to 1.0 (targets stay O(1)).
DELIVERY_TIME_SCALE_MIN = 60.0


@dataclass(frozen=True)
class MobilitySubgraph:
    """One period's courier mobility edges."""

    period: TimePeriod
    src: np.ndarray  # store regions
    dst: np.ndarray  # customer regions
    delivery_time: np.ndarray  # normalised (minutes / DELIVERY_TIME_SCALE_MIN)
    count: np.ndarray  # deliveries observed on the edge

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def undirected_neighbors(self) -> tuple:
        """Edge endpoints duplicated in both directions.

        Courier capacity correlates regions symmetrically ("regions with
        mobility relations have some correlation"), so the mobility semantic
        aggregation treats edges as undirected.  The concatenated arrays are
        cached so repeated passes reuse the same objects (segment plans are
        keyed by array identity).
        """
        cached = self.__dict__.get("_undirected")
        if cached is None:
            src = np.concatenate([self.src, self.dst])
            dst = np.concatenate([self.dst, self.src])
            cached = (src, dst)
            # The dataclass is frozen; stash the cache without __setattr__.
            object.__setattr__(self, "_undirected", cached)
        return cached


@dataclass(frozen=True)
class CourierMobilityMultiGraph:
    """All periods' mobility subgraphs over a shared region node set."""

    num_regions: int
    subgraphs: Dict[TimePeriod, MobilitySubgraph]

    def subgraph(self, period: TimePeriod) -> MobilitySubgraph:
        return self.subgraphs[period]

    @property
    def total_edges(self) -> int:
        return sum(g.num_edges for g in self.subgraphs.values())

    @classmethod
    def from_aggregates(
        cls,
        aggregates: OrderAggregates,
        min_count: int = 1,
        time_scale_min: float = DELIVERY_TIME_SCALE_MIN,
    ) -> "CourierMobilityMultiGraph":
        """Build the multi-graph from observed order deliveries.

        ``min_count`` filters pairs with too few deliveries for their mean
        delivery time to be meaningful.
        """
        if time_scale_min <= 0:
            raise ValueError("time_scale_min must be positive")
        subgraphs = {}
        for period in TimePeriod:
            edges = aggregates.mobility_edges(period, min_count=min_count)
            if edges:
                src, dst, dt, count = (np.array(x) for x in zip(*edges))
            else:
                src = dst = np.zeros(0, dtype=np.int64)
                dt = np.zeros(0)
                count = np.zeros(0, dtype=np.int64)
            subgraphs[period] = MobilitySubgraph(
                period=period,
                src=src.astype(np.int64),
                dst=dst.astype(np.int64),
                delivery_time=dt.astype(np.float64) / time_scale_min,
                count=count.astype(np.int64),
            )
        return cls(num_regions=aggregates.num_regions, subgraphs=subgraphs)
