"""Region Geographical Graph (Definition 2).

Nodes are regions; an edge connects two regions whose centroid distance is
below a threshold (paper: 800 m), with the distance as edge attribute.
Edges are stored directed both ways so neighbourhood aggregations can index
incoming edges per target node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import RegionGrid

DEFAULT_THRESHOLD_M = 800.0


@dataclass(frozen=True)
class RegionGeographicalGraph:
    """Directed edge list ``src -> dst`` with metre distances."""

    num_regions: int
    src: np.ndarray
    dst: np.ndarray
    distance: np.ndarray

    @property
    def num_edges(self) -> int:
        return len(self.src)

    @classmethod
    def from_grid(
        cls, grid: RegionGrid, threshold_m: float = DEFAULT_THRESHOLD_M
    ) -> "RegionGeographicalGraph":
        if threshold_m <= 0:
            raise ValueError("threshold_m must be positive")
        pairs = grid.pairs_within(threshold_m)
        if pairs:
            src, dst, dist = (np.array(x) for x in zip(*pairs))
        else:  # degenerate single-region grid
            src = np.zeros(0, dtype=np.int64)
            dst = np.zeros(0, dtype=np.int64)
            dist = np.zeros(0)
        return cls(
            num_regions=grid.num_regions,
            src=src.astype(np.int64),
            dst=dst.astype(np.int64),
            distance=dist.astype(np.float64),
        )

    def neighbors_of(self, region: int) -> np.ndarray:
        """Source regions of edges pointing at ``region``."""
        return self.src[self.dst == region]
