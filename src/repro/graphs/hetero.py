"""Region-Type Heterogeneous Multi-graph (Definition 4).

Nodes: store-regions S, customer-regions U and store-types A.  Per period
``t`` the edges are:

* ``E_S-U(s, u, t)`` -- u is in the delivery scope of s during t.  Built
  with the paper's rule: candidates within the store region's *farthest*
  delivery distance; connect if closer than the *average* delivery
  distance, otherwise connect only when the historical order ratio clears a
  threshold.  Attribute: [distance, historical transactions].
* ``E_S-A(s, a)`` -- stores of type a exist in s (static).  Attribute:
  [competitiveness, complementarity, history order number].
* ``E_U-A(u, a, t)`` -- customers in u ordered type a in t.  Attribute:
  historical transaction count.

When a train/test split is supplied, the *history order number* channel of
S-A edges is masked for held-out pairs -- it is exactly the quantity the
model must predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.periods import TimePeriod
from ..data.split import InteractionSplit

# Distance normalisation for S-U edge attributes (5 km -> 1.0).
DISTANCE_SCALE_M = 5000.0
# Scope rule used when capacity awareness is disabled (the w/o Co variant):
# a flat radius, ignoring observed delivery behaviour.
FALLBACK_SCOPE_M = 3000.0


@dataclass(frozen=True)
class HeteroSubgraph:
    """One period's S-U and U-A edges (S-A edges are period-invariant)."""

    period: TimePeriod
    # S-U edges: customer-region -> store-region.
    su_src_u: np.ndarray  # index into the U node list
    su_dst_s: np.ndarray  # index into the S node list
    su_attr: np.ndarray  # (E, 2): [distance, transactions] normalised
    su_region_pairs: np.ndarray  # (E, 2): raw (store_region, customer_region)
    # U-A edges: store-type -> customer-region.
    ua_src_a: np.ndarray  # index into the type list
    ua_dst_u: np.ndarray  # index into the U node list
    ua_attr: np.ndarray  # (E, 1): transactions normalised

    @property
    def num_su_edges(self) -> int:
        return len(self.su_dst_s)

    @property
    def num_ua_edges(self) -> int:
        return len(self.ua_dst_u)


@dataclass(frozen=True)
class RegionTypeHeteroMultiGraph:
    """The full multi-graph plus node attribute matrices."""

    store_regions: np.ndarray  # region id per S node
    customer_regions: np.ndarray  # region id per U node
    num_types: int
    store_features: np.ndarray  # (nS, F) geographic features f_s
    customer_features: np.ndarray  # (nU, F) geographic features f_u
    # S-A edges (static): store-region <-> type.
    sa_src_s: np.ndarray
    sa_dst_a: np.ndarray
    sa_attr: np.ndarray  # (E, 3)
    subgraphs: Dict[TimePeriod, HeteroSubgraph]

    @property
    def num_store_nodes(self) -> int:
        return len(self.store_regions)

    @property
    def num_customer_nodes(self) -> int:
        return len(self.customer_regions)

    def subgraph(self, period: TimePeriod) -> HeteroSubgraph:
        return self.subgraphs[period]

    def store_index_of(self, region: int) -> int:
        """S node index of a region id (raises if not a store region)."""
        matches = np.flatnonzero(self.store_regions == region)
        if len(matches) == 0:
            raise KeyError(f"region {region} is not a store region")
        return int(matches[0])


# Above this many store x customer cells the builder streams distance rows
# instead of materialising the dense matrix (~32 MB of float64 at the
# limit; a 10k-region metropolis would need tens of GB dense).
DENSE_DISTANCE_LIMIT = 4_000_000


def build_hetero_multigraph(
    dataset: SiteRecDataset,
    split: Optional[InteractionSplit] = None,
    capacity_aware: bool = True,
    order_ratio_threshold: float = 0.02,
    windowed_distances: Optional[bool] = None,
) -> RegionTypeHeteroMultiGraph:
    """Construct the multi-graph from a dataset.

    ``capacity_aware=False`` reproduces the *w/o Co* ablation's graph: S-U
    edges use a flat radius instead of the observed (pressure-controlled)
    delivery scopes.

    ``windowed_distances`` selects the store-customer distance evaluation:
    dense (one ``(nS, nU)`` matrix, fastest at paper scale) or windowed
    (one streamed row per store, O(nU) memory -- mandatory at metropolis
    scale, where the dense matrix runs to tens of GB).  The default
    ``None`` switches automatically at :data:`DENSE_DISTANCE_LIMIT` cells.
    Both paths compute each row with the same elementwise expressions, so
    the resulting graphs are identical (``tests/test_partition.py`` pins
    this).
    """
    agg = dataset.aggregates
    store_regions = dataset.store_regions
    customer_regions = dataset.customer_regions
    s_of_region = {int(r): i for i, r in enumerate(store_regions)}
    u_of_region = {int(r): i for i, r in enumerate(customer_regions)}

    # Pairwise distances store-region x customer-region.
    centroids = dataset.grid.centroids()
    sc = centroids[store_regions]
    uc = centroids[customer_regions]
    if windowed_distances is None:
        windowed_distances = (
            len(store_regions) * len(customer_regions) > DENSE_DISTANCE_LIMIT
        )
    if windowed_distances:
        def dist_row(si: int) -> np.ndarray:
            diff = sc[si] - uc
            return np.sqrt((diff**2).sum(axis=1))

    else:
        dense_dist = np.sqrt(((sc[:, None, :] - uc[None, :, :]) ** 2).sum(axis=2))

        def dist_row(si: int) -> np.ndarray:
            return dense_dist[si]

    max_pair_count = max(
        (
            stats.count
            for period_stats in agg.pair_stats
            for stats in period_stats.values()
        ),
        default=1,
    )

    subgraphs = {}
    for period in TimePeriod:
        t = int(period)
        su_src, su_dst, su_attr, su_pairs = [], [], [], []
        stats_t = agg.pair_stats[t]
        for si, rs in enumerate(store_regions):
            rs = int(rs)
            total = agg.total_orders_s[rs, t]
            if capacity_aware:
                far = agg.farthest_distance[rs, t]
                avg = agg.mean_distance[rs, t]
                if far <= 0:  # store saw no orders this period
                    far = avg = FALLBACK_SCOPE_M / 2
            else:
                far = FALLBACK_SCOPE_M
                avg = FALLBACK_SCOPE_M
            row = dist_row(si)
            candidates = np.flatnonzero(row <= far)
            for ui in candidates:
                ru = int(customer_regions[ui])
                d = row[ui]
                stats = stats_t.get((rs, ru))
                count = stats.count if stats else 0
                if d >= avg:
                    # Beyond the average scope: require a meaningful order
                    # ratio (filters exception orders).
                    if total <= 0 or count / total < order_ratio_threshold:
                        continue
                su_src.append(ui)
                su_dst.append(si)
                su_attr.append((d / DISTANCE_SCALE_M, count / max_pair_count))
                su_pairs.append((rs, ru))

        ua_src, ua_dst, ua_attr = [], [], []
        counts_ut = agg.counts_uat[:, :, t]
        ua_max = max(counts_ut.max(), 1.0)
        for ui, ru in enumerate(customer_regions):
            for a in np.flatnonzero(counts_ut[int(ru)] > 0):
                ua_src.append(int(a))
                ua_dst.append(ui)
                ua_attr.append((counts_ut[int(ru), a] / ua_max,))

        subgraphs[period] = HeteroSubgraph(
            period=period,
            su_src_u=np.array(su_src, dtype=np.int64),
            su_dst_s=np.array(su_dst, dtype=np.int64),
            su_attr=np.array(su_attr, dtype=np.float64).reshape(-1, 2),
            su_region_pairs=np.array(su_pairs, dtype=np.int64).reshape(-1, 2),
            ua_src_a=np.array(ua_src, dtype=np.int64),
            ua_dst_u=np.array(ua_dst, dtype=np.int64),
            ua_attr=np.array(ua_attr, dtype=np.float64).reshape(-1, 1),
        )

    # Static S-A edges from the store registry.
    masked = _masked_counts(dataset, split)
    sa_src, sa_dst, sa_attr = [], [], []
    for si, rs in enumerate(store_regions):
        rs = int(rs)
        for a in np.flatnonzero(dataset.store_counts[rs] > 0):
            sa_src.append(si)
            sa_dst.append(int(a))
            sa_attr.append(
                (
                    dataset.commercial[rs, a, 0],
                    dataset.commercial[rs, a, 1],
                    masked[rs, a],
                )
            )

    return RegionTypeHeteroMultiGraph(
        store_regions=store_regions.astype(np.int64),
        customer_regions=customer_regions.astype(np.int64),
        num_types=dataset.num_types,
        store_features=dataset.region_features[store_regions],
        customer_features=dataset.region_features[customer_regions],
        sa_src_s=np.array(sa_src, dtype=np.int64),
        sa_dst_a=np.array(sa_dst, dtype=np.int64),
        sa_attr=np.array(sa_attr, dtype=np.float64).reshape(-1, 3),
        subgraphs=subgraphs,
    )


def _masked_counts(
    dataset: SiteRecDataset, split: Optional[InteractionSplit]
) -> np.ndarray:
    """Normalised order counts with held-out (s, a) pairs zeroed.

    The history-order-number channel of S-A edge attributes would otherwise
    hand the model its own prediction target for test pairs.
    """
    masked = dataset.targets.copy()
    if split is not None:
        masked[split.test_pairs[:, 0], split.test_pairs[:, 1]] = 0.0
    return masked
