"""Region-Type Heterogeneous Multi-graph (Definition 4).

Nodes: store-regions S, customer-regions U and store-types A.  Per period
``t`` the edges are:

* ``E_S-U(s, u, t)`` -- u is in the delivery scope of s during t.  Built
  with the paper's rule: candidates within the store region's *farthest*
  delivery distance; connect if closer than the *average* delivery
  distance, otherwise connect only when the historical order ratio clears a
  threshold.  Attribute: [distance, historical transactions].
* ``E_S-A(s, a)`` -- stores of type a exist in s (static).  Attribute:
  [competitiveness, complementarity, history order number].
* ``E_U-A(u, a, t)`` -- customers in u ordered type a in t.  Attribute:
  historical transaction count.

When a train/test split is supplied, the *history order number* channel of
S-A edges is masked for held-out pairs -- it is exactly the quantity the
model must predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.periods import NUM_PERIODS, TimePeriod
from ..data.split import InteractionSplit
from ..runtime import env_flag

# Distance normalisation for S-U edge attributes (5 km -> 1.0).
DISTANCE_SCALE_M = 5000.0
# Scope rule used when capacity awareness is disabled (the w/o Co variant):
# a flat radius, ignoring observed delivery behaviour.
FALLBACK_SCOPE_M = 3000.0


@dataclass(frozen=True)
class HeteroSubgraph:
    """One period's S-U and U-A edges (S-A edges are period-invariant)."""

    period: TimePeriod
    # S-U edges: customer-region -> store-region.
    su_src_u: np.ndarray  # index into the U node list
    su_dst_s: np.ndarray  # index into the S node list
    su_attr: np.ndarray  # (E, 2): [distance, transactions] normalised
    su_region_pairs: np.ndarray  # (E, 2): raw (store_region, customer_region)
    # U-A edges: store-type -> customer-region.
    ua_src_a: np.ndarray  # index into the type list
    ua_dst_u: np.ndarray  # index into the U node list
    ua_attr: np.ndarray  # (E, 1): transactions normalised

    @property
    def num_su_edges(self) -> int:
        return len(self.su_dst_s)

    @property
    def num_ua_edges(self) -> int:
        return len(self.ua_dst_u)


@dataclass(frozen=True)
class RegionTypeHeteroMultiGraph:
    """The full multi-graph plus node attribute matrices."""

    store_regions: np.ndarray  # region id per S node
    customer_regions: np.ndarray  # region id per U node
    num_types: int
    store_features: np.ndarray  # (nS, F) geographic features f_s
    customer_features: np.ndarray  # (nU, F) geographic features f_u
    # S-A edges (static): store-region <-> type.
    sa_src_s: np.ndarray
    sa_dst_a: np.ndarray
    sa_attr: np.ndarray  # (E, 3)
    subgraphs: Dict[TimePeriod, HeteroSubgraph]

    @property
    def num_store_nodes(self) -> int:
        return len(self.store_regions)

    @property
    def num_customer_nodes(self) -> int:
        return len(self.customer_regions)

    def subgraph(self, period: TimePeriod) -> HeteroSubgraph:
        return self.subgraphs[period]

    def store_index_of(self, region: int) -> int:
        """S node index of a region id (raises if not a store region)."""
        matches = np.flatnonzero(self.store_regions == region)
        if len(matches) == 0:
            raise KeyError(f"region {region} is not a store region")
        return int(matches[0])


# Above this many store x customer cells the builder streams distance rows
# instead of materialising the dense matrix (~32 MB of float64 at the
# limit; a 10k-region metropolis would need tens of GB dense).
DENSE_DISTANCE_LIMIT = 4_000_000

# O2_STREAM_GRAPH=0 pins the reference per-store S-U loop even above the
# auto threshold (the streaming band build is array-identical; the switch
# exists for A/B verification and the bit-identity tests).
_STREAM_GRAPH_DEFAULT = env_flag("O2_STREAM_GRAPH", True)


def _su_edges_streaming(
    agg,
    store_regions: np.ndarray,
    customer_regions: np.ndarray,
    sc: np.ndarray,
    uc: np.ndarray,
    capacity_aware: bool,
    order_ratio_threshold: float,
    max_pair_count: int,
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Banded S-U edge construction, array-identical to the per-store loop.

    Stores are processed in consecutive bands sized so one ``(band, nU)``
    distance block stays under :data:`DENSE_DISTANCE_LIMIT` cells (~32 MB);
    the block is computed once per band and reused across all five periods.
    Edges are emitted in (store band, period-local ``np.nonzero`` row-major)
    order -- exactly the reference's ``si`` ascending, candidate ``ui``
    ascending order -- and concatenated at absolute offsets, so the final
    arrays match the dense build element for element.  Peak memory is the
    block plus the emitted edges, never ``nS x nU``.
    """
    nS, nU = len(store_regions), len(customer_regions)
    N = agg.num_regions
    sr = store_regions.astype(np.int64)
    ur = customer_regions.astype(np.int64)

    far_all = np.empty((NUM_PERIODS, nS))
    avg_all = np.empty((NUM_PERIODS, nS))
    tot_all = np.empty((NUM_PERIODS, nS))
    for t in range(NUM_PERIODS):
        tot_all[t] = agg.total_orders_s[sr, t]
        if capacity_aware:
            far = agg.farthest_distance[sr, t].copy()
            avg = agg.mean_distance[sr, t].copy()
            idle = far <= 0  # store saw no orders this period
            far[idle] = FALLBACK_SCOPE_M / 2
            avg[idle] = FALLBACK_SCOPE_M / 2
        else:
            far = np.full(nS, FALLBACK_SCOPE_M)
            avg = np.full(nS, FALLBACK_SCOPE_M)
        far_all[t] = far
        avg_all[t] = avg

    chunks: Dict[int, List[Tuple[np.ndarray, ...]]] = {
        t: [] for t in range(NUM_PERIODS)
    }
    band = max(1, DENSE_DISTANCE_LIMIT // max(nU, 1))
    for b0 in range(0, nS, band):
        b1 = min(b0 + band, nS)
        # Same elementwise expression as the dense matrix build: the block
        # is that matrix's row slice, bit for bit.
        diff = sc[b0:b1, None, :] - uc[None, :, :]
        block = np.sqrt((diff**2).sum(axis=2))
        for t in range(NUM_PERIODS):
            cand = block <= far_all[t, b0:b1, None]
            si_loc, ui = np.nonzero(cand)
            if not len(si_loc):
                continue
            si = b0 + si_loc
            d = block[si_loc, ui]
            rs = sr[si]
            ru = ur[ui]
            counts = agg.pair_tables[t].counts_for(rs * N + ru)
            tot = tot_all[t, si]
            ratio = np.divide(
                counts, tot, out=np.zeros(len(counts)), where=tot > 0
            )
            # Reference rule: keep when d < avg, else require a meaningful
            # order ratio (filters exception orders).
            keep = (d < avg_all[t, si]) | (
                (tot > 0) & (ratio >= order_ratio_threshold)
            )
            if not keep.any():
                continue
            attr = np.stack(
                [d[keep] / DISTANCE_SCALE_M, counts[keep] / max_pair_count],
                axis=1,
            )
            pairs = np.stack([rs[keep], ru[keep]], axis=1)
            chunks[t].append((ui[keep], si[keep], attr, pairs))

    result = {}
    for t in range(NUM_PERIODS):
        if chunks[t]:
            result[t] = (
                np.concatenate([c[0] for c in chunks[t]]),
                np.concatenate([c[1] for c in chunks[t]]),
                np.concatenate([c[2] for c in chunks[t]], axis=0),
                np.concatenate([c[3] for c in chunks[t]], axis=0),
            )
        else:
            result[t] = (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros((0, 2)),
                np.zeros((0, 2), dtype=np.int64),
            )
    return result


def build_hetero_multigraph(
    dataset: SiteRecDataset,
    split: Optional[InteractionSplit] = None,
    capacity_aware: bool = True,
    order_ratio_threshold: float = 0.02,
    windowed_distances: Optional[bool] = None,
    streaming: Optional[bool] = None,
) -> RegionTypeHeteroMultiGraph:
    """Construct the multi-graph from a dataset.

    ``capacity_aware=False`` reproduces the *w/o Co* ablation's graph: S-U
    edges use a flat radius instead of the observed (pressure-controlled)
    delivery scopes.

    ``streaming`` selects the S-U edge builder: the per-store reference
    loop, or the banded streaming build (:func:`_su_edges_streaming`) that
    vectorises the scope/ratio rule over ``(band, nU)`` distance blocks and
    emits edge chunks at absolute offsets -- array-identical output, peak
    memory bounded by one block.  The default ``None`` engages streaming
    above :data:`DENSE_DISTANCE_LIMIT` cells (unless ``O2_STREAM_GRAPH=0``).

    ``windowed_distances`` selects the distance evaluation for the
    *reference* loop: dense (one ``(nS, nU)`` matrix) or windowed (one
    streamed row per store).  Both compute each row with the same
    elementwise expressions, so all three paths produce identical graphs
    (``tests/test_partition.py``, ``tests/test_stream_graph.py``).
    """
    agg = dataset.aggregates
    store_regions = dataset.store_regions
    customer_regions = dataset.customer_regions

    # Pairwise distances store-region x customer-region.
    centroids = dataset.grid.centroids()
    sc = centroids[store_regions]
    uc = centroids[customer_regions]
    cells = len(store_regions) * len(customer_regions)
    if streaming is None:
        streaming = _STREAM_GRAPH_DEFAULT and cells > DENSE_DISTANCE_LIMIT
    if windowed_distances is None:
        windowed_distances = cells > DENSE_DISTANCE_LIMIT

    max_pair_count = max(agg.max_pair_count(), 1)

    if streaming:
        su_arrays = _su_edges_streaming(
            agg,
            store_regions,
            customer_regions,
            sc,
            uc,
            capacity_aware,
            order_ratio_threshold,
            max_pair_count,
        )
    else:
        su_arrays = _su_edges_reference(
            agg,
            store_regions,
            customer_regions,
            sc,
            uc,
            capacity_aware,
            order_ratio_threshold,
            max_pair_count,
            windowed_distances,
        )

    subgraphs = {}
    for period in TimePeriod:
        t = int(period)
        su_src, su_dst, su_attr, su_pairs = su_arrays[t]

        # U-A edges, vectorised: np.nonzero row-major order IS the
        # reference's (ui ascending, type ascending) nested loop order, and
        # the attribute division is the same float64 op elementwise.
        counts_ut = agg.counts_uat[:, :, t]
        ua_max = max(counts_ut.max(), 1.0)
        sel = counts_ut[customer_regions.astype(np.int64)]
        ua_dst, ua_src = np.nonzero(sel > 0)
        ua_attr = (sel[ua_dst, ua_src] / ua_max).reshape(-1, 1)

        subgraphs[period] = HeteroSubgraph(
            period=period,
            su_src_u=np.asarray(su_src, dtype=np.int64),
            su_dst_s=np.asarray(su_dst, dtype=np.int64),
            su_attr=np.asarray(su_attr, dtype=np.float64).reshape(-1, 2),
            su_region_pairs=np.asarray(su_pairs, dtype=np.int64).reshape(
                -1, 2
            ),
            ua_src_a=ua_src.astype(np.int64),
            ua_dst_u=ua_dst.astype(np.int64),
            ua_attr=np.asarray(ua_attr, dtype=np.float64).reshape(-1, 1),
        )

    # Static S-A edges from the store registry, vectorised the same way.
    masked = _masked_counts(dataset, split)
    sr = store_regions.astype(np.int64)
    sa_sel = dataset.store_counts[sr] > 0
    sa_src, sa_dst = np.nonzero(sa_sel)
    rs_sa = sr[sa_src]
    sa_attr = np.stack(
        [
            dataset.commercial[rs_sa, sa_dst, 0],
            dataset.commercial[rs_sa, sa_dst, 1],
            masked[rs_sa, sa_dst],
        ],
        axis=1,
    )

    return RegionTypeHeteroMultiGraph(
        store_regions=store_regions.astype(np.int64),
        customer_regions=customer_regions.astype(np.int64),
        num_types=dataset.num_types,
        store_features=dataset.region_features[store_regions],
        customer_features=dataset.region_features[customer_regions],
        sa_src_s=sa_src.astype(np.int64),
        sa_dst_a=sa_dst.astype(np.int64),
        sa_attr=sa_attr.astype(np.float64).reshape(-1, 3),
        subgraphs=subgraphs,
    )


def _su_edges_reference(
    agg,
    store_regions: np.ndarray,
    customer_regions: np.ndarray,
    sc: np.ndarray,
    uc: np.ndarray,
    capacity_aware: bool,
    order_ratio_threshold: float,
    max_pair_count: int,
    windowed_distances: bool,
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """The per-store reference S-U loop (pre-streaming code, kept verbatim)."""
    if windowed_distances:
        def dist_row(si: int) -> np.ndarray:
            diff = sc[si] - uc
            return np.sqrt((diff**2).sum(axis=1))

    else:
        dense_dist = np.sqrt(
            ((sc[:, None, :] - uc[None, :, :]) ** 2).sum(axis=2)
        )

        def dist_row(si: int) -> np.ndarray:
            return dense_dist[si]

    result = {}
    for t in range(NUM_PERIODS):
        su_src, su_dst, su_attr, su_pairs = [], [], [], []
        stats_t = agg.pair_stats[t]
        for si, rs in enumerate(store_regions):
            rs = int(rs)
            total = agg.total_orders_s[rs, t]
            if capacity_aware:
                far = agg.farthest_distance[rs, t]
                avg = agg.mean_distance[rs, t]
                if far <= 0:  # store saw no orders this period
                    far = avg = FALLBACK_SCOPE_M / 2
            else:
                far = FALLBACK_SCOPE_M
                avg = FALLBACK_SCOPE_M
            row = dist_row(si)
            candidates = np.flatnonzero(row <= far)
            for ui in candidates:
                ru = int(customer_regions[ui])
                d = row[ui]
                stats = stats_t.get((rs, ru))
                count = stats.count if stats else 0
                if d >= avg:
                    # Beyond the average scope: require a meaningful order
                    # ratio (filters exception orders).
                    if total <= 0 or count / total < order_ratio_threshold:
                        continue
                su_src.append(ui)
                su_dst.append(si)
                su_attr.append(
                    (d / DISTANCE_SCALE_M, count / max_pair_count)
                )
                su_pairs.append((rs, ru))
        result[t] = (
            np.array(su_src, dtype=np.int64),
            np.array(su_dst, dtype=np.int64),
            np.array(su_attr, dtype=np.float64).reshape(-1, 2),
            np.array(su_pairs, dtype=np.int64).reshape(-1, 2),
        )
    return result


def _masked_counts(
    dataset: SiteRecDataset, split: Optional[InteractionSplit]
) -> np.ndarray:
    """Normalised order counts with held-out (s, a) pairs zeroed.

    The history-order-number channel of S-A edge attributes would otherwise
    hand the model its own prediction target for test pairs.
    """
    masked = dataset.targets.copy()
    if split is not None:
        masked[split.test_pairs[:, 0], split.test_pairs[:, 1]] = 0.0
    return masked
