"""Graph constructions: Definitions 2-4 of the paper."""

from .geographic import DEFAULT_THRESHOLD_M, RegionGeographicalGraph
from .hetero import (
    DISTANCE_SCALE_M,
    FALLBACK_SCOPE_M,
    HeteroSubgraph,
    RegionTypeHeteroMultiGraph,
    build_hetero_multigraph,
)
from .mobility import (
    DELIVERY_TIME_SCALE_MIN,
    CourierMobilityMultiGraph,
    MobilitySubgraph,
)
from .partition import GridTilePartition, partition_grid

__all__ = [
    "GridTilePartition",
    "partition_grid",
    "RegionGeographicalGraph",
    "DEFAULT_THRESHOLD_M",
    "CourierMobilityMultiGraph",
    "MobilitySubgraph",
    "DELIVERY_TIME_SCALE_MIN",
    "RegionTypeHeteroMultiGraph",
    "HeteroSubgraph",
    "build_hetero_multigraph",
    "DISTANCE_SCALE_M",
    "FALLBACK_SCOPE_M",
]
