"""Grid-tile partitioning of the region set for metropolis-scale sharding.

The city is already a ``rows x cols`` grid of square regions
(:class:`repro.geo.grid.RegionGrid`, Definition 1); a metropolis run tiles
that grid into ``tile_rows x tile_cols`` axis-aligned rectangles of regions
-- spatially contiguous by construction, which is what makes sharded graph
propagation cheap: all three graph planes (geographical, mobility,
capacity/hetero) connect regions by *distance*, so the endpoints of almost
every edge land in the same tile and the cross-tile remainder is confined
to a thin boundary ring.

Ownership is a function, not a search: every region belongs to exactly one
tile, and every edge is **owned by the tile of its destination region** --
the aggregation side.  A tile's worker therefore computes complete
aggregates for its own nodes from the full edge list restricted to
``owner[dst] == tile`` (each cross-tile edge is pulled in by exactly one
owner; nothing is double-counted, nothing is dropped), reading source rows
for the halo ring from the shared feature arena.  :meth:`halo_regions`
names that ring explicitly for diagnostics and prefetch sizing.

Tiles use ``np.array_split`` boundary semantics on each axis (the first
``rows % tile_rows`` row-bands get the extra row), so non-divisible grid
dimensions split into near-equal contiguous bands and the degenerate
``num_tiles=1`` case is the identity partition.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "GridTilePartition",
    "band_node_splits",
    "partition_grid",
    "stacked_band_cuts",
]


def _axis_splits(size: int, parts: int) -> np.ndarray:
    """``parts + 1`` cut points of ``np.array_split(range(size), parts)``."""
    base, extra = divmod(size, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def _near_square_factors(num_tiles: int, rows: int, cols: int) -> Tuple[int, int]:
    """Factor ``num_tiles`` as ``tile_rows * tile_cols`` matching the grid.

    Picks the divisor pair whose aspect ratio best matches ``rows / cols``
    so tiles come out near-square in *regions* (minimising boundary length,
    hence halo traffic).  Each factor is additionally capped by the axis
    size -- a 4x100 ribbon cannot host 3 row-bands of 8 tiles.
    """
    if num_tiles < 1:
        raise ValueError("num_tiles must be >= 1")
    best: Tuple[int, int] = (1, min(num_tiles, cols))
    best_score = float("inf")
    for tr in range(1, num_tiles + 1):
        if num_tiles % tr:
            continue
        tc = num_tiles // tr
        if tr > rows or tc > cols:
            continue
        # Ideal: rows/tr == cols/tc  <=>  tr/tc == rows/cols.
        score = abs(np.log((rows / tr) / (cols / tc)))
        if score < best_score:
            best, best_score = (tr, tc), score
    if best_score == float("inf"):
        # num_tiles has no factorisation fitting the grid (e.g. a prime
        # larger than both axes); fall back to the largest 1-D split.
        return (min(num_tiles, rows), 1) if rows >= cols else (1, min(num_tiles, cols))
    return best


class GridTilePartition:
    """A tiling of the ``rows x cols`` region grid into rectangular tiles.

    Attributes
    ----------
    rows, cols:
        Grid dimensions (regions per axis).
    tile_rows, tile_cols:
        Tile-bands per axis; ``num_tiles = tile_rows * tile_cols``.
    row_splits, col_splits:
        Cut points per axis (length ``tile_rows + 1`` / ``tile_cols + 1``).
    owner:
        ``(rows * cols,)`` int64 array mapping region id -> tile id.  Tiles
        are numbered row-major, like regions.
    """

    __slots__ = ("rows", "cols", "tile_rows", "tile_cols",
                 "row_splits", "col_splits", "owner")

    def __init__(self, rows: int, cols: int, tile_rows: int, tile_cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid must have at least one row and column")
        if not (1 <= tile_rows <= rows and 1 <= tile_cols <= cols):
            raise ValueError(
                f"tile grid {tile_rows}x{tile_cols} does not fit region grid "
                f"{rows}x{cols}"
            )
        self.rows = int(rows)
        self.cols = int(cols)
        self.tile_rows = int(tile_rows)
        self.tile_cols = int(tile_cols)
        self.row_splits = _axis_splits(self.rows, self.tile_rows)
        self.col_splits = _axis_splits(self.cols, self.tile_cols)
        # Band index per row/col, then tile id per region, all vectorised.
        row_band = np.repeat(
            np.arange(self.tile_rows, dtype=np.int64), np.diff(self.row_splits)
        )
        col_band = np.repeat(
            np.arange(self.tile_cols, dtype=np.int64), np.diff(self.col_splits)
        )
        region_rows, region_cols = np.divmod(
            np.arange(self.rows * self.cols, dtype=np.int64), self.cols
        )
        self.owner = row_band[region_rows] * self.tile_cols + col_band[region_cols]
        self.owner.setflags(write=False)

    # -- identity -----------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        return self.tile_rows * self.tile_cols

    @property
    def num_regions(self) -> int:
        return self.rows * self.cols

    def tile_bounds(self, tile: int) -> Tuple[int, int, int, int]:
        """Half-open region-row/col bounds ``(r0, r1, c0, c1)`` of ``tile``."""
        if not 0 <= tile < self.num_tiles:
            raise IndexError(f"tile {tile} outside [0, {self.num_tiles})")
        tr, tc = divmod(tile, self.tile_cols)
        return (
            int(self.row_splits[tr]), int(self.row_splits[tr + 1]),
            int(self.col_splits[tc]), int(self.col_splits[tc + 1]),
        )

    def tile_regions(self, tile: int) -> np.ndarray:
        """Region ids owned by ``tile``, ascending."""
        r0, r1, c0, c1 = self.tile_bounds(tile)
        return (
            np.arange(r0, r1, dtype=np.int64)[:, None] * self.cols
            + np.arange(c0, c1, dtype=np.int64)[None, :]
        ).ravel()

    def halo_regions(self, tile: int, radius: int = 1) -> np.ndarray:
        """Regions within ``radius`` Chebyshev cells of ``tile``, not owned.

        The halo ring a tile's worker reads (but never writes): source rows
        of cross-tile edges whose destinations the tile owns.  ``radius`` is
        in grid cells -- a distance threshold ``d`` metres needs
        ``floor(d / cell_size) + 1`` cells to cover its disk.
        """
        if radius < 0:
            raise ValueError("radius must be >= 0")
        r0, r1, c0, c1 = self.tile_bounds(tile)
        rr0, rr1 = max(r0 - radius, 0), min(r1 + radius, self.rows)
        cc0, cc1 = max(c0 - radius, 0), min(c1 + radius, self.cols)
        block = (
            np.arange(rr0, rr1, dtype=np.int64)[:, None] * self.cols
            + np.arange(cc0, cc1, dtype=np.int64)[None, :]
        ).ravel()
        return block[self.owner[block] != tile]

    # -- edges --------------------------------------------------------------
    def edge_owner(self, dst_regions: np.ndarray) -> np.ndarray:
        """Owning tile per edge: the tile of each destination region.

        This is the halo-completeness invariant in one line -- ownership is
        a total function of ``dst``, so every cross-tile edge is assigned to
        exactly one tile (its aggregation side) and the per-tile edge sets
        partition the edge list.
        """
        return self.owner[np.asarray(dst_regions, dtype=np.int64)]

    def cut_fraction(self, src_regions: np.ndarray, dst_regions: np.ndarray) -> float:
        """Fraction of edges whose endpoints fall in different tiles."""
        src = np.asarray(src_regions, dtype=np.int64)
        dst = np.asarray(dst_regions, dtype=np.int64)
        if src.size == 0:
            return 0.0
        return float(np.mean(self.owner[src] != self.owner[dst]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridTilePartition({self.rows}x{self.cols} regions -> "
            f"{self.tile_rows}x{self.tile_cols} tiles)"
        )


def band_node_splits(
    node_regions: np.ndarray, region_cuts: np.ndarray, what: str = "node"
) -> np.ndarray:
    """Node-index cut points of the region row-band partition.

    ``node_regions`` is the (sorted) region id per node; ``region_cuts`` the
    ``tiles + 1`` region-id cut points (``row_splits * cols`` for a row-band
    partition).  Returns ``tiles + 1`` int64 node-index cuts such that band
    ``t`` owns nodes ``[splits[t], splits[t + 1])``.  Raises when the bands
    would not tile the node set exactly -- every consumer (sharded eval
    stitches, banded training gradients) relies on the stitched rows
    covering ``[0, n)`` with no gaps or overlap, which requires the node
    list sorted by region id (the graph builder guarantees it).
    """
    splits = np.searchsorted(node_regions, region_cuts).astype(np.int64)
    if int(splits[0]) != 0 or int(splits[-1]) != len(node_regions):
        raise RuntimeError(
            f"shard bands do not cover the {what} set; is the graph's "
            f"{what} list sorted by region id?"
        )
    return splits


def stacked_band_cuts(splits: np.ndarray, num_nodes: int, periods: int) -> np.ndarray:
    """Band cuts of the period-stacked node table.

    The batched propagation stacks ``periods`` copies of an ``num_nodes``
    node table (node ``i`` of period ``p`` sits at row ``p * num_nodes + i``)
    and its destination-sorted edge arrays concatenate per-period sorted
    runs with the same offsets -- so they are *globally* sorted and the
    per-period band splits extend to the stack by offsetting each period's
    interior cuts.  Returns ``periods * tiles + 1`` cuts tiling
    ``[0, periods * num_nodes)``.
    """
    interior = np.asarray(splits[:-1], dtype=np.int64)
    offsets = np.arange(periods, dtype=np.int64) * int(num_nodes)
    cuts = (offsets[:, None] + interior[None, :]).ravel()
    return np.concatenate([cuts, [periods * int(num_nodes)]])


def partition_grid(rows: int, cols: int, num_tiles: int) -> GridTilePartition:
    """Tile a ``rows x cols`` region grid into (at most) ``num_tiles`` tiles.

    ``num_tiles`` is factored into a near-square ``tile_rows x tile_cols``
    arrangement matching the grid's aspect ratio; when no factorisation fits
    the grid the largest 1-D split along the longer axis is used, so the
    actual ``partition.num_tiles`` can be smaller than requested (never
    larger).  ``num_tiles=1`` is the identity partition.
    """
    tr, tc = _near_square_factors(int(num_tiles), int(rows), int(cols))
    return GridTilePartition(rows, cols, tr, tc)
