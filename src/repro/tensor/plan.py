"""Trace-and-replay compiled training step (CUDA-graph-style step capture).

The batch training step is shape-static: every epoch re-executes the same
autograd graph on the same-shaped inputs, yet the eager engine rebuilds the
whole tape — Python op dispatch, ``Tensor`` node construction, closure
allocation, topological sort, cache probes — on every batch.  PRs 2 and 5
made the kernels fast and allocation-free, so this bookkeeping is now a
real fraction of the remaining epoch time.

This module records one *executed* batch step into a static
:class:`ExecutionPlan` and replays it per batch with zero tape
construction and zero Python autograd dispatch:

* **Capture.**  :class:`CompiledStep` copies the batch into pinned input
  buffers and runs one ordinary eager step with a :class:`Trace` active.
  Every op site in :mod:`repro.tensor.tensor` / :mod:`repro.tensor.ops`
  emits a *replay thunk* — a closure over the concrete input/output
  ndarrays it just used, re-running exactly the same kernel (numpy ufunc,
  ``SegmentPlan`` reduction, or ``O2_C_KERNELS`` C loop) with ``out=`` its
  original output buffer.  Because each thunk holds references to its
  arrays, the buffer pool can never recycle them: the plan's buffers are
  pinned for its lifetime and no two captured arrays alias.
* **Backward schedule.**  After the forward, the backward driver is run
  once with per-node logging: for each tape node, which slot its gradient
  lives in and how each parent gradient is folded in (init / in-place add
  / owned-accumulator add).  Replay walks the flat schedule calling the
  original backward closures — no topological sort, no dict churn.
* **Replay.**  ``np.copyto`` the new batch into the pinned input buffers,
  run the recorded *bind hooks* (batch-derived index arrays recomputed in
  place + their ``SegmentPlan`` cache entries invalidated), then execute
  the thunk list, the backward schedule, gradient clipping, and the
  optimizer's captured in-place update.

Replay preserves the reference FP op order exactly — every thunk re-runs
the same expressions on the same buffers — so loss curves and parameter
hashes stay bit-identical to eager across the ``O2_FAST_KERNELS`` /
``O2_C_KERNELS`` ablations (pinned by ``tests/test_compiled_step.py``).

Fail-soft by design: ops whose closures capture non-refreshable values
*poison* the trace, a coverage check (nodes created == nodes recorded)
catches any un-instrumented op, and guard checks at replay (batch
shape/dtype signature, kernel-flag triple, parameter identity, trainer
guard) fall back to eager or recapture.  The capture step itself is a
bit-for-bit ordinary training step, so a failed capture costs nothing but
the bookkeeping.

Enabled via ``O2_COMPILE_STEP`` (default on) or
``TrainConfig.compile_step``; see :class:`repro.core.trainer.Trainer`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import cnative as _cnative
from . import pool as _pool
from . import segment as _segment

__all__ = [
    "Trace",
    "ExecutionPlan",
    "CompiledStep",
    "tracing",
    "emit",
    "emit_aux",
    "emit_view",
    "emit_refresh",
    "poison",
    "record_bind",
    "plan_stats",
    "reset_stats",
]

# ----------------------------------------------------------------------
# Module state: the active trace (None when not capturing) + counters.
# ----------------------------------------------------------------------
_TRACE: Optional["Trace"] = None

_stats_lock = threading.Lock()
_captures = 0
_replays = 0
_eager_fallbacks = 0
_guard_evictions = 0
_live_plans = 0
_pinned_bytes = 0
# Captures poisoned because the step routed through the banded sharded
# backward (repro.core.shard_train), which builds data-dependent band
# closures a replay plan cannot pin.  Deliberate and fail-soft: the step
# runs eager, and this counter is the "never a silent double-path" receipt
# surfaced on the memprof ``plan:`` line.
_shard_fallbacks = 0


def plan_stats() -> Dict[str, int]:
    """Process-wide step-compiler counters (consumed by memprof.report)."""
    with _stats_lock:
        return {
            "captures": _captures,
            "replays": _replays,
            "eager_fallbacks": _eager_fallbacks,
            "guard_evictions": _guard_evictions,
            "shard_fallbacks": _shard_fallbacks,
            "live_plans": _live_plans,
            "pinned_bytes": _pinned_bytes,
        }


def reset_stats() -> None:
    global _captures, _replays, _eager_fallbacks, _guard_evictions
    global _shard_fallbacks
    with _stats_lock:
        _captures = _replays = _eager_fallbacks = _guard_evictions = 0
        _shard_fallbacks = 0


def _bump(name: str, delta: int = 1) -> None:
    with _stats_lock:
        globals()["_" + name] = globals()["_" + name] + delta


class Trace:
    """Mutable capture state: thunks, bind hooks, and coverage counters.

    ``nodes_created`` counts autograd nodes built while the trace is
    active (incremented from ``Tensor.__init__``); ``nodes_recorded``
    counts op sites that emitted a replay thunk (or proved their output a
    view).  The two must match for the plan to be complete — a mismatch
    means some op path is not instrumented and the plan is discarded.

    Thread-safe: the threaded per-period capture path appends from worker
    threads.  Per-thread program order plus the pre-fan-out emission of
    shared ancestors makes any append interleaving a valid topological
    order for serial replay.
    """

    __slots__ = (
        "thunks",
        "binds",
        "nodes_created",
        "nodes_recorded",
        "poisoned",
        "poison_reason",
        "lock",
    )

    def __init__(self) -> None:
        self.thunks: List[Callable[[], None]] = []
        self.binds: List[Callable[[], None]] = []
        self.nodes_created = 0
        self.nodes_recorded = 0
        self.poisoned = False
        self.poison_reason = ""
        self.lock = threading.Lock()

    def count_node(self) -> None:
        with self.lock:
            self.nodes_created += 1


def tracing() -> bool:
    """Whether a step capture is currently recording op emissions."""
    return _TRACE is not None


def emit(fn: Callable[[], None]) -> None:
    """Record a replay thunk for the op (counts toward coverage)."""
    t = _TRACE
    if t is None:
        return
    with t.lock:
        t.thunks.append(fn)
        t.nodes_recorded += 1


def emit_aux(fn: Callable[[], None]) -> None:
    """Record an auxiliary thunk (RNG redraw etc.; not an op node)."""
    t = _TRACE
    if t is None:
        return
    with t.lock:
        t.thunks.append(fn)


def emit_view(dst, src, fn: Optional[Callable[[], np.ndarray]] = None) -> None:
    """Record a view-producing op.

    If ``dst`` aliases ``src`` (reshape/transpose/slice views), replay
    needs no thunk: refreshing the base in place refreshes every view.
    Otherwise the op made a copy; ``fn`` recomputes it for a copy thunk.
    """
    t = _TRACE
    if t is None:
        return
    if isinstance(dst, np.ndarray) and np.may_share_memory(dst, src):
        with t.lock:
            t.nodes_recorded += 1
        return
    if fn is None or not isinstance(dst, np.ndarray):
        poison("view output does not alias its source")
        return
    emit(lambda: np.copyto(dst, fn()))


def emit_refresh(dst, fn: Callable[[], np.ndarray]) -> None:
    """Record a recompute-and-copy thunk targeting the captured ``dst``.

    Used by ops whose backward closure reads a captured value array:
    replay must overwrite *that object* in place.  A non-ndarray ``dst``
    (numpy scalar from a 0-d op) cannot be refreshed and poisons the
    trace — the step falls back to eager, fail-soft.
    """
    if not isinstance(dst, np.ndarray):
        poison("op value is a numpy scalar; closure capture not refreshable")
        return
    emit(lambda: np.copyto(dst, fn()))


def poison(reason: str) -> None:
    """Mark the active trace unusable (capture falls back to eager)."""
    t = _TRACE
    if t is not None and not t.poisoned:
        t.poisoned = True
        t.poison_reason = reason


def record_bind(fn: Callable[[], None]) -> None:
    """Register a replay-time input rebind hook (registration order kept).

    Bind hooks recompute batch-derived arrays (pair index arrays, gathered
    commercial rows) *in place* from the plan's pinned input buffers and
    invalidate any ``SegmentPlan`` cached over them.  They run before the
    forward thunks on every replay.
    """
    t = _TRACE
    if t is not None:
        with t.lock:
            t.binds.append(fn)


# ----------------------------------------------------------------------
# Backward schedule: record the driver's walk once, replay it flat.
# ----------------------------------------------------------------------
# Per-parent fold actions, aligned with each closure's returned pairs.
_SKIP, _INIT, _ADD_INPLACE, _ADD_NEW, _ADD_UNPOOLED = 0, 1, 2, 3, 4
# Schedule entry kinds.
_LEAF, _BW = 0, 1


def _record_backward(root) -> Tuple[list, int]:
    """Run the eager backward driver once, logging a flat replay schedule.

    Mirrors ``Tensor.backward`` exactly (same seed, same fold branches,
    same pooled accumulators) while noting, per tape node, the slot its
    gradient occupies and the action applied per returned parent pair.
    Gradients accumulate into the leaves as a side effect — this *is* the
    capture step's backward pass.
    """
    from .tensor import _accumulate_leaf

    pooled = _pool.buffer_pool_enabled()
    seed_owned = False
    if pooled:
        grad = _pool.empty(root.data.shape, tag="seed-grad")
        grad.fill(1.0)
        seed_owned = True
    else:
        grad = np.ones_like(root.data)

    order = root._topological_order()
    slot = {id(node): i for i, node in enumerate(order)}
    tape_bytes = sum(node.data.nbytes for node in order)
    schedule: list = []
    grads: dict = {id(root): grad}
    owned: set = {id(root)} if seed_owned else set()
    for i, node in enumerate(order):
        key = id(node)
        node_grad = grads.pop(key, None)
        owned.discard(key)
        if node_grad is None:
            continue
        if node._backward is None:
            if node.requires_grad:
                _accumulate_leaf(node, node_grad, pooled)
                schedule.append((_LEAF, i, node))
            continue
        acts: list = []
        for parent, parent_grad in node._backward(node_grad):
            if not parent.requires_grad:
                acts.append((_SKIP, 0))
                continue
            pkey = id(parent)
            existing = grads.get(pkey)
            if existing is None:
                grads[pkey] = parent_grad
                acts.append((_INIT, slot[pkey]))
            elif pooled:
                if pkey in owned:
                    np.add(existing, parent_grad, out=existing)
                    acts.append((_ADD_INPLACE, slot[pkey]))
                else:
                    buf = _pool.empty(existing.shape, tag="grad-accum")
                    np.add(existing, parent_grad, out=buf)
                    grads[pkey] = buf
                    owned.add(pkey)
                    acts.append((_ADD_NEW, slot[pkey]))
            else:
                grads[pkey] = existing + parent_grad
                acts.append((_ADD_UNPOOLED, slot[pkey]))
        schedule.append((_BW, i, node._backward, acts))
    return schedule, len(order), tape_bytes


def _replay_backward(plan: "ExecutionPlan") -> None:
    """Walk the recorded schedule: original closures, no graph traversal."""
    from .tensor import _accumulate_leaf

    pooled = _pool.buffer_pool_enabled()
    vals: list = [None] * plan.num_slots
    root_data = plan.root.data
    if pooled:
        seed = _pool.empty(root_data.shape, tag="seed-grad")
        seed.fill(1.0)
    else:
        seed = np.ones_like(root_data)
    vals[0] = seed
    for entry in plan.schedule:
        if entry[0] == _LEAF:
            _, i, node = entry
            g = vals[i]
            vals[i] = None
            _accumulate_leaf(node, g, pooled)
        else:
            _, i, closure, acts = entry
            g = vals[i]
            vals[i] = None
            for (act, pslot), pair in zip(acts, closure(g)):
                if act == _SKIP:
                    continue
                pg = pair[1]
                existing = vals[pslot]
                if act == _INIT:
                    vals[pslot] = pg
                elif act == _ADD_INPLACE:
                    np.add(existing, pg, out=existing)
                elif act == _ADD_NEW:
                    buf = _pool.empty(existing.shape, tag="grad-accum")
                    np.add(existing, pg, out=buf)
                    vals[pslot] = buf
                else:
                    vals[pslot] = existing + pg
        g = None


class ExecutionPlan:
    """One captured batch step: flat thunk list + backward schedule.

    Holds the root loss tensor (keeping the whole captured tape and its
    pinned pooled buffers alive), the pinned batch input buffers, the
    bind hooks, and the flag/guard signatures checked before replay.
    """

    __slots__ = (
        "signature",
        "pairs_buf",
        "targets_buf",
        "binds",
        "thunks",
        "schedule",
        "num_slots",
        "root",
        "flags",
        "guard_sig",
        "param_data",
        "pinned_bytes",
    )

    def __init__(
        self,
        signature,
        pairs_buf: np.ndarray,
        targets_buf: np.ndarray,
        binds,
        thunks,
        schedule,
        num_slots: int,
        root,
        flags,
        guard_sig,
        param_data,
        pinned_bytes: int,
    ) -> None:
        self.signature = signature
        self.pairs_buf = pairs_buf
        self.targets_buf = targets_buf
        self.binds = binds
        self.thunks = thunks
        self.schedule = schedule
        self.num_slots = num_slots
        self.root = root
        self.flags = flags
        self.guard_sig = guard_sig
        self.param_data = param_data
        self.pinned_bytes = pinned_bytes


def _kernel_flags() -> tuple:
    """The kernel-dispatch switches a captured tape is specialised on."""
    return (
        _pool.buffer_pool_enabled(),
        _segment.fast_kernels_enabled(),
        _cnative.available(),
    )


class CompiledStep:
    """Capture-once / replay-many driver for the batch training step.

    ``step(pairs, targets)`` returns the batch loss as a float, or
    ``None`` when the caller should run the step eagerly (capture failed
    for this signature, or the plan table overflowed).  The first call
    per batch signature performs an ordinary eager step under capture —
    so every call trains the model; compilation is free-running and
    fail-soft.

    Guards, all fail-soft: the batch shape/dtype signature keys the plan
    table; the kernel-flag triple and the trainer-supplied ``guard_fn``
    signature must match capture (else the plan is evicted and
    recaptured); every parameter's ``.data`` must be the captured array
    object (in-place optimizers preserve this; a ``load_state_dict``
    rebind evicts).
    """

    def __init__(
        self,
        loss_fn: Callable[[np.ndarray, np.ndarray], object],
        parameters,
        optimizer,
        clip_fn: Optional[Callable[[], object]] = None,
        guard_fn: Optional[Callable[[], tuple]] = None,
        max_plans: int = 4,
    ) -> None:
        self.loss_fn = loss_fn
        self.parameters = list(parameters)
        self.optimizer = optimizer
        self.clip_fn = clip_fn
        self.guard_fn = guard_fn
        self.max_plans = max_plans
        self._plans: Dict[tuple, ExecutionPlan] = {}
        self._failed: set = set()
        self._step_fn = None  # captured in-place optimizer update

    # -- public -------------------------------------------------------
    def step(self, pairs: np.ndarray, targets: np.ndarray) -> Optional[float]:
        pairs = np.asarray(pairs)
        targets = np.asarray(targets)
        sig = (pairs.shape, pairs.dtype.str, targets.shape, targets.dtype.str)
        if sig in self._failed:
            _bump("eager_fallbacks")
            return None
        plan = self._plans.get(sig)
        if plan is not None:
            if self._guards_ok(plan):
                return self._replay(plan, pairs, targets)
            # Stale plan (flags flipped, params rebound): evict and
            # recapture under the current configuration.
            self._evict(plan, sig)
            _bump("guard_evictions")
        if len(self._plans) >= self.max_plans:
            _bump("eager_fallbacks")
            return None
        return self._capture(sig, pairs, targets)

    def stats(self) -> Dict[str, int]:
        out = plan_stats()
        out["plans"] = len(self._plans)
        out["failed_signatures"] = len(self._failed)
        return out

    def close(self) -> None:
        """Drop all plans (releases the pinned tapes and buffers)."""
        for sig in list(self._plans):
            self._evict(self._plans[sig], sig)

    # -- internals ----------------------------------------------------
    def _evict(self, plan: ExecutionPlan, sig) -> None:
        self._plans.pop(sig, None)
        _bump("live_plans", -1)
        _bump("pinned_bytes", -plan.pinned_bytes)

    def _guards_ok(self, plan: ExecutionPlan) -> bool:
        if plan.flags != _kernel_flags():
            return False
        if self.guard_fn is not None and self.guard_fn() != plan.guard_sig:
            return False
        for p, d in plan.param_data:
            if p.data is not d:
                return False
        return True

    def _capture(self, sig, pairs: np.ndarray, targets: np.ndarray):
        """Run one real eager step under trace; finalize a plan if clean."""
        global _TRACE
        step_fn = self._step_fn
        if step_fn is None:
            step_fn = self._step_fn = self.optimizer.capture_step()
        if step_fn is None:
            # Optimizer has no in-place captured update: its reference
            # step rebinds parameter arrays, which no plan can survive.
            self._failed.add(sig)
            return None

        # Pin the batch: all capture-time caches key on these objects, and
        # replay refreshes them in place.  The copies must be private --
        # ``ascontiguousarray`` would return the caller's own array when it
        # is already contiguous, and replaying a later batch would then
        # silently overwrite the caller's cached batch data.
        pairs_buf = np.array(pairs, order="C", copy=True)
        targets_buf = np.array(targets, order="C", copy=True)
        guard_sig = self.guard_fn() if self.guard_fn is not None else None
        flags = _kernel_flags()

        self.optimizer.zero_grad()
        trace = Trace()
        _TRACE = trace
        try:
            root = self.loss_fn(pairs_buf, targets_buf)
        finally:
            _TRACE = None

        ok = (
            not trace.poisoned
            and trace.nodes_created == trace.nodes_recorded
            and getattr(root, "_backward", None) is not None
        )
        if ok:
            schedule, num_slots, tape_bytes = _record_backward(root)
        else:
            root.backward(free_graph=True)
        if self.clip_fn is not None:
            self.clip_fn()
        step_fn()
        loss = float(root.data)
        if not ok:
            self._failed.add(sig)
            _bump("eager_fallbacks")
            return loss

        pinned = tape_bytes + pairs_buf.nbytes + targets_buf.nbytes
        plan = ExecutionPlan(
            signature=sig,
            pairs_buf=pairs_buf,
            targets_buf=targets_buf,
            binds=tuple(trace.binds),
            thunks=tuple(trace.thunks),
            schedule=schedule,
            num_slots=num_slots,
            root=root,
            flags=flags,
            guard_sig=guard_sig,
            param_data=tuple((p, p.data) for p in self.parameters),
            pinned_bytes=pinned,
        )
        self._plans[sig] = plan
        _bump("captures")
        _bump("live_plans")
        _bump("pinned_bytes", plan.pinned_bytes)
        return loss

    def _replay(self, plan: ExecutionPlan, pairs, targets) -> float:
        # The bind hooks re-derive batch-dependent index arrays (and
        # invalidate the segment-plan caches built on them), which is the
        # per-replay analogue of the eager path's identity-keyed cache
        # misses.  When the incoming batch is byte-identical to what is
        # already pinned -- the full-batch regime, where the same arrays
        # arrive every epoch -- all of that would recompute the values
        # already sitting there, so skip it (eager gets the same effect
        # from its identity caches).
        if not (
            np.array_equal(plan.pairs_buf, pairs)
            and np.array_equal(plan.targets_buf, targets)
        ):
            np.copyto(plan.pairs_buf, pairs)
            np.copyto(plan.targets_buf, targets)
            for fn in plan.binds:
                fn()
        self.optimizer.zero_grad()
        for fn in plan.thunks:
            fn()
        _replay_backward(plan)
        if self.clip_fn is not None:
            self.clip_fn()
        self._step_fn()
        _bump("replays")
        return float(plan.root.data)
