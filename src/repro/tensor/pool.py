"""Pooled autograd buffers: size-bucketed, dtype-aware free lists.

Training on the numpy autograd engine allocates a fresh array for nearly
every forward op, gradient product and accumulation.  At scale the epoch is
allocator- and bandwidth-bound: each multi-megabyte temporary costs a
malloc fit (or an mmap plus kernel page-zeroing on first touch) and evicts
warm cache lines.  This module keeps retired buffers on per-size free
lists so the same hot arrays are recycled step after step -- the numpy
analogue of a caching GPU allocator.

Design
------
* **Buckets.**  Free blocks are raw byte buffers keyed by capacity.
  :meth:`BufferPool.borrow` takes the best-fitting idle block: exact
  capacity when the same shape cycles (the common case step-over-step in
  a training loop, where every gradient has the shape of its op's
  output), otherwise the smallest idle block within ``_FIT_SLACK``x of
  the request, viewed through ``np.frombuffer(..., count=...)``.
  Cross-capacity fitting is what keeps the footprint near the maximum
  *live* bytes rather than the sum of size classes: the tape's edge and
  gradient buffers differ in size across relations and periods, and with
  exact-size buckets each class would pin its own block even though the
  classes are live at different points of the step -- precisely the
  cross-size reuse glibc's free lists provide on the reference path.
* **Storage.**  Blocks are flat ndarrays from numpy's own allocator, so
  pooled memory lives in the same malloc arena as every other array --
  contiguous, hugepage-friendly, and uninitialised on miss -- rather than
  in scattered per-block mappings.
* **Lifetimes.**  Each borrow wraps its block's ``memoryview`` in a fresh
  ``np.frombuffer`` array and hands out a view of that.  Because the
  wrapper's base is a non-ndarray, numpy's view-base collapsing stops *at
  the wrapper*: every view derived from the borrowed array -- reshapes,
  slices, column views escaping into autograd closures -- keeps the
  wrapper alive.  A weakref callback on the wrapper therefore fires
  exactly when the last view (not merely the first) dies, and only then
  returns the block to its bucket.
  Ownership follows ordinary CPython reference counting: a buffer can
  never be recycled while any tensor, view or closure can still reach it,
  and dropping the autograd tape (see ``Tensor.backward(free_graph=True)``)
  releases its buffers immediately, with no explicit bookkeeping at the
  call sites.
* **Thresholds.**  Requests below ``O2_POOL_MIN_BYTES`` (default 4 KiB)
  bypass the pool -- for small arrays ``np.empty`` is cheaper than the
  bookkeeping.  Idle (free-listed) memory is capped at ``O2_POOL_MAX_MB``
  (default 512); recycled buffers beyond the cap are dropped.  Blocks
  whose size class has fallen out of use (e.g. after a batch-size change)
  are trimmed generationally: any block idle for more than
  ``O2_POOL_TRIM_AGE`` borrows (default 4096) is released on the next
  sweep, so a workload shift does not leave a dead reservoir pinned.
  Misses additionally *reclaim before growing*: when no block of the
  requested size is idle, the pool frees stale idle blocks (oldest first,
  sparing anything recycled within the last few hundred borrows) to cover
  the new allocation, so a phase change -- minibatch steps giving way to a
  full-batch pass -- recycles the old phase's reservoir into the new
  tape's storage instead of holding both, and peak footprint tracks the
  maximum *live* bytes rather than the sum over phases.

The module-level switch (env ``O2_BUFFER_POOL``, default on) gates every
caller: with the pool disabled, :func:`out_buffer` returns ``None`` so op
code falls through to numpy's own allocation (``out=None``), restoring the
reference allocation path bit for bit and byte for byte.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left, insort
from typing import Dict, List, Optional

import numpy as np

from .. import runtime as _runtime
from . import memprof as _memprof

__all__ = [
    "BufferPool",
    "global_pool",
    "buffer_pool_enabled",
    "set_buffer_pool",
    "use_buffer_pool",
    "empty",
    "zeros",
    "out_buffer",
    "take_rows",
]


_MIN_BYTES = _runtime.env_int("O2_POOL_MIN_BYTES", 4096)
_MAX_IDLE_BYTES = _runtime.env_int("O2_POOL_MAX_MB", 512) * (1 << 20)
_TRIM_AGE = _runtime.env_int("O2_POOL_TRIM_AGE", 4096)
_TRIM_EVERY = 256  # recycles between trim sweeps
_RECLAIM_GUARD = 2048  # borrows a block must sit idle before reclaim-on-miss:
# larger than one training step's borrow span, so the cycling working set
# (retired late in backward, re-borrowed mid-next-forward) is never evicted.
_FIT_SLACK = 4  # a block may serve requests down to 1/_FIT_SLACK of its
# capacity; best-fit keeps the typical per-block waste far below that bound.
# Swept on the batch-128 training leg: 2 leaves ~13 MB of near-miss sizes
# unshared, while unbounded fitting inflates peak live capacity ~30 MB by
# parking small borrows in huge blocks; 4 sits at the footprint minimum.
_F64 = np.dtype(np.float64)


class BufferPool:
    """Free lists of raw byte blocks, bucketed by capacity, best-fit."""

    def __init__(
        self,
        max_idle_bytes: int = _MAX_IDLE_BYTES,
        min_bytes: int = _MIN_BYTES,
        trim_age: int = _TRIM_AGE,
    ) -> None:
        self._lock = threading.RLock()  # reentrant: weakref callbacks can
        # fire inside a locked region when a cyclic GC pass collects a view.
        # capacity bytes -> list of (flat uint8 storage, tick when recycled).
        self._buckets: Dict[int, List[tuple]] = {}
        self._caps: List[int] = []  # sorted keys of _buckets, for best-fit
        # id(wrapper) -> (weakref-to-wrapper, storage block).
        # Holds the only strong reference to the weakref object, so popping
        # an entry also disarms its callback.
        self._live: Dict[int, tuple] = {}
        self.max_idle_bytes = int(max_idle_bytes)
        self.min_bytes = int(min_bytes)
        self.trim_age = int(trim_age)
        self.idle_bytes = 0
        self.live_bytes = 0  # capacity of currently borrowed blocks
        self.peak_live_bytes = 0
        self.hits = 0
        self.fit_hits = 0  # subset of hits served by a larger capacity
        self.misses = 0
        self.bypassed = 0
        self.recycled = 0
        self.evicted = 0
        self._tick = 0
        self._trim_countdown = _TRIM_EVERY

    # ------------------------------------------------------------------
    # Borrow / release
    # ------------------------------------------------------------------
    def borrow(self, shape, dtype=np.float64) -> np.ndarray:
        """A writable array of ``shape``; contents are uninitialised.

        The array is a view of a pooled storage block and returns to the
        free list automatically when the last reference to it *or any view
        derived from it* dies (or earlier via :meth:`release`).  Requests
        below ``min_bytes`` fall through to a plain ``np.empty``.
        """
        dt = _F64 if dtype is np.float64 or dtype is _F64 else np.dtype(dtype)
        if type(shape) is not tuple:
            shape = (shape,) if isinstance(shape, int) else tuple(shape)
        count = 1
        for n in shape:
            count *= int(n)
        nbytes = count * dt.itemsize
        if nbytes < self.min_bytes:
            self.bypassed += 1
            return np.empty(shape, dtype=dt)

        with self._lock:
            self._tick += 1
            storage = None
            caps = self._caps
            i = bisect_left(caps, nbytes)
            if i < len(caps) and caps[i] <= nbytes * _FIT_SLACK:
                # Best fit: the smallest idle block that can hold the
                # request, exact capacity included.
                cap = caps[i]
                stack = self._buckets[cap]
                storage = stack.pop()[0]
                if not stack:
                    del self._buckets[cap]
                    caps.pop(i)
                self.hits += 1
                if cap != nbytes:
                    self.fit_hits += 1
                self.idle_bytes -= cap
            else:
                self.misses += 1
                # Reclaim-before-grow: a miss means the working set has
                # shifted (new phase, new batch shape).  Free stale idle
                # blocks to cover the new allocation before asking the OS
                # for more, so the pool's footprint tracks max live bytes
                # instead of accumulating one reservoir per phase.
                if self.idle_bytes:
                    self._reclaim_locked(nbytes)
        if storage is None:
            storage = np.empty(nbytes, dtype=np.uint8)

        # The wrapper is the lifetime sentinel: its base (a memoryview of
        # the storage array) is not an ndarray, so numpy's base collapsing
        # makes every view derived from ``view`` point at ``wrapper`` -- the
        # weakref below fires only when the last of them dies.
        wrapper = np.frombuffer(storage.data, dtype=dt, count=count)
        view = wrapper.reshape(shape)
        idw = id(wrapper)

        def _on_death(_ref, self=self, idw=idw, storage=storage):
            self._finalize(idw, storage)

        with self._lock:
            self._live[idw] = (weakref.ref(wrapper, _on_death), storage)
            self.live_bytes += storage.nbytes
            if self.live_bytes > self.peak_live_bytes:
                self.peak_live_bytes = self.live_bytes
        return view

    def _finalize(self, idw: int, storage: np.ndarray) -> None:
        with self._lock:
            if self._live.pop(idw, None) is not None:
                self._recycle_locked(storage)

    def _recycle_locked(self, storage: np.ndarray) -> None:
        self.recycled += 1
        cap = storage.nbytes
        self.live_bytes -= cap
        if self.idle_bytes + cap > self.max_idle_bytes:
            self.evicted += 1
            return
        stack = self._buckets.get(cap)
        if stack is None:
            self._buckets[cap] = [(storage, self._tick)]
            insort(self._caps, cap)
        else:
            stack.append((storage, self._tick))
        self.idle_bytes += cap
        self._trim_countdown -= 1
        if self._trim_countdown <= 0:
            self._trim_countdown = _TRIM_EVERY
            self._trim_locked()

    def _reclaim_locked(self, need_bytes: int) -> None:
        # Evict oldest idle blocks until ``need_bytes`` are freed, but never
        # touch recently recycled ones (they are the hot mid-backward
        # frontier about to be re-borrowed).  Lists append in tick order, so
        # each bucket's head is its oldest block.
        guard = self._tick - _RECLAIM_GUARD
        freed = 0
        dirty = False
        for key in list(self._buckets):
            stack = self._buckets[key]
            drop = 0
            for storage, tick in stack:
                if tick >= guard or freed >= need_bytes:
                    break
                freed += storage.nbytes
                self.idle_bytes -= storage.nbytes
                self.evicted += 1
                drop += 1
            if drop:
                del stack[:drop]
                if not stack:
                    del self._buckets[key]
                    dirty = True
            if freed >= need_bytes:
                break
        if dirty:
            self._caps = sorted(self._buckets)

    def _trim_locked(self) -> None:
        # Drop blocks that have sat idle for more than ``trim_age`` borrows:
        # their size class has fallen out of the working set (a batch-size
        # or phase change), and keeping them pins a dead reservoir.
        horizon = self._tick - self.trim_age
        dirty = False
        for key in list(self._buckets):
            kept = []
            for storage, tick in self._buckets[key]:
                if tick >= horizon:
                    kept.append((storage, tick))
                else:
                    self.idle_bytes -= storage.nbytes
                    self.evicted += 1
            if kept:
                self._buckets[key] = kept
            else:
                del self._buckets[key]
                dirty = True
        if dirty:
            self._caps = sorted(self._buckets)

    def release(self, array: np.ndarray) -> bool:
        """Return a borrowed array's block to the pool now.

        The caller promises no other reference to the block (via ``array``
        or any other view of it) remains.  Returns ``False`` when the
        array is not pool-owned.
        """
        base = array.base
        if base is None:
            return False
        with self._lock:
            entry = self._live.get(id(base))
            if entry is None or entry[0]() is not base:
                return False
            del self._live[id(base)]
            self._recycle_locked(entry[1])
            return True

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` views a currently borrowed block of this pool."""
        base = array.base
        if base is None:
            return False
        with self._lock:
            entry = self._live.get(id(base))
            return entry is not None and entry[0]() is base

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def outstanding(self) -> int:
        """Number of borrowed views not yet returned."""
        with self._lock:
            return len(self._live)

    def stats(self) -> dict:
        with self._lock:
            requests = self.hits + self.misses
            return {
                "hits": self.hits,
                "fit_hits": self.fit_hits,
                "misses": self.misses,
                "bypassed": self.bypassed,
                "recycled": self.recycled,
                "evicted": self.evicted,
                "hit_rate": self.hits / requests if requests else 0.0,
                "outstanding": len(self._live),
                "live_bytes": self.live_bytes,
                "peak_live_bytes": self.peak_live_bytes,
                "idle_bytes": self.idle_bytes,
                "idle_buffers": sum(len(v) for v in self._buckets.values()),
                "max_idle_bytes": self.max_idle_bytes,
                "min_bytes": self.min_bytes,
            }

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = self.fit_hits = self.misses = self.bypassed = 0
            self.recycled = self.evicted = 0

    def clear(self) -> None:
        """Drop all idle buffers (outstanding views are unaffected)."""
        with self._lock:
            self._buckets.clear()
            self._caps.clear()
            self.idle_bytes = 0


_pool = BufferPool()


def global_pool() -> BufferPool:
    """The process-wide pool used by the tensor ops."""
    return _pool


# ----------------------------------------------------------------------
# Enable switch (mirrors segment.set_fast_kernels).
# ----------------------------------------------------------------------
_enabled = _runtime.env_flag("O2_BUFFER_POOL", True)


def buffer_pool_enabled() -> bool:
    """Whether ops borrow from the pool (env ``O2_BUFFER_POOL``)."""
    return _enabled


def set_buffer_pool(enabled: bool) -> bool:
    """Toggle the pool; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


class use_buffer_pool:
    """Context manager pinning the pool switch (for tests/benchmarks)."""

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._previous: Optional[bool] = None

    def __enter__(self) -> "use_buffer_pool":
        self._previous = set_buffer_pool(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_buffer_pool(self._previous)


# ----------------------------------------------------------------------
# Allocation entry points used by the op code.
# ----------------------------------------------------------------------

def _record(tag: Optional[str], shape, dtype) -> None:
    if _memprof.enabled():
        count = 1
        for n in shape:
            count *= int(n)
        _memprof.record_alloc(tag or "untagged", count * np.dtype(dtype).itemsize)


def out_buffer(shape, dtype=np.float64, tag: Optional[str] = None):
    """A pooled buffer for a ufunc ``out=`` argument, or ``None``.

    Returns ``None`` when the pool is disabled, which makes
    ``np.add(a, b, out=out_buffer(...))`` collapse to numpy's own fresh
    allocation -- the reference path, bit for bit.
    """
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    _record(tag, shape, dtype)
    if not _enabled:
        return None
    return _pool.borrow(shape, dtype)


def empty(shape, dtype=np.float64, tag: Optional[str] = None) -> np.ndarray:
    """Like ``np.empty`` but pooled when the pool is enabled."""
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    _record(tag, shape, dtype)
    if not _enabled:
        return np.empty(shape, dtype=dtype)
    return _pool.borrow(shape, dtype)


def zeros(shape, dtype=np.float64, tag: Optional[str] = None) -> np.ndarray:
    """Like ``np.zeros`` but pooled (borrow + fill) when enabled."""
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    _record(tag, shape, dtype)
    if not _enabled:
        return np.zeros(shape, dtype=dtype)
    out = _pool.borrow(shape, dtype)
    out.fill(0.0)
    return out


def take_rows(a: np.ndarray, indices: np.ndarray, tag: Optional[str] = None) -> np.ndarray:
    """``a[indices]`` along axis 0, gathered into a pooled buffer.

    The pooled path uses ``np.take(..., mode="clip")`` because ``out=`` is
    buffered (an extra full copy) under the default ``mode="raise"``; the
    callers all pass pre-validated indices, for which clip and raise are
    value-identical.  With the pool disabled this is plain fancy indexing
    -- the reference path, allocation and bounds-checking included.
    """
    buf = out_buffer(indices.shape + a.shape[1:], a.dtype, tag)
    if buf is None:
        return a[indices]
    return np.take(a, indices, axis=0, out=buf, mode="clip")
