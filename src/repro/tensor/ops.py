"""Functional operations on :class:`~repro.tensor.Tensor`.

Besides the usual dense ops (:func:`concat`, :func:`softmax`, ...) this
module provides the *segment* operations that make graph neural networks
practical on a numpy backend:

* :func:`gather_rows` — select node rows by edge endpoint indices;
* :func:`segment_sum` / :func:`segment_mean` — scatter-add edge messages back
  to node slots;
* :func:`segment_softmax` — softmax of attention scores *within* each target
  node's neighbourhood (variable neighbourhood sizes, no padding).

All segment ops take an integer ``segment_ids`` array aligned with axis 0 of
the data and a ``num_segments`` total, mirroring the message-passing pattern
``messages = gather_rows(h, src); out = segment_sum(messages, dst, n)``.

Each segment op has two implementations: the *reference* kernels built on
``np.add.at`` / ``np.maximum.at`` (simple, obviously correct, slow) and a
fast path that reduces over a cached :class:`~repro.tensor.segment.SegmentPlan`
with ``ufunc.reduceat`` (see :mod:`repro.tensor.segment`).  The dispatch is
controlled by :func:`repro.tensor.segment.set_fast_kernels`; the
``*_reference`` functions stay importable so tests and benchmarks can pin
the fast path against them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import cnative as _cnative
from . import plan as _plan
from . import pool as _pool
from . import segment as _segment
from .segment import get_plan
from .tensor import ArrayLike, Tensor, as_tensor, unbroadcast

# Row-block size of :func:`matmul_blocked`.  BLAS results vary *bitwise*
# with the row count M (kernel/blocking selection changes the FMA
# accumulation order), so an edge-count-sized matmul computed over a row
# subset does not reproduce the full-matrix bytes.  Evaluating in fixed
# blocks anchored at absolute row offsets makes every output row a pure
# function of its own block's input bytes -- any process recomputing the
# covering blocks of a row range (repro.core.shard workers) gets results
# bit-identical to the full single-process evaluation.
MATMUL_BLOCK = 4096


def matmul_blocked(a: np.ndarray, w: np.ndarray, out=None) -> np.ndarray:
    """``a @ w`` evaluated in fixed :data:`MATMUL_BLOCK`-row blocks.

    Block ``k`` covers absolute rows ``[k*B, min((k+1)*B, n))``; results are
    independent of buffer alignment and of which other blocks are computed
    alongside, which is the reproducibility contract sharded propagation
    relies on.  ``out=None`` allocates (matching ``np.matmul``'s dtype
    promotion); a pooled buffer may be passed through.
    """
    n = a.shape[0]
    if n <= MATMUL_BLOCK:
        return np.matmul(a, w, out=out)
    if out is None:
        out = np.empty((n, w.shape[1]), dtype=np.result_type(a, w))
    for start in range(0, n, MATMUL_BLOCK):
        stop = min(start + MATMUL_BLOCK, n)
        np.matmul(a[start:stop], w, out=out[start:stop])
    return out


def matmul_grad_blocked(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a.T @ b`` as a strictly ascending sum of per-block partials.

    The weight-gradient counterpart of :func:`matmul_blocked`: block ``k``
    contributes ``a[kB:kE].T @ b[kB:kE]`` and the partials are accumulated
    in ascending block order.  Any executor that computes the same per-block
    partials -- a sharded backward summing its bands' contributions
    master-side in block order -- reproduces the result bit-for-bit.
    Identical to ``a.T @ b`` below :data:`MATMUL_BLOCK` rows.
    """
    n = a.shape[0]
    if n <= MATMUL_BLOCK:
        return a.T @ b
    out = None
    for start in range(0, n, MATMUL_BLOCK):
        stop = min(start + MATMUL_BLOCK, n)
        partial = np.matmul(a[start:stop].T, b[start:stop])
        out = partial if out is None else np.add(out, partial, out=out)
    return out


def rows_matmul(a: ArrayLike, w: ArrayLike) -> Tensor:
    """Differentiable ``a @ w`` with a :func:`matmul_blocked` forward.

    Used for edge-count-sized projections (edge attributes through the
    fusion weight's edge block) so that sharded workers can rebuild any
    block-aligned row range of the value bit-for-bit without the master
    shipping the (E, F) product through the feature arena.  Identical to
    ``a @ w`` below :data:`MATMUL_BLOCK` rows.
    """
    t_a = as_tensor(a)
    t_w = as_tensor(w)
    value = matmul_blocked(
        t_a.data,
        t_w.data,
        out=_pool.out_buffer(
            (t_a.shape[0], t_w.shape[1]), t_a.data.dtype, tag="rows-matmul"
        ),
    )

    def backward(grad: np.ndarray):
        out = []
        if t_a.requires_grad:
            g_a = np.matmul(
                grad,
                t_w.data.T,
                out=_pool.out_buffer(t_a.shape, t_a.data.dtype, tag="rows-mm-ga"),
            )
            out.append((t_a, g_a))
        if t_w.requires_grad:
            out.append((t_w, matmul_grad_blocked(t_a.data, grad)))
        return out

    result = Tensor(value, parents=(t_a, t_w), backward=backward)
    if _plan._TRACE is not None:
        x, y, dst = t_a.data, t_w.data, result.data

        def _replay_rows_matmul():
            matmul_blocked(x, y, out=dst)

        _plan.emit(_replay_rows_matmul)
    return result


def concat(tensors: Sequence[ArrayLike], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    ts = [as_tensor(t) for t in tensors]
    datas = [t.data for t in ts]
    out = None
    if datas and all(d.dtype == datas[0].dtype for d in datas[1:]):
        shape = list(datas[0].shape)
        ax = axis if axis >= 0 else len(shape) + axis
        shape[ax] = sum(d.shape[ax] for d in datas)
        out = _pool.out_buffer(shape, datas[0].dtype, tag="concat")
    data = np.concatenate(datas, axis=axis, out=out)
    sizes = [t.data.shape[axis] for t in ts]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        pieces = np.split(grad, splits, axis=axis)
        return tuple(zip(ts, pieces))

    result = Tensor(data, parents=tuple(ts), backward=backward)
    if _plan._TRACE is not None:
        dst = result.data
        _plan.emit(lambda: np.concatenate(datas, axis=axis, out=dst))
    return result


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    ts = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in ts], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(ts), axis=axis)
        return tuple(
            (t, np.squeeze(piece, axis=axis)) for t, piece in zip(ts, pieces)
        )

    result = Tensor(data, parents=tuple(ts), backward=backward)
    if _plan._TRACE is not None:
        srcs = [t.data for t in ts]
        dst = result.data
        _plan.emit(lambda: np.stack(srcs, axis=axis, out=dst))
    return result


def gather_rows(tensor: ArrayLike, indices: np.ndarray) -> Tensor:
    """Select rows ``tensor[indices]`` along axis 0 (differentiable).

    ``indices`` may repeat; the backward pass scatter-adds into the source
    (via a cached :class:`SegmentPlan` on the fast path).
    """
    t = as_tensor(tensor)
    idx = np.asarray(indices, dtype=np.int64)
    shape = t.shape

    def backward(grad: np.ndarray):
        if _segment.fast_kernels_enabled():
            return ((t, get_plan(idx, shape[0]).sum(grad)),)
        full = _pool.zeros(shape, tag="gather-bwd")
        np.add.at(full, idx, grad)
        return ((t, full),)

    result = Tensor(
        _pool.take_rows(t.data, idx, tag="gather"), parents=(t,), backward=backward
    )
    if _plan._TRACE is not None:
        # ``idx`` is the caller's int64 array object (asarray is a no-copy
        # for int64 input): batch-dependent index arrays are refreshed in
        # place by the plan's bind hooks before this thunk runs, and the
        # backward closure's get_plan() rebuilds over the new contents.
        src, dst = t.data, result.data
        _plan.emit(lambda: np.take(src, idx, axis=0, out=dst, mode="clip"))
    return result


def gather_rows_reference(tensor: ArrayLike, indices: np.ndarray) -> Tensor:
    """:func:`gather_rows` pinned to the ``np.add.at`` scatter backward."""
    t = as_tensor(tensor)
    idx = np.asarray(indices, dtype=np.int64)
    shape = t.shape

    def backward(grad: np.ndarray):
        full = np.zeros(shape, dtype=np.float64)
        np.add.at(full, idx, grad)
        return ((t, full),)

    result = Tensor(t.data[idx], parents=(t,), backward=backward)
    if _plan._TRACE is not None:
        src, dst = t.data, result.data
        _plan.emit(lambda: np.copyto(dst, src[idx]))
    return result


def _check_segment_lengths(ids: np.ndarray, t: Tensor) -> None:
    if ids.shape[0] != t.shape[0]:
        raise ValueError(
            f"segment_ids length {ids.shape[0]} does not match data rows "
            f"{t.shape[0]}"
        )


def segment_sum(data: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``data`` into ``num_segments`` buckets by ``segment_ids``."""
    t = as_tensor(data)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    if _segment.fast_kernels_enabled():
        result = get_plan(ids, num_segments).sum(t.data)
    else:
        result = _pool.zeros((num_segments,) + t.shape[1:], tag="segsum")
        np.add.at(result, ids, t.data)

    def backward(grad: np.ndarray):
        return ((t, _pool.take_rows(grad, ids, tag="segsum-bwd")),)

    out = Tensor(result, parents=(t,), backward=backward)
    if _plan._TRACE is not None:
        src, dst = t.data, out.data
        if _segment.fast_kernels_enabled():
            plan = get_plan(ids, num_segments)
            _plan.emit(lambda: np.copyto(dst, plan.sum(src)))
        else:

            def _replay_segsum():
                dst.fill(0.0)
                np.add.at(dst, ids, src)

            _plan.emit(_replay_segsum)
    return out


def segment_sum_reference(
    data: ArrayLike, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """:func:`segment_sum` pinned to the ``np.add.at`` kernel."""
    t = as_tensor(data)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    result = np.zeros((num_segments,) + t.shape[1:], dtype=np.float64)
    np.add.at(result, ids, t.data)

    def backward(grad: np.ndarray):
        return ((t, grad[ids]),)

    out = Tensor(result, parents=(t,), backward=backward)
    if _plan._TRACE is not None:
        src, dst = t.data, out.data

        def _replay_segsum_ref():
            dst.fill(0.0)
            np.add.at(dst, ids, src)

        _plan.emit(_replay_segsum_ref)
    return out


def segment_counts(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows mapped to each segment (plain numpy, no autograd)."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    if _segment.fast_kernels_enabled():
        return get_plan(ids, num_segments).counts.astype(np.float64)
    return np.bincount(ids, minlength=num_segments).astype(np.float64)


def segment_mean(data: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zeros."""
    t = as_tensor(data)
    counts = segment_counts(segment_ids, num_segments)
    denom = np.maximum(counts, 1.0)
    summed = segment_sum(t, segment_ids, num_segments)
    if summed.data.ndim > 1:
        denom = denom.reshape((-1,) + (1,) * (summed.data.ndim - 1))
    return summed * Tensor(1.0 / denom)


def segment_softmax(
    scores: ArrayLike, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """Softmax of ``scores`` computed independently within each segment.

    ``scores`` has shape ``(E,)`` or ``(E, H)`` (per-head scores); the softmax
    normalises over all rows sharing a segment id, per trailing column.
    Numerically stabilised by subtracting the per-segment maximum.
    """
    if not _segment.fast_kernels_enabled():
        return segment_softmax_reference(scores, segment_ids, num_segments)
    t = as_tensor(scores)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    data = t.data
    squeeze = False
    if data.ndim == 1:
        data = data[:, None]
        squeeze = True

    # One sort shared by the max, the sum and the backward reduction.
    # ``pooled`` gates the in-place reuse of fresh pool buffers; with the
    # pool off every ``out=None`` collapses to the reference allocations.
    pooled = _pool.buffer_pool_enabled()
    plan = get_plan(ids, num_segments)
    sorted_scores = plan.sort(data)
    seg_max = plan.max_sorted(sorted_scores)  # (runs, H)
    spread_max = plan.spread_runs(seg_max)
    # spread_max is a fresh per-call buffer (never an aliased input), so the
    # shift and exp may overwrite it in place.
    shifted = np.subtract(sorted_scores, spread_max, out=spread_max if pooled else None)
    exp = np.exp(shifted, out=shifted if pooled else None)
    seg_sum = plan.sum_sorted(exp)
    spread_sum = plan.spread_runs(seg_sum)
    weights_sorted = np.divide(exp, spread_sum, out=exp if pooled else None)
    weights = plan.unsort(weights_sorted)
    value = weights[:, 0] if squeeze else weights

    def backward(grad: np.ndarray):
        g = grad[:, None] if squeeze else grad
        # d softmax: w * (g - sum_j w_j g_j) within each segment.
        sorted_g = plan.sort(g)
        prod = np.multiply(
            weights_sorted,
            sorted_g,
            out=_pool.out_buffer(sorted_g.shape, sorted_g.dtype, tag="segsm-bwd"),
        )
        weighted = plan.sum_sorted(prod)
        spread = plan.unsort(plan.spread_runs(weighted))
        diff = np.subtract(g, spread, out=spread if pooled else None)
        local = np.multiply(weights, diff, out=diff if pooled else None)
        return ((t, local[:, 0] if squeeze else local),)

    out = Tensor(value, parents=(t,), backward=backward)
    if _plan._TRACE is not None:
        # ``data`` is a view of (or is) the parent's buffer, refreshed by
        # the parent's thunk; ``weights_sorted``/``weights`` are what the
        # backward closure and the output (a view of ``weights``) read.
        def _replay_segsm():
            ss = plan.sort(data)
            sm = plan.spread_runs(plan.max_sorted(ss))
            sh = np.subtract(ss, sm, out=sm if pooled else None)
            ex = np.exp(sh, out=sh if pooled else None)
            sps = plan.spread_runs(plan.sum_sorted(ex))
            ws = np.divide(ex, sps, out=ex if pooled else None)
            np.copyto(weights_sorted, ws)
            if weights is not weights_sorted:
                np.copyto(weights, plan.unsort(ws))

        _plan.emit(_replay_segsm)
    return out


def segment_softmax_reference(
    scores: ArrayLike, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """:func:`segment_softmax` pinned to the ``ufunc.at`` kernels."""
    t = as_tensor(scores)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    data = t.data
    squeeze = False
    if data.ndim == 1:
        data = data[:, None]
        squeeze = True

    # Per-segment max for numerical stability (constant wrt gradient).
    seg_max = np.full((num_segments, data.shape[1]), -np.inf)
    np.maximum.at(seg_max, ids, data)
    shifted = data - seg_max[ids]
    exp = np.exp(shifted)
    seg_sum = np.zeros((num_segments, data.shape[1]), dtype=np.float64)
    np.add.at(seg_sum, ids, exp)
    weights = exp / seg_sum[ids]
    value = weights[:, 0] if squeeze else weights

    def backward(grad: np.ndarray):
        g = grad[:, None] if squeeze else grad
        weighted = np.zeros((num_segments, data.shape[1]), dtype=np.float64)
        np.add.at(weighted, ids, weights * g)
        local = weights * (g - weighted[ids])
        return ((t, local[:, 0] if squeeze else local),)

    out = Tensor(value, parents=(t,), backward=backward)
    if _plan._TRACE is not None:

        def _replay_segsm_ref():
            seg_max = np.full((num_segments, data.shape[1]), -np.inf)
            np.maximum.at(seg_max, ids, data)
            exp = np.exp(data - seg_max[ids])
            seg_sum = np.zeros((num_segments, data.shape[1]), dtype=np.float64)
            np.add.at(seg_sum, ids, exp)
            np.copyto(weights, exp / seg_sum[ids])

        _plan.emit(_replay_segsm_ref)
    return out


def edge_message_value(
    pre: np.ndarray,
    eproj,
    bias: np.ndarray,
    idx: np.ndarray,
    extra=(),
) -> np.ndarray:
    """Raw-ndarray forward of :func:`edge_message` (no autograd).

    Factored out so checkpointing callers (see ``recompute_input`` in
    :func:`segment_attention`) can replay the fused message block in
    backward bit-for-bit: same expressions in the same order as the
    recorded forward.  ``extra`` holds ``(values_ndarray, index)`` pairs.
    """
    if _cnative.available():
        return _cnative.edge_fuse_fwd(pre, idx, list(extra), eproj, bias)
    pooled = _pool.buffer_pool_enabled()
    buf = _pool.take_rows(pre, idx, tag="edge-msg")
    for v, i in extra:
        gathered = _pool.take_rows(v, i, tag="edge-msg-x")
        buf = np.add(buf, gathered, out=buf if pooled else None)
    if eproj is not None:
        buf = np.add(buf, eproj, out=buf if pooled else None)
    buf = np.add(buf, bias, out=buf if pooled else None)
    return np.maximum(buf, 0.0, out=buf if pooled else None)


def edge_message(
    pre: ArrayLike,
    eproj: ArrayLike,
    bias: ArrayLike,
    src_index: np.ndarray,
    extra=(),
    checkpoint: bool = False,
) -> Tensor:
    """Fused aggregator prelude: ``relu(pre[src] + extras + eproj + bias)``.

    ``pre`` holds the source nodes already projected through the fusion
    weight's source block (``N_src`` rows); ``eproj`` the edge attributes
    through its edge block (``E`` rows, or ``None`` for edge types without
    attributes).  ``extra`` carries up to two ``(values, index)`` pairs of
    *factored* edge-attribute blocks: ``values`` has one row per distinct
    attribute vector (already projected through the matching columns of the
    fusion weight) and ``index`` maps each edge onto a row.  This is how
    capacity edge embeddings avoid an E-row matmul -- the region embeddings
    are projected once and gathered here.  Equivalent to the chain
    ``(gather_rows(pre, src) + v0[i0] + v1[i1] + eproj + bias).relu()`` --
    same expressions in the same order -- but as one graph node, and one C
    pass each way when the compiled kernels are up.

    With ``checkpoint=True`` (and the buffer pool on) the backward closure
    keeps only the relu sign mask -- one bool per element instead of the
    float value -- which is all either backward kernel reads of the output.
    The caller may then drop the node's value mid-forward with
    :meth:`Tensor.release_data` once its consumers have run.
    """
    t_p = as_tensor(pre)
    t_e = as_tensor(eproj) if eproj is not None else None
    t_b = as_tensor(bias)
    idx = np.asarray(src_index, dtype=np.int64)
    num_sources = t_p.shape[0]
    if len(extra) > 2:
        raise ValueError("edge_message supports at most two extra blocks")
    t_x = [as_tensor(vals) for vals, _ in extra]
    x_idx = [np.asarray(i, dtype=np.int64) for _, i in extra]

    parents = [t_p]
    parents.extend(t_x)
    if t_e is not None:
        parents.append(t_e)
    parents.append(t_b)
    parents = tuple(parents)

    value = edge_message_value(
        t_p.data,
        t_e.data if t_e is not None else None,
        t_b.data,
        idx,
        [(t.data, i) for t, i in zip(t_x, x_idx)],
    )
    if checkpoint and _pool.buffer_pool_enabled():
        # Both backward rules use the output only as a positivity mask
        # (``value > 0``), so pin one bool per element instead of the
        # (E, F) float block and let the caller release the value.
        pos_mask = np.greater(
            value, 0, out=_pool.out_buffer(value.shape, np.bool_, tag="edge-msg-mask")
        )
        saved_value = None
        if _plan._TRACE is not None:
            # Under a trace the replay thunk pins (and refreshes) the value
            # buffer anyway, so backward may read it in place of a float
            # cast of the mask -- the C kernel only tests ``> 0`` on it.
            saved_value = value
    else:
        pos_mask = None
        saved_value = value

    if _cnative.available():

        def backward_c(grad: np.ndarray):
            v = saved_value
            if v is None:
                # The C kernel reads its ``out`` argument only through
                # ``o[j] > 0.0``; a 0/1 float cast of the mask is identical.
                v = np.multiply(
                    pos_mask,
                    1.0,
                    out=_pool.out_buffer(grad.shape, grad.dtype, tag="edge-msg-mask"),
                )
            gmask, gpre, gex, gbias = _cnative.edge_fuse_bwd(
                grad,
                v,
                idx,
                num_sources,
                [(t.shape[0], i) for t, i in zip(t_x, x_idx)],
            )
            out = []
            if t_p.requires_grad:
                out.append((t_p, gpre))
            for t, g in zip(t_x, gex):
                if t.requires_grad:
                    out.append((t, g))
            if t_e is not None and t_e.requires_grad:
                out.append((t_e, gmask))
            if t_b.requires_grad:
                out.append((t_b, gbias))
            return out

        result = Tensor(value, parents=parents, backward=backward_c)
        if _plan._TRACE is not None:
            extras_rep = [(t.data, i) for t, i in zip(t_x, x_idx)]
            pre_arr = t_p.data
            e_arr = t_e.data if t_e is not None else None
            b_arr = t_b.data

            def _replay_edge_msg_c():
                _cnative.edge_fuse_fwd(
                    pre_arr, idx, extras_rep, e_arr, b_arr, out=value
                )
                if pos_mask is not None:
                    np.greater(value, 0, out=pos_mask)

            _plan.emit(_replay_edge_msg_c)
        return result

    def backward(grad: np.ndarray):
        m = pos_mask if pos_mask is not None else saved_value > 0
        gmask = np.multiply(
            grad,
            m,
            out=_pool.out_buffer(grad.shape, grad.dtype, tag="edge-msg-bwd"),
        )
        fast = _segment.fast_kernels_enabled()

        def scatter(i, n):
            if fast:
                return get_plan(i, n).sum(gmask)
            g = _pool.zeros((n, gmask.shape[1]), tag="edge-msg-scatter")
            np.add.at(g, i, gmask)
            return g

        out = []
        if t_p.requires_grad:
            out.append((t_p, scatter(idx, num_sources)))
        for t, i in zip(t_x, x_idx):
            if t.requires_grad:
                out.append((t, scatter(i, t.shape[0])))
        if t_e is not None and t_e.requires_grad:
            out.append((t_e, gmask))
        if t_b.requires_grad:
            out.append((t_b, gmask.sum(axis=0)))
        return out

    result = Tensor(value, parents=parents, backward=backward)
    if _plan._TRACE is not None:
        extras_rep = [(t.data, i) for t, i in zip(t_x, x_idx)]
        pre_arr = t_p.data
        e_arr = t_e.data if t_e is not None else None
        b_arr = t_b.data

        def _replay_edge_msg():
            # edge_message_value, replayed into the recorded output: the
            # in-place ufunc chain is value-identical to the fresh
            # allocations of the reference path.
            np.take(pre_arr, idx, axis=0, out=value, mode="clip")
            for v, i in extras_rep:
                gathered = _pool.take_rows(v, i, tag="edge-msg-x")
                np.add(value, gathered, out=value)
            if e_arr is not None:
                np.add(value, e_arr, out=value)
            np.add(value, b_arr, out=value)
            np.maximum(value, 0.0, out=value)
            if pos_mask is not None:
                np.greater(value, 0, out=pos_mask)

        _plan.emit(_replay_edge_msg)
    return result


def segment_attention(
    fused: ArrayLike,
    key_weight: ArrayLike,
    queries: ArrayLike,
    segment_ids: np.ndarray,
    num_segments: int,
    scale: float,
    negative_slope: float = 0.2,
    recompute_input=None,
) -> Tensor:
    """Fused multi-head segment attention: one autograd node for Eqs. 11-12.

    Computes, per edge row ``e`` with target segment ``s = segment_ids[e]``::

        K_e   = (fused @ key_weight).reshape(E, H, hd)
        score = leaky_relu((K_e . queries[s]) * scale)
        w     = segment_softmax(score, segment_ids)
        out_s = relu(sum_e w_e K_e)           # heads concatenated, (N, H*hd)

    ``queries`` is the per-target query tensor of shape ``(N, H, hd)`` (with
    any edge-type bilinear form already folded in).  This is numerically
    identical to composing ``gather_rows`` / ``segment_softmax`` /
    ``segment_sum`` -- same numpy expressions in the same order -- but runs
    as a single graph node: the chain of ten intermediate tensors (and
    their per-node gradient buffers, broadcast reductions and bookkeeping)
    collapses into one closure over the shared :class:`SegmentPlan`.  On
    the allocator-bound 1-core training profile this roughly halves the
    number of large-array passes per aggregation.

    ``recompute_input`` is the checkpointing hook used by the pooled
    memory plane: a zero-argument callable returning an ndarray
    bit-identical to ``fused.data``.  When given, the backward closure
    calls it instead of reading ``t_f.data`` -- so the caller may release
    the fused tensor's value mid-forward (:meth:`Tensor.release_data`)
    and its (E, F) buffer recycles immediately.
    """
    t_f = as_tensor(fused)
    t_w = as_tensor(key_weight)
    t_q = as_tensor(queries)
    ids = np.asarray(segment_ids, dtype=np.int64)
    num_edges = ids.shape[0]
    _, num_heads, head_dim = t_q.shape
    out_dim = num_heads * head_dim

    # Blocked so sharded workers can reproduce any row range bit-for-bit
    # (see matmul_blocked); every recompute/replay below must match.
    keys_flat = matmul_blocked(
        t_f.data,
        t_w.data,
        out=_pool.out_buffer((num_edges, out_dim), t_f.data.dtype, tag="segatt-keys"),
    )
    keys = keys_flat.reshape(num_edges, num_heads, head_dim)

    pooled = _pool.buffer_pool_enabled()
    if _cnative.available():
        # Compiled path: scores, leaky relu, segment softmax and weighted
        # segment sum in one C pass per direction (see repro.tensor.cnative)
        # instead of ~8 numpy passes over the (E, H*hd) arrays.
        plan = get_plan(ids, num_segments)
        q_c = np.ascontiguousarray(t_q.data)
        weights, leaky, agg = _cnative.seg_att_fwd(
            keys, q_c, plan, scale, negative_slope
        )
        pos = agg > 0
        # agg is a fresh kernel output; its buffer doubles as the value.
        value = np.multiply(agg, pos, out=agg if pooled else None)

        # Tape slimming: with the pool on, don't pin the (E, H, hd) keys
        # until backward -- recompute them there from ``t_f``/``t_w``
        # (both still live: parents retire after this node).  The same
        # matmul on the same operands is bit-identical, and the keys
        # buffer recycles mid-forward into the next relation's borrow.
        saved_keys = None if pooled else keys
        saved_f = None
        if _plan._TRACE is not None:
            # Under a trace the keys buffer and the fused input are pinned
            # (and refreshed) by their replay thunks, so the checkpoint
            # recompute would rebuild bytes that are already sitting there:
            # read them directly instead.  Bit-identical either way.
            saved_keys = keys
            saved_f = t_f.data

        def backward_c(grad: np.ndarray):
            gout = np.multiply(
                grad,
                pos,
                out=_pool.out_buffer(grad.shape, grad.dtype, tag="segatt-gout"),
            )
            k = saved_keys
            f = None
            if k is None:
                f = t_f.data if recompute_input is None else recompute_input()
                k = matmul_blocked(
                    f,
                    t_w.data,
                    out=_pool.out_buffer(
                        (num_edges, out_dim), t_f.data.dtype, tag="segatt-keys"
                    ),
                ).reshape(num_edges, num_heads, head_dim)
            g_keys, g_q = _cnative.seg_att_bwd(
                k, q_c, weights, leaky, gout, plan, scale
            )
            # k is dead past this point; dropping the reference lets its
            # pooled block satisfy one of the grad borrows just below.
            k = None
            out = []
            if t_q.requires_grad:
                out.append((t_q, g_q))
            if t_f.requires_grad or t_w.requires_grad:
                gk_flat = g_keys.reshape(num_edges, out_dim)
                if t_f.requires_grad:
                    g_f = matmul_blocked(
                        gk_flat,
                        t_w.data.T,
                        out=_pool.out_buffer(
                            t_f.data.shape, t_f.data.dtype, tag="segatt-gf"
                        ),
                    )
                    out.append((t_f, g_f))
                if t_w.requires_grad:
                    if f is not None:
                        fd = f
                    elif saved_f is not None:
                        fd = saved_f
                    else:
                        fd = t_f.data
                    out.append((t_w, matmul_grad_blocked(fd, gk_flat)))
            return out

        result = Tensor(value, parents=(t_f, t_w, t_q), backward=backward_c)
        if _plan._TRACE is not None:
            f_arr, w_arr, tq_arr = t_f.data, t_w.data, t_q.data
            val = result.data

            def _replay_segatt_c():
                matmul_blocked(f_arr, w_arr, out=keys_flat)
                if q_c is not tq_arr:
                    np.copyto(q_c, tq_arr)
                # The kernel accumulates the aggregation, so hand the
                # pinned value buffer over zeroed and apply the relu in
                # place afterwards -- same bytes as the recorded forward.
                val.fill(0.0)
                _cnative.seg_att_fwd(
                    keys, q_c, plan, scale, negative_slope,
                    out=(weights, leaky, val),
                )
                np.greater(val, 0, out=pos)
                np.multiply(val, pos, out=val)

            _plan.emit(_replay_segatt_c)
        return result

    q_edge = _pool.take_rows(t_q.data, ids, tag="segatt-qedge")
    # einsum contracts without materialising the (E, H, hd) product.
    scores = np.einsum(
        "ehd,ehd->eh",
        keys,
        q_edge,
        out=_pool.out_buffer((num_edges, num_heads), keys.dtype, tag="segatt-score"),
    )
    scores = np.multiply(scores, scale, out=scores if pooled else None)
    leaky = np.where(scores > 0, 1.0, negative_slope)
    act = np.multiply(scores, leaky, out=scores if pooled else None)

    plan = get_plan(ids, num_segments)
    sorted_scores = plan.sort(act)
    seg_max = plan.max_sorted(sorted_scores)
    spread_max = plan.spread_runs(seg_max)
    shifted = np.subtract(sorted_scores, spread_max, out=spread_max if pooled else None)
    exp = np.exp(shifted, out=shifted if pooled else None)
    seg_sum = plan.sum_sorted(exp)
    spread_sum = plan.spread_runs(seg_sum)
    weights = plan.unsort(np.divide(exp, spread_sum, out=exp if pooled else None))

    weighted = np.multiply(
        keys,
        weights[:, :, None],
        out=_pool.out_buffer(keys.shape, keys.dtype, tag="segatt-wk"),
    )
    agg = plan.sum(weighted.reshape(num_edges, out_dim))
    pos = agg > 0
    value = np.multiply(agg, pos, out=agg if pooled else None)

    # Tape slimming (mirrors the compiled path): with the pool on, the two
    # (E, H, hd) arrays are recomputed in backward -- bit-identical ops on
    # operands that are still live -- instead of pinned until then.
    saved = None if pooled else (keys, q_edge)
    saved_f = None
    if _plan._TRACE is not None:
        # Pinned and refreshed by the replay thunks; skip the backward
        # recompute (see the compiled path above).
        saved = (keys, q_edge)
        saved_f = t_f.data

    def backward(grad: np.ndarray):
        f = None
        if saved is None:
            f = t_f.data if recompute_input is None else recompute_input()
            keys_b = matmul_blocked(
                f,
                t_w.data,
                out=_pool.out_buffer(
                    (num_edges, out_dim), t_f.data.dtype, tag="segatt-keys"
                ),
            ).reshape(num_edges, num_heads, head_dim)
            q_edge_b = _pool.take_rows(t_q.data, ids, tag="segatt-qedge")
        else:
            keys_b, q_edge_b = saved
        # relu -> segment_sum -> (weighted sum, softmax, score) in one pass.
        gout = np.multiply(
            grad, pos, out=_pool.out_buffer(grad.shape, grad.dtype, tag="segatt-bwd")
        )
        g = _pool.take_rows(gout, ids, tag="segatt-bwd").reshape(
            num_edges, num_heads, head_dim
        )
        g_w = np.einsum(
            "ehd,ehd->eh",
            g,
            keys_b,
            out=_pool.out_buffer(
                (num_edges, num_heads), keys_b.dtype, tag="segatt-bwd"
            ),
        )  # d/d weights, (E, H)
        # g feeds only g_w and this product, so it may be overwritten.
        g_keys = np.multiply(g, weights[:, :, None], out=g if pooled else None)
        # Softmax backward within segments: w * (g - sum_seg w g).
        wgw = np.multiply(
            weights,
            g_w,
            out=_pool.out_buffer(g_w.shape, g_w.dtype, tag="segatt-bwd"),
        )
        inner = plan.sum(wgw)
        inner_edge = _pool.take_rows(inner, ids, tag="segatt-bwd")
        g_s = np.subtract(g_w, inner_edge, out=inner_edge if pooled else None)
        g_s = np.multiply(weights, g_s, out=g_s if pooled else None)
        g_s *= leaky
        g_s *= scale
        qs = np.multiply(
            q_edge_b,
            g_s[:, :, None],
            out=_pool.out_buffer(q_edge_b.shape, q_edge_b.dtype, tag="segatt-bwd"),
        )
        g_keys += qs
        out = []
        if t_q.requires_grad:
            ks = np.multiply(keys_b, g_s[:, :, None], out=qs if pooled else None)
            out.append(
                (t_q, plan.sum(ks.reshape(num_edges, out_dim)).reshape(t_q.shape))
            )
        if t_f.requires_grad or t_w.requires_grad:
            gk_flat = g_keys.reshape(num_edges, out_dim)
            if t_f.requires_grad:
                out.append((
                    t_f,
                    matmul_blocked(
                        gk_flat,
                        t_w.data.T,
                        out=_pool.out_buffer(
                            t_f.data.shape, t_f.data.dtype, tag="segatt-bwd"
                        ),
                    ),
                ))
            if t_w.requires_grad:
                if f is not None:
                    fd = f
                elif saved_f is not None:
                    fd = saved_f
                else:
                    fd = t_f.data
                out.append((t_w, matmul_grad_blocked(fd, gk_flat)))
        return out

    result = Tensor(value, parents=(t_f, t_w, t_q), backward=backward)
    if _plan._TRACE is not None:
        f_arr, w_arr, tq_arr = t_f.data, t_w.data, t_q.data
        val = result.data

        def _replay_segatt():
            matmul_blocked(f_arr, w_arr, out=keys_flat)
            np.take(tq_arr, ids, axis=0, out=q_edge, mode="clip")
            s = np.einsum("ehd,ehd->eh", keys, q_edge)
            s *= scale
            np.copyto(leaky, np.where(s > 0, 1.0, negative_slope))
            s *= leaky
            ss = plan.sort(s)
            sm = plan.spread_runs(plan.max_sorted(ss))
            ex = np.exp(ss - sm)
            sps = plan.spread_runs(plan.sum_sorted(ex))
            np.copyto(weights, plan.unsort(np.divide(ex, sps, out=ex)))
            wk = np.multiply(keys, weights[:, :, None])
            a2 = plan.sum(wk.reshape(num_edges, out_dim))
            np.greater(a2, 0, out=pos)
            np.multiply(a2, pos, out=val)

        _plan.emit(_replay_segatt)
    return result


def period_attention(
    flat: ArrayLike,
    key_weight: ArrayLike,
    query_weight: ArrayLike,
    num_periods: int,
    num_heads: int,
    scale: float,
):
    """Fused time semantics-level attention (Eqs. 13-15): one graph node.

    ``flat`` holds the per-period pair embeddings stacked period-major,
    shape ``(P*K, dim)``.  Returns ``(out, weights)`` where ``out`` is the
    ``(K, dim)`` attention-mixed embedding (relu applied) and ``weights``
    the plain-numpy ``(P, K, H)`` attention distribution over periods (the
    interpretability signal; not differentiated through separately).

    Numerically identical to the composed ``key_proj``/``query_proj``/
    ``softmax(axis=0)`` path -- and to the frozen-snapshot scorer in
    :mod:`repro.serve`, which re-implements the same expressions on plain
    numpy -- but backpropagates in five large fused passes instead of ~15
    per-node steps.
    """
    t = as_tensor(flat)
    t_wk = as_tensor(key_weight)
    t_wq = as_tensor(query_weight)
    pk, dim = t.shape
    k = pk // num_periods
    head_dim = dim // num_heads

    pooled = _pool.buffer_pool_enabled()
    kf = np.matmul(t.data, t_wk.data, out=_pool.out_buffer((pk, dim), tag="pattn-keys"))
    keys = kf.reshape(num_periods, k, num_heads, head_dim)
    qf = np.matmul(
        t.data, t_wq.data, out=_pool.out_buffer((pk, dim), tag="pattn-queries")
    )
    queries = qf.reshape(num_periods, k, num_heads, head_dim)
    scores = np.einsum(
        "pkhd,pkhd->pkh",
        keys,
        queries,
        out=_pool.out_buffer((num_periods, k, num_heads), tag="pattn-scores"),
    )  # (P, K, H)
    scores = np.multiply(scores, scale, out=scores if pooled else None)
    # The softmax chain reuses one buffer when pooled: each step consumes
    # the previous array, so in-place writes are value-identical.
    shifted = np.subtract(
        scores,
        scores.max(axis=0, keepdims=True),
        out=scores if pooled else None,
    )
    exp = np.exp(shifted, out=shifted if pooled else None)
    weights = np.divide(
        exp, exp.sum(axis=0, keepdims=True), out=exp if pooled else None
    )
    mixed = np.einsum(
        "pkhd,pkh->khd",
        keys,
        weights,
        out=_pool.out_buffer((k, num_heads, head_dim), tag="pattn-mixed"),
    )  # (K, H, hd)
    out_flat = mixed.reshape(k, dim)
    pos = np.greater(
        out_flat, 0, out=_pool.out_buffer((k, dim), np.bool_, tag="pattn-pos")
    )
    value = np.multiply(out_flat, pos, out=out_flat if pooled else None)

    def backward(grad: np.ndarray):
        inplace = _pool.buffer_pool_enabled()
        g = np.multiply(
            grad, pos, out=_pool.out_buffer(grad.shape, tag="pattn-g")
        ).reshape(k, num_heads, head_dim)
        g_w = np.einsum(
            "pkhd,khd->pkh",
            keys,
            g,
            out=_pool.out_buffer(
                (num_periods, k, num_heads), tag="pattn-gw"
            ),
        )  # (P, K, H)
        g_keys = np.multiply(
            weights[..., None],
            g[None],
            out=_pool.out_buffer(keys.shape, tag="pattn-gkeys"),
        )
        wgw = np.multiply(
            weights, g_w, out=_pool.out_buffer(g_w.shape, tag="pattn-wgw")
        )
        inner = wgw.sum(axis=0, keepdims=True)
        # g_w is backward-local from here on; ``weights`` stays untouched
        # (it is returned to the caller alongside the output tensor).
        diff = np.subtract(g_w, inner, out=g_w if inplace else None)
        g_s = np.multiply(weights, diff, out=diff if inplace else None)
        g_s *= scale
        qgs = np.multiply(
            queries,
            g_s[..., None],
            out=_pool.out_buffer(keys.shape, tag="pattn-qgs"),
        )
        g_keys += qgs
        g_queries = np.multiply(
            keys,
            g_s[..., None],
            out=_pool.out_buffer(keys.shape, tag="pattn-gqueries"),
        )
        gk = g_keys.reshape(pk, dim)
        gq = g_queries.reshape(pk, dim)
        out = []
        if t.requires_grad:
            gtk = np.matmul(
                gk,
                t_wk.data.T,
                out=_pool.out_buffer((pk, dim), tag="pattn-gt"),
            )
            gtq = np.matmul(
                gq,
                t_wq.data.T,
                out=_pool.out_buffer((pk, dim), tag="pattn-gt"),
            )
            out.append((t, np.add(gtk, gtq, out=gtk if inplace else None)))
        if t_wk.requires_grad:
            out.append((t_wk, t.data.T @ gk))
        if t_wq.requires_grad:
            out.append((t_wq, t.data.T @ gq))
        return out

    result = Tensor(value, parents=(t, t_wk, t_wq), backward=backward)
    if _plan._TRACE is not None:
        t_arr, wk_arr, wq_arr = t.data, t_wk.data, t_wq.data
        val = result.data

        def _replay_pattn():
            np.matmul(t_arr, wk_arr, out=kf)
            np.matmul(t_arr, wq_arr, out=qf)
            s = np.einsum("pkhd,pkhd->pkh", keys, queries)
            s *= scale
            ex = np.exp(s - s.max(axis=0, keepdims=True))
            np.copyto(weights, np.divide(ex, ex.sum(axis=0, keepdims=True), out=ex))
            m2 = np.einsum("pkhd,pkh->khd", keys, weights)
            of = m2.reshape(k, dim)
            np.greater(of, 0, out=pos)
            np.multiply(of, pos, out=val)

        _plan.emit(_replay_pattn)
    return result, weights


def softmax(tensor: ArrayLike, axis: int = -1) -> Tensor:
    """Standard softmax along ``axis`` (differentiable, stabilised)."""
    t = as_tensor(tensor)
    shifted = t.data - t.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        inner = (grad * value).sum(axis=axis, keepdims=True)
        return ((t, value * (grad - inner)),)

    out = Tensor(value, parents=(t,), backward=backward)
    if _plan._TRACE is not None:
        x = t.data

        def _recompute_softmax():
            e = np.exp(x - x.max(axis=axis, keepdims=True))
            return e / e.sum(axis=axis, keepdims=True)

        _plan.emit_refresh(value, _recompute_softmax)
    return out


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select (condition is a constant boolean array)."""
    cond = np.asarray(condition, dtype=bool)
    ta, tb = as_tensor(a), as_tensor(b)

    def backward(grad: np.ndarray):
        return (
            (ta, unbroadcast(np.where(cond, grad, 0.0), ta.shape)),
            (tb, unbroadcast(np.where(cond, 0.0, grad), tb.shape)),
        )

    result = Tensor(
        np.where(cond, ta.data, tb.data), parents=(ta, tb), backward=backward
    )
    if _plan._TRACE is not None:
        xa, xb, dst = ta.data, tb.data, result.data
        _plan.emit(lambda: np.copyto(dst, np.where(cond, xa, xb)))
    return result


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
