"""Functional operations on :class:`~repro.tensor.Tensor`.

Besides the usual dense ops (:func:`concat`, :func:`softmax`, ...) this
module provides the *segment* operations that make graph neural networks
practical on a numpy backend:

* :func:`gather_rows` — select node rows by edge endpoint indices;
* :func:`segment_sum` / :func:`segment_mean` — scatter-add edge messages back
  to node slots;
* :func:`segment_softmax` — softmax of attention scores *within* each target
  node's neighbourhood (variable neighbourhood sizes, no padding).

All segment ops take an integer ``segment_ids`` array aligned with axis 0 of
the data and a ``num_segments`` total, mirroring the message-passing pattern
``messages = gather_rows(h, src); out = segment_sum(messages, dst, n)``.

Each segment op has two implementations: the *reference* kernels built on
``np.add.at`` / ``np.maximum.at`` (simple, obviously correct, slow) and a
fast path that reduces over a cached :class:`~repro.tensor.segment.SegmentPlan`
with ``ufunc.reduceat`` (see :mod:`repro.tensor.segment`).  The dispatch is
controlled by :func:`repro.tensor.segment.set_fast_kernels`; the
``*_reference`` functions stay importable so tests and benchmarks can pin
the fast path against them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import cnative as _cnative
from . import segment as _segment
from .segment import get_plan
from .tensor import ArrayLike, Tensor, as_tensor, unbroadcast


def concat(tensors: Sequence[ArrayLike], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    ts = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        pieces = np.split(grad, splits, axis=axis)
        return tuple(zip(ts, pieces))

    return Tensor(data, parents=tuple(ts), backward=backward)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    ts = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in ts], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(ts), axis=axis)
        return tuple(
            (t, np.squeeze(piece, axis=axis)) for t, piece in zip(ts, pieces)
        )

    return Tensor(data, parents=tuple(ts), backward=backward)


def gather_rows(tensor: ArrayLike, indices: np.ndarray) -> Tensor:
    """Select rows ``tensor[indices]`` along axis 0 (differentiable).

    ``indices`` may repeat; the backward pass scatter-adds into the source
    (via a cached :class:`SegmentPlan` on the fast path).
    """
    t = as_tensor(tensor)
    idx = np.asarray(indices, dtype=np.int64)
    shape = t.shape

    def backward(grad: np.ndarray):
        if _segment.fast_kernels_enabled():
            return ((t, get_plan(idx, shape[0]).sum(grad)),)
        full = np.zeros(shape, dtype=np.float64)
        np.add.at(full, idx, grad)
        return ((t, full),)

    return Tensor(t.data[idx], parents=(t,), backward=backward)


def gather_rows_reference(tensor: ArrayLike, indices: np.ndarray) -> Tensor:
    """:func:`gather_rows` pinned to the ``np.add.at`` scatter backward."""
    t = as_tensor(tensor)
    idx = np.asarray(indices, dtype=np.int64)
    shape = t.shape

    def backward(grad: np.ndarray):
        full = np.zeros(shape, dtype=np.float64)
        np.add.at(full, idx, grad)
        return ((t, full),)

    return Tensor(t.data[idx], parents=(t,), backward=backward)


def _check_segment_lengths(ids: np.ndarray, t: Tensor) -> None:
    if ids.shape[0] != t.shape[0]:
        raise ValueError(
            f"segment_ids length {ids.shape[0]} does not match data rows "
            f"{t.shape[0]}"
        )


def segment_sum(data: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``data`` into ``num_segments`` buckets by ``segment_ids``."""
    t = as_tensor(data)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    if _segment.fast_kernels_enabled():
        result = get_plan(ids, num_segments).sum(t.data)
    else:
        result = np.zeros((num_segments,) + t.shape[1:], dtype=np.float64)
        np.add.at(result, ids, t.data)

    def backward(grad: np.ndarray):
        return ((t, grad[ids]),)

    return Tensor(result, parents=(t,), backward=backward)


def segment_sum_reference(
    data: ArrayLike, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """:func:`segment_sum` pinned to the ``np.add.at`` kernel."""
    t = as_tensor(data)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    result = np.zeros((num_segments,) + t.shape[1:], dtype=np.float64)
    np.add.at(result, ids, t.data)

    def backward(grad: np.ndarray):
        return ((t, grad[ids]),)

    return Tensor(result, parents=(t,), backward=backward)


def segment_counts(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows mapped to each segment (plain numpy, no autograd)."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    if _segment.fast_kernels_enabled():
        return get_plan(ids, num_segments).counts.astype(np.float64)
    return np.bincount(ids, minlength=num_segments).astype(np.float64)


def segment_mean(data: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zeros."""
    t = as_tensor(data)
    counts = segment_counts(segment_ids, num_segments)
    denom = np.maximum(counts, 1.0)
    summed = segment_sum(t, segment_ids, num_segments)
    if summed.data.ndim > 1:
        denom = denom.reshape((-1,) + (1,) * (summed.data.ndim - 1))
    return summed * Tensor(1.0 / denom)


def segment_softmax(
    scores: ArrayLike, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """Softmax of ``scores`` computed independently within each segment.

    ``scores`` has shape ``(E,)`` or ``(E, H)`` (per-head scores); the softmax
    normalises over all rows sharing a segment id, per trailing column.
    Numerically stabilised by subtracting the per-segment maximum.
    """
    if not _segment.fast_kernels_enabled():
        return segment_softmax_reference(scores, segment_ids, num_segments)
    t = as_tensor(scores)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    data = t.data
    squeeze = False
    if data.ndim == 1:
        data = data[:, None]
        squeeze = True

    # One sort shared by the max, the sum and the backward reduction.
    plan = get_plan(ids, num_segments)
    sorted_scores = plan.sort(data)
    seg_max = plan.max_sorted(sorted_scores)  # (runs, H)
    exp = np.exp(sorted_scores - plan.spread_runs(seg_max))
    seg_sum = plan.sum_sorted(exp)
    weights_sorted = exp / plan.spread_runs(seg_sum)
    weights = plan.unsort(weights_sorted)
    value = weights[:, 0] if squeeze else weights

    def backward(grad: np.ndarray):
        g = grad[:, None] if squeeze else grad
        # d softmax: w * (g - sum_j w_j g_j) within each segment.
        weighted = plan.sum_sorted(weights_sorted * plan.sort(g))
        local = weights * (g - plan.unsort(plan.spread_runs(weighted)))
        return ((t, local[:, 0] if squeeze else local),)

    return Tensor(value, parents=(t,), backward=backward)


def segment_softmax_reference(
    scores: ArrayLike, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """:func:`segment_softmax` pinned to the ``ufunc.at`` kernels."""
    t = as_tensor(scores)
    ids = np.asarray(segment_ids, dtype=np.int64)
    _check_segment_lengths(ids, t)
    data = t.data
    squeeze = False
    if data.ndim == 1:
        data = data[:, None]
        squeeze = True

    # Per-segment max for numerical stability (constant wrt gradient).
    seg_max = np.full((num_segments, data.shape[1]), -np.inf)
    np.maximum.at(seg_max, ids, data)
    shifted = data - seg_max[ids]
    exp = np.exp(shifted)
    seg_sum = np.zeros((num_segments, data.shape[1]), dtype=np.float64)
    np.add.at(seg_sum, ids, exp)
    weights = exp / seg_sum[ids]
    value = weights[:, 0] if squeeze else weights

    def backward(grad: np.ndarray):
        g = grad[:, None] if squeeze else grad
        weighted = np.zeros((num_segments, data.shape[1]), dtype=np.float64)
        np.add.at(weighted, ids, weights * g)
        local = weights * (g - weighted[ids])
        return ((t, local[:, 0] if squeeze else local),)

    return Tensor(value, parents=(t,), backward=backward)


def edge_message(
    pre: ArrayLike,
    eproj: ArrayLike,
    bias: ArrayLike,
    src_index: np.ndarray,
    extra=(),
) -> Tensor:
    """Fused aggregator prelude: ``relu(pre[src] + extras + eproj + bias)``.

    ``pre`` holds the source nodes already projected through the fusion
    weight's source block (``N_src`` rows); ``eproj`` the edge attributes
    through its edge block (``E`` rows, or ``None`` for edge types without
    attributes).  ``extra`` carries up to two ``(values, index)`` pairs of
    *factored* edge-attribute blocks: ``values`` has one row per distinct
    attribute vector (already projected through the matching columns of the
    fusion weight) and ``index`` maps each edge onto a row.  This is how
    capacity edge embeddings avoid an E-row matmul -- the region embeddings
    are projected once and gathered here.  Equivalent to the chain
    ``(gather_rows(pre, src) + v0[i0] + v1[i1] + eproj + bias).relu()`` --
    same expressions in the same order -- but as one graph node, and one C
    pass each way when the compiled kernels are up.
    """
    t_p = as_tensor(pre)
    t_e = as_tensor(eproj) if eproj is not None else None
    t_b = as_tensor(bias)
    idx = np.asarray(src_index, dtype=np.int64)
    num_sources = t_p.shape[0]
    if len(extra) > 2:
        raise ValueError("edge_message supports at most two extra blocks")
    t_x = [as_tensor(vals) for vals, _ in extra]
    x_idx = [np.asarray(i, dtype=np.int64) for _, i in extra]

    parents = [t_p]
    parents.extend(t_x)
    if t_e is not None:
        parents.append(t_e)
    parents.append(t_b)
    parents = tuple(parents)

    if _cnative.available():
        value = _cnative.edge_fuse_fwd(
            t_p.data,
            idx,
            [(t.data, i) for t, i in zip(t_x, x_idx)],
            t_e.data if t_e is not None else None,
            t_b.data,
        )

        def backward_c(grad: np.ndarray):
            gmask, gpre, gex, gbias = _cnative.edge_fuse_bwd(
                grad,
                value,
                idx,
                num_sources,
                [(t.shape[0], i) for t, i in zip(t_x, x_idx)],
            )
            out = []
            if t_p.requires_grad:
                out.append((t_p, gpre))
            for t, g in zip(t_x, gex):
                if t.requires_grad:
                    out.append((t, g))
            if t_e is not None and t_e.requires_grad:
                out.append((t_e, gmask))
            if t_b.requires_grad:
                out.append((t_b, gbias))
            return out

        return Tensor(value, parents=parents, backward=backward_c)

    buf = t_p.data[idx]
    for t, i in zip(t_x, x_idx):
        buf = buf + t.data[i]
    if t_e is not None:
        buf = buf + t_e.data
    buf = buf + t_b.data
    value = np.maximum(buf, 0.0)

    def backward(grad: np.ndarray):
        gmask = grad * (value > 0)
        fast = _segment.fast_kernels_enabled()

        def scatter(i, n):
            if fast:
                return get_plan(i, n).sum(gmask)
            g = np.zeros((n, gmask.shape[1]), dtype=np.float64)
            np.add.at(g, i, gmask)
            return g

        out = []
        if t_p.requires_grad:
            out.append((t_p, scatter(idx, num_sources)))
        for t, i in zip(t_x, x_idx):
            if t.requires_grad:
                out.append((t, scatter(i, t.shape[0])))
        if t_e is not None and t_e.requires_grad:
            out.append((t_e, gmask))
        if t_b.requires_grad:
            out.append((t_b, gmask.sum(axis=0)))
        return out

    return Tensor(value, parents=parents, backward=backward)


def segment_attention(
    fused: ArrayLike,
    key_weight: ArrayLike,
    queries: ArrayLike,
    segment_ids: np.ndarray,
    num_segments: int,
    scale: float,
    negative_slope: float = 0.2,
) -> Tensor:
    """Fused multi-head segment attention: one autograd node for Eqs. 11-12.

    Computes, per edge row ``e`` with target segment ``s = segment_ids[e]``::

        K_e   = (fused @ key_weight).reshape(E, H, hd)
        score = leaky_relu((K_e . queries[s]) * scale)
        w     = segment_softmax(score, segment_ids)
        out_s = relu(sum_e w_e K_e)           # heads concatenated, (N, H*hd)

    ``queries`` is the per-target query tensor of shape ``(N, H, hd)`` (with
    any edge-type bilinear form already folded in).  This is numerically
    identical to composing ``gather_rows`` / ``segment_softmax`` /
    ``segment_sum`` -- same numpy expressions in the same order -- but runs
    as a single graph node: the chain of ten intermediate tensors (and
    their per-node gradient buffers, broadcast reductions and bookkeeping)
    collapses into one closure over the shared :class:`SegmentPlan`.  On
    the allocator-bound 1-core training profile this roughly halves the
    number of large-array passes per aggregation.
    """
    t_f = as_tensor(fused)
    t_w = as_tensor(key_weight)
    t_q = as_tensor(queries)
    ids = np.asarray(segment_ids, dtype=np.int64)
    num_edges = ids.shape[0]
    _, num_heads, head_dim = t_q.shape
    out_dim = num_heads * head_dim

    keys = (t_f.data @ t_w.data).reshape(num_edges, num_heads, head_dim)

    if _cnative.available():
        # Compiled path: scores, leaky relu, segment softmax and weighted
        # segment sum in one C pass per direction (see repro.tensor.cnative)
        # instead of ~8 numpy passes over the (E, H*hd) arrays.
        plan = get_plan(ids, num_segments)
        q_c = np.ascontiguousarray(t_q.data)
        weights, leaky, agg = _cnative.seg_att_fwd(
            keys, q_c, plan, scale, negative_slope
        )
        pos = agg > 0
        value = agg * pos

        def backward_c(grad: np.ndarray):
            gout = grad * pos
            g_keys, g_q = _cnative.seg_att_bwd(
                keys, q_c, weights, leaky, gout, plan, scale
            )
            out = []
            if t_q.requires_grad:
                out.append((t_q, g_q))
            if t_f.requires_grad or t_w.requires_grad:
                gk_flat = g_keys.reshape(num_edges, out_dim)
                if t_f.requires_grad:
                    out.append((t_f, gk_flat @ t_w.data.T))
                if t_w.requires_grad:
                    out.append((t_w, t_f.data.T @ gk_flat))
            return out

        return Tensor(value, parents=(t_f, t_w, t_q), backward=backward_c)

    q_edge = t_q.data[ids]
    # einsum contracts without materialising the (E, H, hd) product.
    scores = np.einsum("ehd,ehd->eh", keys, q_edge) * scale
    leaky = np.where(scores > 0, 1.0, negative_slope)
    act = scores * leaky

    plan = get_plan(ids, num_segments)
    sorted_scores = plan.sort(act)
    seg_max = plan.max_sorted(sorted_scores)
    exp = np.exp(sorted_scores - plan.spread_runs(seg_max))
    seg_sum = plan.sum_sorted(exp)
    weights = plan.unsort(exp / plan.spread_runs(seg_sum))

    agg = plan.sum((keys * weights[:, :, None]).reshape(num_edges, out_dim))
    pos = agg > 0
    value = agg * pos

    def backward(grad: np.ndarray):
        # relu -> segment_sum -> (weighted sum, softmax, score) in one pass.
        g = (grad * pos)[ids].reshape(num_edges, num_heads, head_dim)
        g_w = np.einsum("ehd,ehd->eh", g, keys)  # d/d weights, (E, H)
        g_keys = g * weights[:, :, None]
        # Softmax backward within segments: w * (g - sum_seg w g).
        inner = plan.sum(weights * g_w)
        g_s = weights * (g_w - inner[ids])
        g_s *= leaky
        g_s *= scale
        g_keys += q_edge * g_s[:, :, None]
        out = []
        if t_q.requires_grad:
            out.append(
                (t_q, plan.sum((keys * g_s[:, :, None]).reshape(num_edges, out_dim))
                 .reshape(t_q.shape))
            )
        if t_f.requires_grad or t_w.requires_grad:
            gk_flat = g_keys.reshape(num_edges, out_dim)
            if t_f.requires_grad:
                out.append((t_f, gk_flat @ t_w.data.T))
            if t_w.requires_grad:
                out.append((t_w, t_f.data.T @ gk_flat))
        return out

    return Tensor(value, parents=(t_f, t_w, t_q), backward=backward)


def period_attention(
    flat: ArrayLike,
    key_weight: ArrayLike,
    query_weight: ArrayLike,
    num_periods: int,
    num_heads: int,
    scale: float,
):
    """Fused time semantics-level attention (Eqs. 13-15): one graph node.

    ``flat`` holds the per-period pair embeddings stacked period-major,
    shape ``(P*K, dim)``.  Returns ``(out, weights)`` where ``out`` is the
    ``(K, dim)`` attention-mixed embedding (relu applied) and ``weights``
    the plain-numpy ``(P, K, H)`` attention distribution over periods (the
    interpretability signal; not differentiated through separately).

    Numerically identical to the composed ``key_proj``/``query_proj``/
    ``softmax(axis=0)`` path -- and to the frozen-snapshot scorer in
    :mod:`repro.serve`, which re-implements the same expressions on plain
    numpy -- but backpropagates in five large fused passes instead of ~15
    per-node steps.
    """
    t = as_tensor(flat)
    t_wk = as_tensor(key_weight)
    t_wq = as_tensor(query_weight)
    pk, dim = t.shape
    k = pk // num_periods
    head_dim = dim // num_heads

    keys = (t.data @ t_wk.data).reshape(num_periods, k, num_heads, head_dim)
    queries = (t.data @ t_wq.data).reshape(num_periods, k, num_heads, head_dim)
    scores = np.einsum("pkhd,pkhd->pkh", keys, queries) * scale  # (P, K, H)
    shifted = scores - scores.max(axis=0, keepdims=True)
    exp = np.exp(shifted)
    weights = exp / exp.sum(axis=0, keepdims=True)
    mixed = np.einsum("pkhd,pkh->khd", keys, weights)  # (K, H, hd)
    out_flat = mixed.reshape(k, dim)
    pos = out_flat > 0
    value = out_flat * pos

    def backward(grad: np.ndarray):
        g = (grad * pos).reshape(k, num_heads, head_dim)
        g_w = np.einsum("pkhd,khd->pkh", keys, g)  # (P, K, H)
        g_keys = weights[..., None] * g[None]
        inner = (weights * g_w).sum(axis=0, keepdims=True)
        g_s = weights * (g_w - inner)
        g_s *= scale
        g_keys += queries * g_s[..., None]
        g_queries = keys * g_s[..., None]
        gk = g_keys.reshape(pk, dim)
        gq = g_queries.reshape(pk, dim)
        out = []
        if t.requires_grad:
            out.append((t, gk @ t_wk.data.T + gq @ t_wq.data.T))
        if t_wk.requires_grad:
            out.append((t_wk, t.data.T @ gk))
        if t_wq.requires_grad:
            out.append((t_wq, t.data.T @ gq))
        return out

    return Tensor(value, parents=(t, t_wk, t_wq), backward=backward), weights


def softmax(tensor: ArrayLike, axis: int = -1) -> Tensor:
    """Standard softmax along ``axis`` (differentiable, stabilised)."""
    t = as_tensor(tensor)
    shifted = t.data - t.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        inner = (grad * value).sum(axis=axis, keepdims=True)
        return ((t, value * (grad - inner)),)

    return Tensor(value, parents=(t,), backward=backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select (condition is a constant boolean array)."""
    cond = np.asarray(condition, dtype=bool)
    ta, tb = as_tensor(a), as_tensor(b)

    def backward(grad: np.ndarray):
        return (
            (ta, unbroadcast(np.where(cond, grad, 0.0), ta.shape)),
            (tb, unbroadcast(np.where(cond, 0.0, grad), tb.shape)),
        )

    return Tensor(
        np.where(cond, ta.data, tb.data), parents=(ta, tb), backward=backward
    )


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
