"""Functional operations on :class:`~repro.tensor.Tensor`.

Besides the usual dense ops (:func:`concat`, :func:`softmax`, ...) this
module provides the *segment* operations that make graph neural networks
practical on a numpy backend:

* :func:`gather_rows` — select node rows by edge endpoint indices;
* :func:`segment_sum` / :func:`segment_mean` — scatter-add edge messages back
  to node slots;
* :func:`segment_softmax` — softmax of attention scores *within* each target
  node's neighbourhood (variable neighbourhood sizes, no padding).

All segment ops take an integer ``segment_ids`` array aligned with axis 0 of
the data and a ``num_segments`` total, mirroring the message-passing pattern
``messages = gather_rows(h, src); out = segment_sum(messages, dst, n)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import ArrayLike, Tensor, as_tensor, unbroadcast


def concat(tensors: Sequence[ArrayLike], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    ts = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        pieces = np.split(grad, splits, axis=axis)
        return tuple(zip(ts, pieces))

    return Tensor(data, parents=tuple(ts), backward=backward)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    ts = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in ts], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(ts), axis=axis)
        return tuple(
            (t, np.squeeze(piece, axis=axis)) for t, piece in zip(ts, pieces)
        )

    return Tensor(data, parents=tuple(ts), backward=backward)


def gather_rows(tensor: ArrayLike, indices: np.ndarray) -> Tensor:
    """Select rows ``tensor[indices]`` along axis 0 (differentiable).

    ``indices`` may repeat; the backward pass scatter-adds into the source.
    """
    t = as_tensor(tensor)
    idx = np.asarray(indices, dtype=np.int64)
    shape = t.shape

    def backward(grad: np.ndarray):
        full = np.zeros(shape, dtype=np.float64)
        np.add.at(full, idx, grad)
        return ((t, full),)

    return Tensor(t.data[idx], parents=(t,), backward=backward)


def segment_sum(data: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``data`` into ``num_segments`` buckets by ``segment_ids``."""
    t = as_tensor(data)
    ids = np.asarray(segment_ids, dtype=np.int64)
    if ids.shape[0] != t.shape[0]:
        raise ValueError(
            f"segment_ids length {ids.shape[0]} does not match data rows "
            f"{t.shape[0]}"
        )
    result = np.zeros((num_segments,) + t.shape[1:], dtype=np.float64)
    np.add.at(result, ids, t.data)

    def backward(grad: np.ndarray):
        return ((t, grad[ids]),)

    return Tensor(result, parents=(t,), backward=backward)


def segment_counts(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows mapped to each segment (plain numpy, no autograd)."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    return np.bincount(ids, minlength=num_segments).astype(np.float64)


def segment_mean(data: ArrayLike, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zeros."""
    t = as_tensor(data)
    counts = segment_counts(segment_ids, num_segments)
    denom = np.maximum(counts, 1.0)
    summed = segment_sum(t, segment_ids, num_segments)
    if summed.data.ndim > 1:
        denom = denom.reshape((-1,) + (1,) * (summed.data.ndim - 1))
    return summed * Tensor(1.0 / denom)


def segment_softmax(
    scores: ArrayLike, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """Softmax of ``scores`` computed independently within each segment.

    ``scores`` has shape ``(E,)`` or ``(E, H)`` (per-head scores); the softmax
    normalises over all rows sharing a segment id, per trailing column.
    Numerically stabilised by subtracting the per-segment maximum.
    """
    t = as_tensor(scores)
    ids = np.asarray(segment_ids, dtype=np.int64)
    data = t.data
    squeeze = False
    if data.ndim == 1:
        data = data[:, None]
        squeeze = True

    # Per-segment max for numerical stability (constant wrt gradient).
    seg_max = np.full((num_segments, data.shape[1]), -np.inf)
    np.maximum.at(seg_max, ids, data)
    shifted = data - seg_max[ids]
    exp = np.exp(shifted)
    seg_sum = np.zeros((num_segments, data.shape[1]), dtype=np.float64)
    np.add.at(seg_sum, ids, exp)
    weights = exp / seg_sum[ids]
    value = weights[:, 0] if squeeze else weights

    def backward(grad: np.ndarray):
        g = grad[:, None] if squeeze else grad
        # d softmax: w * (g - sum_j w_j g_j) within each segment.
        weighted = np.zeros((num_segments, data.shape[1]), dtype=np.float64)
        np.add.at(weighted, ids, weights * g)
        local = weights * (g - weighted[ids])
        return ((t, local[:, 0] if squeeze else local),)

    return Tensor(value, parents=(t,), backward=backward)


def softmax(tensor: ArrayLike, axis: int = -1) -> Tensor:
    """Standard softmax along ``axis`` (differentiable, stabilised)."""
    t = as_tensor(tensor)
    shifted = t.data - t.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        inner = (grad * value).sum(axis=axis, keepdims=True)
        return ((t, value * (grad - inner)),)

    return Tensor(value, parents=(t,), backward=backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select (condition is a constant boolean array)."""
    cond = np.asarray(condition, dtype=bool)
    ta, tb = as_tensor(a), as_tensor(b)

    def backward(grad: np.ndarray):
        return (
            (ta, unbroadcast(np.where(cond, grad, 0.0), ta.shape)),
            (tb, unbroadcast(np.where(cond, 0.0, grad), tb.shape)),
        )

    return Tensor(
        np.where(cond, ta.data, tb.data), parents=(ta, tb), backward=backward
    )


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
