"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, the computational substrate
for every neural model in this repository (the paper's reference
implementation uses PyTorch; this is a self-contained replacement).

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations used
to produce it.  Calling :meth:`Tensor.backward` on a result walks the
recorded graph in reverse topological order and accumulates gradients into
every tensor created with ``requires_grad=True``.

Design note: each op's backward is a closure that receives the output
gradient and *returns* ``(parent, parent_grad)`` pairs.  Closures capture
only their parents and local constants -- never the output tensor -- so a
discarded graph is reclaimed by reference counting alone, without waiting
for the cycle collector (important for training loops that build thousands
of small graphs).

Broadcasting follows numpy semantics; gradients of broadcast operands are
reduced back to the operand's shape (see :func:`unbroadcast`).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import plan as _plan
from . import pool as _pool

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# A backward rule maps the output gradient to (parent, gradient) pairs.
BackwardRule = Callable[[np.ndarray], Iterable[Tuple["Tensor", np.ndarray]]]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Inverse of numpy broadcasting: axes that were added are summed away and
    axes that were stretched from size 1 are summed back to size 1.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


def _bshape(a: np.ndarray, b: np.ndarray) -> Tuple[int, ...]:
    """Result shape of a broadcast binary op (fast path for equal shapes)."""
    if a.shape == b.shape:
        return a.shape
    return np.broadcast_shapes(a.shape, b.shape)


def _accumulate_leaf(node: "Tensor", node_grad: np.ndarray, pooled: bool) -> None:
    """Fold ``node_grad`` into a leaf's ``.grad`` (reusing buffers if pooled)."""
    if node.grad is None:
        if pooled:
            buf = node._grad_buf
            node._grad_buf = None
            if buf is not None and buf.shape == node_grad.shape:
                # The buffer parked by zero_grad: overwrite in place
                # (bit-for-bit equal to node_grad.copy()).
                np.copyto(buf, node_grad)
                node.grad = buf
                return
        node.grad = node_grad.copy()
    elif pooled:
        # The leaf's .grad is exclusively owned (created by copy/copyto
        # above), so in-place accumulation is safe and bit-identical.
        np.add(node.grad, node_grad, out=node.grad)
    else:
        node.grad = node.grad + node_grad


def _emit_ufunc2(ufunc, x: np.ndarray, y: np.ndarray, dst: np.ndarray) -> None:
    """Step-capture thunk for a binary ufunc: same kernel, out= in place."""
    _plan.emit(lambda: ufunc(x, y, out=dst))


def _emit_ufunc1(ufunc, x: np.ndarray, dst: np.ndarray) -> None:
    _plan.emit(lambda: ufunc(x, out=dst))


class Tensor:
    """A numpy array plus the bookkeeping for reverse-mode autodiff."""

    __slots__ = (
        "data",
        "grad",
        "_grad_buf",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "__weakref__",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Optional[BackwardRule] = None,
        name: str = "",
    ) -> None:
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self._grad_buf: Optional[np.ndarray] = None
        self.requires_grad: bool = requires_grad or any(
            p.requires_grad for p in parents
        )
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward: Optional[BackwardRule] = backward
        self.name = name
        if backward is not None and _plan._TRACE is not None:
            # Step capture coverage: every tape node must be matched by a
            # replay-thunk emission at its op site (see repro.tensor.plan).
            _plan._TRACE.count_node()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        # With the buffer pool on, park the gradient buffer instead of
        # dropping it: the next backward overwrites it in place
        # (np.copyto), so leaf gradients stop allocating at steady state.
        if self.grad is not None and _pool.buffer_pool_enabled():
            self._grad_buf = self.grad
        self.grad = None

    def release_data(self) -> None:
        """Drop this interior node's value array, keeping the autograd node.

        Tape slimming for op outputs that are consumed at graph-build time
        only: once every forward consumer has read ``.data`` and no
        backward rule re-reads it (matmul-style rules read their
        *parents'* data; scatter-style rules read only gradients), the
        value is dead weight pinned for the rest of the step.  The data is
        replaced by a zero-stride placeholder of the same shape and dtype,
        so the (pooled) buffer recycles immediately mid-forward while
        shape introspection keeps working; an accidental later read sees
        deterministic zeros, not freed memory.

        The caller asserts the no-later-read contract.  No-op on leaves
        (their data is the model state) and with the buffer pool disabled,
        which keeps the reference allocation path untouched.
        """
        if self._backward is None or not _pool.buffer_pool_enabled():
            return
        self.data = np.broadcast_to(
            np.zeros((), dtype=self.data.dtype), self.data.shape
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autograd driver
    # ------------------------------------------------------------------
    def backward(
        self, grad: Optional[np.ndarray] = None, free_graph: bool = False
    ) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so ``loss.backward()`` works for scalar
        losses).  Gradients accumulate into ``.grad`` of every reachable
        tensor with ``requires_grad=True``.

        With ``free_graph=True`` the tape is retired as it is consumed:
        each node's ``_parents``/``_backward`` links are dropped right
        after its gradient has been propagated, so intermediate tensors
        (and their pooled buffers) are reclaimed *during* the walk --
        backward gradients recycle the forward pass's buffers instead of
        stacking on top of the full tape -- and peak memory stops scaling
        with graph depth.  Retired tensors keep ``data`` and ``grad`` but
        cannot be backpropagated through again.

        With the buffer pool on (``O2_BUFFER_POOL``, default), gradient
        fan-in accumulates in place into driver-owned pooled buffers
        (``np.add(g, pg, out=g)``) -- bit-for-bit identical to the
        reference ``g + pg`` binding, without the per-accumulation
        allocation.  An accumulator is only ever mutated when this driver
        created it; gradients handed back by op closures (which may alias
        the output gradient or each other) are never written to.
        """
        pooled = _pool.buffer_pool_enabled()
        seed_owned = False
        if grad is None:
            if pooled:
                grad = _pool.empty(self.data.shape, tag="seed-grad")
                grad.fill(1.0)
                seed_owned = True
            else:
                grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}"
                )

        order = self._topological_order()
        grads: dict = {id(self): grad}
        # Keys whose accumulator buffer was created by this driver and is
        # therefore safe to mutate in place.
        owned: set = {id(self)} if seed_owned else set()
        for i in range(len(order)):
            node = order[i]
            key = id(node)
            node_grad = grads.pop(key, None)
            owned.discard(key)
            if node_grad is not None:
                if node._backward is None:
                    if node.requires_grad:
                        _accumulate_leaf(node, node_grad, pooled)
                else:
                    for parent, parent_grad in node._backward(node_grad):
                        if not parent.requires_grad:
                            continue
                        pkey = id(parent)
                        existing = grads.get(pkey)
                        if existing is None:
                            grads[pkey] = parent_grad
                        elif pooled:
                            if pkey in owned:
                                np.add(existing, parent_grad, out=existing)
                            else:
                                buf = _pool.empty(
                                    existing.shape, tag="grad-accum"
                                )
                                np.add(existing, parent_grad, out=buf)
                                grads[pkey] = buf
                                owned.add(pkey)
                        else:
                            grads[pkey] = existing + parent_grad
            if free_graph:
                node._backward = None
                node._parents = ()
                order[i] = None
            # Drop the loop references so a retired node (and its pooled
            # buffers) frees before the next iteration's allocations.
            node = None
            node_grad = None

    def _topological_order(self) -> List["Tensor"]:
        """Reverse topological order (this tensor first)."""
        order: List[Tensor] = []
        visited: set = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Binary arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            # Gradients are only materialised for parents that need them:
            # constants (edge attributes, dropout masks, feature matrices)
            # are everywhere in the hot path and their grads would be
            # computed only to be discarded by the driver.
            out = []
            if a.requires_grad:
                out.append((a, unbroadcast(grad, a.shape)))
            if b.requires_grad:
                out.append((b, unbroadcast(grad, b.shape)))
            return out

        value = np.add(
            a.data, b.data, out=_pool.out_buffer(_bshape(a.data, b.data), tag="add")
        )
        out = Tensor(value, parents=(a, b), backward=backward)
        if _plan._TRACE is not None:
            _emit_ufunc2(np.add, a.data, b.data, out.data)
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            out = []
            if a.requires_grad:
                out.append((a, unbroadcast(grad, a.shape)))
            if b.requires_grad:
                neg = np.negative(
                    grad, out=_pool.out_buffer(grad.shape, tag="sub-bwd")
                )
                out.append((b, unbroadcast(neg, b.shape)))
            return out

        value = np.subtract(
            a.data, b.data, out=_pool.out_buffer(_bshape(a.data, b.data), tag="sub")
        )
        out = Tensor(value, parents=(a, b), backward=backward)
        if _plan._TRACE is not None:
            _emit_ufunc2(np.subtract, a.data, b.data, out.data)
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            out = []
            if a.requires_grad:
                ga = np.multiply(
                    grad,
                    b.data,
                    out=_pool.out_buffer(_bshape(grad, b.data), tag="mul-bwd"),
                )
                out.append((a, unbroadcast(ga, a.shape)))
            if b.requires_grad:
                gb = np.multiply(
                    grad,
                    a.data,
                    out=_pool.out_buffer(_bshape(grad, a.data), tag="mul-bwd"),
                )
                out.append((b, unbroadcast(gb, b.shape)))
            return out

        value = np.multiply(
            a.data, b.data, out=_pool.out_buffer(_bshape(a.data, b.data), tag="mul")
        )
        out = Tensor(value, parents=(a, b), backward=backward)
        if _plan._TRACE is not None:
            _emit_ufunc2(np.multiply, a.data, b.data, out.data)
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            out = []
            if a.requires_grad:
                ga = np.divide(
                    grad,
                    b.data,
                    out=_pool.out_buffer(_bshape(grad, b.data), tag="div-bwd"),
                )
                out.append((a, unbroadcast(ga, a.shape)))
            if b.requires_grad:
                out.append((b, unbroadcast(-grad * a.data / (b.data**2), b.shape)))
            return out

        value = np.divide(
            a.data, b.data, out=_pool.out_buffer(_bshape(a.data, b.data), tag="div")
        )
        out = Tensor(value, parents=(a, b), backward=backward)
        if _plan._TRACE is not None:
            _emit_ufunc2(np.divide, a.data, b.data, out.data)
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def backward(grad: np.ndarray):
            neg = np.negative(grad, out=_pool.out_buffer(grad.shape, tag="neg-bwd"))
            return ((a, neg),)

        value = np.negative(a.data, out=_pool.out_buffer(a.shape, tag="neg"))
        out = Tensor(value, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            _emit_ufunc1(np.negative, a.data, out.data)
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        a = self

        def backward(grad: np.ndarray):
            return ((a, grad * exponent * a.data ** (exponent - 1)),)

        out = Tensor(a.data**exponent, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            # ``**`` takes numpy's scalar-power fast paths (x*x for 2 etc.);
            # re-running the original expression keeps that bit-for-bit.
            x, dst = a.data, out.data
            _plan.emit(lambda: np.copyto(dst, x**exponent))
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting 1-D, 2-D and batched operands."""
        other = as_tensor(other)
        a, b = self, other

        def backward(grad: np.ndarray):
            a_data, b_data = a.data, b.data
            need_a, need_b = a.requires_grad, b.requires_grad
            out = []
            if a_data.ndim == 1 and b_data.ndim == 1:
                if need_a:
                    out.append((a, grad * b_data))
                if need_b:
                    out.append((b, grad * a_data))
            elif a_data.ndim == 1:
                if need_a:
                    out.append((a, grad @ b_data.T))
                if need_b:
                    out.append((b, np.outer(a_data, grad)))
            elif b_data.ndim == 1:
                if need_a:
                    out.append((a, np.outer(grad, b_data)))
                if need_b:
                    out.append((b, a_data.T @ grad))
            elif a_data.ndim == 2 and b_data.ndim == 2:
                if need_a:
                    ga = np.matmul(
                        grad,
                        b_data.T,
                        out=_pool.out_buffer(a_data.shape, tag="matmul-bwd"),
                    )
                    out.append((a, ga))
                if need_b:
                    gb = np.matmul(
                        a_data.T,
                        grad,
                        out=_pool.out_buffer(b_data.shape, tag="matmul-bwd"),
                    )
                    out.append((b, gb))
            else:
                if need_a:
                    ga = grad @ np.swapaxes(b_data, -1, -2)
                    out.append((a, unbroadcast(ga, a_data.shape)))
                if need_b:
                    gb = np.swapaxes(a_data, -1, -2) @ grad
                    out.append((b, unbroadcast(gb, b_data.shape)))
            return out

        if a.data.ndim == 2 and b.data.ndim == 2:
            value = np.matmul(
                a.data,
                b.data,
                out=_pool.out_buffer(
                    (a.data.shape[0], b.data.shape[1]), tag="matmul"
                ),
            )
        else:
            value = a.data @ b.data
        out = Tensor(value, parents=(a, b), backward=backward)
        if _plan._TRACE is not None:
            x, y, dst = a.data, b.data, out.data
            if x.ndim == 2 and y.ndim == 2:
                _plan.emit(lambda: np.matmul(x, y, out=dst))
            else:
                _plan.emit(lambda: np.copyto(dst, x @ y))
        return out

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        value = np.exp(a.data, out=_pool.out_buffer(a.shape, tag="exp"))

        def backward(grad: np.ndarray):
            g = np.multiply(
                grad, value, out=_pool.out_buffer(grad.shape, tag="exp-bwd")
            )
            return ((a, g),)

        out = Tensor(value, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            # The closure reads the captured ``value``; refresh that object.
            if isinstance(value, np.ndarray):
                _emit_ufunc1(np.exp, a.data, value)
            else:
                _plan.poison("exp of a 0-d tensor")
        return out

    def log(self) -> "Tensor":
        a = self

        def backward(grad: np.ndarray):
            return ((a, grad / a.data),)

        out = Tensor(np.log(a.data), parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            _emit_ufunc1(np.log, a.data, out.data)
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        a = self

        def backward(grad: np.ndarray):
            return ((a, grad * np.sign(a.data)),)

        out = Tensor(np.abs(a.data), parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            _emit_ufunc1(np.absolute, a.data, out.data)
        return out

    def relu(self) -> "Tensor":
        a = self
        mask = np.greater(
            a.data, 0, out=_pool.out_buffer(a.shape, np.bool_, tag="relu-mask")
        )

        def backward(grad: np.ndarray):
            g = np.multiply(
                grad, mask, out=_pool.out_buffer(grad.shape, tag="relu-bwd")
            )
            return ((a, g),)

        value = np.multiply(
            a.data, mask, out=_pool.out_buffer(a.shape, tag="relu")
        )
        out = Tensor(value, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            if isinstance(mask, np.ndarray):
                x, dst = a.data, out.data

                def _replay_relu():
                    np.greater(x, 0, out=mask)
                    np.multiply(x, mask, out=dst)

                _plan.emit(_replay_relu)
            else:
                _plan.poison("relu of a 0-d tensor")
        return out

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        a = self
        scale = np.where(a.data > 0, 1.0, slope)

        def backward(grad: np.ndarray):
            g = np.multiply(
                grad, scale, out=_pool.out_buffer(grad.shape, tag="lrelu-bwd")
            )
            return ((a, g),)

        value = np.multiply(
            a.data, scale, out=_pool.out_buffer(a.shape, tag="lrelu")
        )
        out = Tensor(value, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            if isinstance(scale, np.ndarray):
                x, dst = a.data, out.data

                def _replay_lrelu():
                    np.copyto(scale, np.where(x > 0, 1.0, slope))
                    np.multiply(x, scale, out=dst)

                _plan.emit(_replay_lrelu)
            else:
                _plan.poison("leaky_relu of a 0-d tensor")
        return out

    def sigmoid(self) -> "Tensor":
        a = self
        value = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))

        def backward(grad: np.ndarray):
            return ((a, grad * value * (1.0 - value)),)

        out = Tensor(value, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            x = a.data
            _plan.emit_refresh(
                value, lambda: 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
            )
        return out

    def tanh(self) -> "Tensor":
        a = self
        value = np.tanh(a.data)

        def backward(grad: np.ndarray):
            return ((a, grad * (1.0 - value**2)),)

        out = Tensor(value, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            if isinstance(value, np.ndarray):
                _emit_ufunc1(np.tanh, a.data, value)
            else:
                _plan.poison("tanh of a 0-d tensor")
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        shape = a.shape

        def backward(grad: np.ndarray):
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % len(shape) for ax in axes)
                for ax in sorted(axes):
                    g = np.expand_dims(g, axis=ax)
            buf = _pool.out_buffer(shape, tag="sum-bwd")
            if buf is None:
                return ((a, np.broadcast_to(g, shape).copy()),)
            np.copyto(buf, g)  # broadcasting copy, == broadcast_to().copy()
            return ((a, buf),)

        out = Tensor(
            a.data.sum(axis=axis, keepdims=keepdims), parents=(a,), backward=backward
        )
        if _plan._TRACE is not None:
            x, dst = a.data, out.data
            _plan.emit(lambda: np.sum(x, axis=axis, keepdims=keepdims, out=dst))
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        shape = a.shape
        value = a.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g, v = grad, value
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(ax % len(shape) for ax in axes)
                for ax in sorted(axes):
                    g = np.expand_dims(g, axis=ax)
                    v = np.expand_dims(v, axis=ax)
            mask = a.data == v
            # Split gradient evenly among ties (subgradient convention).
            counts = (
                mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            )
            return ((a, np.where(mask, g / counts, 0.0)),)

        out = Tensor(value, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            # The closure reads the captured ``value`` (max of a 0-d or
            # full reduction yields a scalar -> not refreshable -> poison).
            x = a.data
            _plan.emit_refresh(
                value, lambda: x.max(axis=axis, keepdims=keepdims)
            )
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        original = a.shape

        def backward(grad: np.ndarray):
            return ((a, grad.reshape(original)),)

        out = Tensor(a.data.reshape(shape), parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            x = a.data
            _plan.emit_view(out.data, x, lambda: x.reshape(shape))
        return out

    def transpose(self, *axes: int) -> "Tensor":
        a = self
        if not axes:
            axes_seq: Optional[Tuple[int, ...]] = None
            data = a.data.T
        else:
            if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
                axes = tuple(axes[0])
            axes_seq = tuple(axes)
            data = a.data.transpose(axes_seq)

        def backward(grad: np.ndarray):
            if axes_seq is None:
                return ((a, grad.T),)
            return ((a, grad.transpose(np.argsort(axes_seq))),)

        out = Tensor(data, parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            _plan.emit_view(out.data, a.data)
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def expand_dims(self, axis: int) -> "Tensor":
        a = self

        def backward(grad: np.ndarray):
            return ((a, np.squeeze(grad, axis=axis)),)

        out = Tensor(np.expand_dims(a.data, axis), parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            _plan.emit_view(out.data, a.data)
        return out

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        a = self
        original = a.shape

        def backward(grad: np.ndarray):
            return ((a, grad.reshape(original)),)

        out = Tensor(np.squeeze(a.data, axis=axis), parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            _plan.emit_view(out.data, a.data)
        return out

    def __getitem__(self, index) -> "Tensor":
        a = self
        shape = a.shape
        # Slices and plain ints cannot alias, so the scatter-add collapses
        # to a direct in-place add; only fancy (array) indices need the
        # slow duplicate-aware np.add.at.
        simple = isinstance(index, (int, slice)) or (
            isinstance(index, tuple)
            and all(isinstance(i, (int, slice)) for i in index)
        )

        def backward(grad: np.ndarray):
            full = _pool.zeros(shape, tag="getitem-bwd")
            if simple:
                full[index] += grad
            else:
                np.add.at(full, index, grad)
            return ((a, full),)

        out = Tensor(a.data[index], parents=(a,), backward=backward)
        if _plan._TRACE is not None:
            x = a.data
            _plan.emit_view(out.data, x, lambda: x[index])
        return out
