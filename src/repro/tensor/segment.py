"""Segment-kernel fast path: precomputed sort plans for scatter reductions.

``np.add.at`` / ``np.maximum.at`` (the reference implementation of the
segment ops in :mod:`repro.tensor.ops`) dispatch one scalar inner loop per
indexed element, which makes them 10-100x slower than the vectorised
``ufunc.reduceat`` reductions.  The same reduction can be computed by

1. sorting the rows by segment id (a permutation that depends only on the
   ``segment_ids`` array, not on the data),
2. reducing each contiguous run with ``np.add.reduceat`` /
   ``np.maximum.reduceat``,
3. scattering the per-run results into the occupied segment slots.

:class:`SegmentPlan` precomputes step 1 and the run boundaries of step 2
for a fixed ``segment_ids`` array.  Graph edge-index arrays are immutable
and reused for every layer, period and epoch, so plans are cached in a
small LRU keyed by *array identity* (the cache holds a strong reference to
the ids array, which keeps ``id()`` stable for the lifetime of the entry).

Within one segment a stable sort preserves the original row order, and
``reduceat`` accumulates runs left to right exactly like ``ufunc.at`` does,
so the fast path is numerically equivalent to the reference kernels (tested
to 1e-12; bit-for-bit in practice).

The module-level switch :func:`set_fast_kernels` (env ``O2_FAST_KERNELS``,
default on) lets benchmarks and tests pin the fast path against the
pre-plan reference kernels.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

import numpy as np

from .. import runtime as _runtime
from . import pool as _pool

__all__ = [
    "SegmentPlan",
    "get_plan",
    "plan_cache_info",
    "clear_plan_cache",
    "invalidate_plans_for",
    "fast_kernels_enabled",
    "set_fast_kernels",
    "use_fast_kernels",
]


class SegmentPlan:
    """Precomputed sort permutation + run boundaries for one ids array.

    Attributes
    ----------
    perm:
        Stable argsort of ``segment_ids`` (``None`` when already sorted --
        most graph edge lists are built target-major, so the gather is
        skipped entirely).
    starts:
        Start offset of each contiguous run in the sorted order (the
        ``indices`` argument of ``ufunc.reduceat``).
    occupied:
        The segment id of each run -- segments with no rows simply have no
        run and keep the fill value in the output.
    run_of_row:
        For each sorted row, the index of its run (used to broadcast
        per-run values back to rows without a second sort).
    """

    __slots__ = (
        "segment_ids",
        "num_segments",
        "num_rows",
        "perm",
        "_inv_perm",
        "starts",
        "occupied",
        "run_of_row",
        "counts",
    )

    def __init__(self, segment_ids: np.ndarray, num_segments: int) -> None:
        ids = np.asarray(segment_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError(f"segment_ids must be 1-D, got shape {ids.shape}")
        if ids.size and (ids.min() < 0 or ids.max() >= num_segments):
            raise ValueError(
                f"segment ids must lie in [0, {num_segments}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        self.segment_ids = ids
        self.num_segments = int(num_segments)
        self.num_rows = ids.shape[0]
        self._inv_perm: Optional[np.ndarray] = None

        if self.num_rows == 0:
            self.perm = None
            self.starts = np.zeros(0, dtype=np.int64)
            self.occupied = np.zeros(0, dtype=np.int64)
            self.run_of_row = np.zeros(0, dtype=np.int64)
            self.counts = np.zeros(num_segments, dtype=np.int64)
            return

        if np.all(ids[1:] >= ids[:-1]):
            self.perm = None  # already sorted: reduce in place
            sorted_ids = ids
        else:
            self.perm = np.argsort(ids, kind="stable")
            sorted_ids = ids[self.perm]
        boundary = np.empty(self.num_rows, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=boundary[1:])
        self.starts = np.flatnonzero(boundary)
        self.occupied = sorted_ids[self.starts]
        self.run_of_row = np.cumsum(boundary) - 1
        self.counts = np.bincount(ids, minlength=num_segments)

    # ------------------------------------------------------------------
    # Sorted-space primitives (let callers amortise one permutation over
    # several reductions, e.g. the max + sum of a segment softmax).
    # ------------------------------------------------------------------
    def sort(self, values: np.ndarray) -> np.ndarray:
        """Rows of ``values`` permuted into segment-sorted order."""
        if self.perm is None:
            return values
        return _pool.take_rows(values, self.perm, tag="plan-sort")

    def unsort(self, sorted_values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`sort`."""
        if self.perm is None:
            return sorted_values
        if self._inv_perm is None:
            self._inv_perm = np.argsort(self.perm, kind="stable")
        return _pool.take_rows(sorted_values, self._inv_perm, tag="plan-unsort")

    def sum_sorted(self, sorted_values: np.ndarray) -> np.ndarray:
        """Per-run sums of already-sorted rows, shape ``(num_runs, ...)``."""
        if self.num_rows == 0:
            return np.zeros((0,) + sorted_values.shape[1:], dtype=np.float64)
        shape = (len(self.starts),) + sorted_values.shape[1:]
        return np.add.reduceat(
            sorted_values,
            self.starts,
            axis=0,
            out=_pool.out_buffer(shape, sorted_values.dtype, tag="plan-reduce"),
        )

    def max_sorted(self, sorted_values: np.ndarray) -> np.ndarray:
        """Per-run maxima of already-sorted rows."""
        if self.num_rows == 0:
            return np.zeros((0,) + sorted_values.shape[1:], dtype=np.float64)
        shape = (len(self.starts),) + sorted_values.shape[1:]
        return np.maximum.reduceat(
            sorted_values,
            self.starts,
            axis=0,
            out=_pool.out_buffer(shape, sorted_values.dtype, tag="plan-reduce"),
        )

    def spread_runs(self, per_run: np.ndarray) -> np.ndarray:
        """Broadcast per-run values back onto sorted rows."""
        return _pool.take_rows(per_run, self.run_of_row, tag="plan-spread")

    # ------------------------------------------------------------------
    # Segment-space reductions (the drop-in ``ufunc.at`` replacements).
    # ------------------------------------------------------------------
    def sum(self, values: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """``np.add.at``-equivalent scatter-add, shape ``(num_segments, ...)``.

        ``out`` (zeroed by the caller, or overwritten here) lets band-sliced
        consumers (the sharded training backward) reduce straight into a row
        window of a full-table gradient buffer instead of allocating a
        band-sized temporary per call.  Values are byte-identical either
        way: the scatter writes each occupied segment's run-sum exactly
        once.
        """
        shape = (self.num_segments,) + values.shape[1:]
        if out is None:
            out = _pool.zeros(shape, tag="segment-sum")
        else:
            if out.shape != shape:
                raise ValueError(f"out shape {out.shape} != {shape}")
            out.fill(0.0)
        if self.num_rows:
            out[self.occupied] = self.sum_sorted(self.sort(values))
        return out

    def max(self, values: np.ndarray, fill: float = -np.inf) -> np.ndarray:
        """``np.maximum.at``-equivalent scatter-max (``fill`` for empties)."""
        shape = (self.num_segments,) + values.shape[1:]
        out = _pool.empty(shape, tag="segment-max")
        out.fill(fill)
        if self.num_rows:
            out[self.occupied] = self.max_sorted(self.sort(values))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentPlan(rows={self.num_rows}, segments={self.num_segments}, "
            f"runs={len(self.starts)}, presorted={self.perm is None})"
        )


# ----------------------------------------------------------------------
# Plan cache: LRU keyed by (id(ids), num_segments).  Entries keep a strong
# reference to the ids array, so a cached id() cannot be recycled; after
# eviction a recycled id simply misses.  Callers must treat segment-id
# arrays as immutable (graph edge indices never change in place).
# ----------------------------------------------------------------------
_PLAN_CACHE_SIZE = 256
# key -> (ids array, plan): the stored array reference pins id(ids) for the
# lifetime of the entry and lets lookups verify the identity match.
_plan_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_plan_lock = threading.Lock()
_plan_hits = 0
_plan_misses = 0


def get_plan(segment_ids: np.ndarray, num_segments: int) -> SegmentPlan:
    """Fetch (or build and cache) the :class:`SegmentPlan` for an ids array."""
    global _plan_hits, _plan_misses
    ids = np.asarray(segment_ids)
    key = (id(ids), int(num_segments))
    with _plan_lock:
        entry = _plan_cache.get(key)
        if entry is not None and entry[0] is ids:
            _plan_cache.move_to_end(key)
            _plan_hits += 1
            return entry[1]
    plan = SegmentPlan(ids, num_segments)
    with _plan_lock:
        _plan_misses += 1
        _plan_cache[key] = (ids, plan)
        _plan_cache.move_to_end(key)
        while len(_plan_cache) > _PLAN_CACHE_SIZE:
            _plan_cache.popitem(last=False)
    return plan


def plan_cache_info() -> dict:
    """Cache statistics (size/hits/misses) for tests and diagnostics."""
    with _plan_lock:
        return {
            "size": len(_plan_cache),
            "maxsize": _PLAN_CACHE_SIZE,
            "hits": _plan_hits,
            "misses": _plan_misses,
        }


def clear_plan_cache() -> None:
    global _plan_hits, _plan_misses
    with _plan_lock:
        _plan_cache.clear()
        _plan_hits = 0
        _plan_misses = 0


def invalidate_plans_for(array: np.ndarray) -> int:
    """Drop every cached plan built over ``array`` (matched by identity).

    The cache's immutability contract has one sanctioned exception: the
    compiled-step bind hooks refresh batch-derived index arrays *in
    place* at replay (see :mod:`repro.tensor.plan`).  They call this
    first, so backward closures rebuild plans over the new contents —
    exactly what eager execution does for each fresh batch array.
    """
    dead = 0
    with _plan_lock:
        for key in [k for k, e in _plan_cache.items() if e[0] is array]:
            del _plan_cache[key]
            dead += 1
    return dead


# ----------------------------------------------------------------------
# Fast-path switch.
# ----------------------------------------------------------------------
_fast_enabled = _runtime.env_flag("O2_FAST_KERNELS", True)


def fast_kernels_enabled() -> bool:
    """Whether segment ops (and dependent model fast paths) use plans."""
    return _fast_enabled


def set_fast_kernels(enabled: bool) -> bool:
    """Toggle the fast path; returns the previous setting."""
    global _fast_enabled
    previous = _fast_enabled
    _fast_enabled = bool(enabled)
    return previous


class use_fast_kernels:
    """Context manager pinning the fast-path switch (for tests/benchmarks)."""

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._previous: Optional[bool] = None

    def __enter__(self) -> "use_fast_kernels":
        self._previous = set_fast_kernels(self._enabled)
        return self

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_fast_kernels(self._previous)
