"""Runtime-compiled C kernels for the hottest segment-attention loops.

The numpy fast path (:mod:`repro.tensor.segment`) already replaces
``ufunc.at`` scatter loops with sorted ``reduceat`` reductions, but every
numpy expression still costs one full pass over the edge-sized arrays, and
a multi-head segment attention needs ~10 of them.  On the bandwidth-bound
single-core training profile those passes, not FLOPs, dominate.

This module compiles a tiny C library once per machine (cached in the
temp directory, keyed by a hash of the source) and exposes three fused
kernels that collapse the per-edge work into one or two passes:

``edge_fuse_fwd`` / ``edge_fuse_bwd``
    ``relu(pre[src] + eproj + bias)`` and its backward (mask, scatter-add
    to the source rows, bias column-sum) -- the aggregator's edge-message
    prelude.
``seg_att_fwd`` / ``seg_att_bwd``
    The per-edge bilinear scores, leaky relu, segment softmax and weighted
    segment sum of :func:`repro.tensor.ops.segment_attention` (and its
    backward), walking each segment run once in plan-sorted order.

The arithmetic follows the numpy kernels expression-for-expression in the
same left-to-right accumulation order, so results agree to the last few
ulps (well inside the 1e-9 equivalence the fast path is pinned to).

Everything is best-effort: no compiler, a failed compile, or
``O2_C_KERNELS=0`` simply leaves :func:`available` false and callers fall
back to the numpy fast path.  No third-party dependency is involved --
only ``cc`` and ``ctypes``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional

import numpy as np

from .. import runtime as _runtime
from . import pool as _pool

__all__ = ["available", "lib", "set_c_kernels"]

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

#define RESTRICT __restrict__

/* out[e,:] = relu(pre[src[e],:] + a1[i1[e],:] + a2[i2[e],:] + eproj[e,:]
                   + bias[:])
   a1/a2 (extra gathered terms, e.g. region-level capacity projections) and
   eproj may each be NULL. */
void edge_fuse_fwd(const double *RESTRICT pre, const int64_t *RESTRICT src,
                   const double *RESTRICT a1, const int64_t *RESTRICT i1,
                   const double *RESTRICT a2, const int64_t *RESTRICT i2,
                   const double *RESTRICT eproj, const double *RESTRICT bias,
                   int64_t E, int64_t F, double *RESTRICT out) {
    for (int64_t e = 0; e < E; ++e) {
        const double *p = pre + src[e] * F;
        const double *x1 = a1 ? a1 + i1[e] * F : 0;
        const double *x2 = a2 ? a2 + i2[e] * F : 0;
        const double *q = eproj ? eproj + e * F : 0;
        double *o = out + e * F;
        for (int64_t j = 0; j < F; ++j) {
            double v = p[j];
            if (x1) v += x1[j];
            if (x2) v += x2[j];
            if (q) v += q[j];
            v += bias[j];
            o[j] = v > 0.0 ? v : 0.0;
        }
    }
}

/* gmask[e,:] = grad[e,:] * (out[e,:] > 0); gpre[src[e],:] += gmask[e,:];
   g1[i1[e],:] += gmask[e,:]; g2[i2[e],:] += gmask[e,:];
   gbias[:] += gmask[e,:].  Accumulators must be pre-zeroed; g1/g2 may be
   NULL (with their index arrays). */
void edge_fuse_bwd(const double *RESTRICT grad, const double *RESTRICT out,
                   const int64_t *RESTRICT src, const int64_t *RESTRICT i1,
                   const int64_t *RESTRICT i2, int64_t E, int64_t F,
                   double *RESTRICT gmask, double *RESTRICT gpre,
                   double *RESTRICT g1, double *RESTRICT g2,
                   double *RESTRICT gbias) {
    for (int64_t e = 0; e < E; ++e) {
        const double *g = grad + e * F;
        const double *o = out + e * F;
        double *gm = gmask + e * F;
        double *gp = gpre + src[e] * F;
        double *h1 = g1 ? g1 + i1[e] * F : 0;
        double *h2 = g2 ? g2 + i2[e] * F : 0;
        for (int64_t j = 0; j < F; ++j) {
            double v = o[j] > 0.0 ? g[j] : 0.0;
            gm[j] = v;
            gp[j] += v;
            if (h1) h1[j] += v;
            if (h2) h2[j] += v;
            gbias[j] += v;
        }
    }
}

/* Segment attention forward over plan-sorted runs.

   keys   : (E, H, hd) in original edge order
   q      : (N, H, hd) per-target queries (edge-type form already folded in)
   order  : sorted-row -> original-row permutation (NULL if presorted)
   starts : run start offsets in sorted order, R entries
   occupied: target segment of each run, R entries
   weights/leaky : (E, H) outputs in original edge order
   agg    : (N, H*hd), pre-zeroed accumulator. */
void seg_att_fwd(const double *RESTRICT keys, const double *RESTRICT q,
                 const int64_t *RESTRICT order, const int64_t *RESTRICT starts,
                 const int64_t *RESTRICT occupied, int64_t R, int64_t E,
                 int64_t H, int64_t hd, double scale, double slope,
                 double *RESTRICT weights, double *RESTRICT leaky,
                 double *RESTRICT agg) {
    const int64_t D = H * hd;
    for (int64_t r = 0; r < R; ++r) {
        const int64_t lo = starts[r];
        const int64_t hi = (r + 1 < R) ? starts[r + 1] : E;
        const int64_t seg = occupied[r];
        const double *qs = q + seg * D;
        double *as = agg + seg * D;
        for (int64_t h = 0; h < H; ++h) {
            const double *qh = qs + h * hd;
            double mx = -INFINITY;
            for (int64_t i = lo; i < hi; ++i) {
                const int64_t e = order ? order[i] : i;
                const double *kh = keys + (e * H + h) * hd;
                double s = 0.0;
                for (int64_t d = 0; d < hd; ++d) s += kh[d] * qh[d];
                s *= scale;
                double lk = s > 0.0 ? 1.0 : slope;
                s *= lk;
                leaky[e * H + h] = lk;
                weights[e * H + h] = s;
                if (s > mx) mx = s;
            }
            double total = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
                const int64_t e = order ? order[i] : i;
                double w = exp(weights[e * H + h] - mx);
                weights[e * H + h] = w;
                total += w;
            }
            const double inv = 1.0 / total;
            for (int64_t i = lo; i < hi; ++i) {
                const int64_t e = order ? order[i] : i;
                const double w = weights[e * H + h] * inv;
                weights[e * H + h] = w;
                const double *kh = keys + (e * H + h) * hd;
                double *ah = as + h * hd;
                for (int64_t d = 0; d < hd; ++d) ah[d] += w * kh[d];
            }
        }
    }
}

/* Segment attention backward.  gout is the (N, H*hd) upstream gradient with
   the output relu mask already applied; gkeys (E, H, hd) is written, gq
   (N, H, hd) must be pre-zeroed. */
void seg_att_bwd(const double *RESTRICT keys, const double *RESTRICT q,
                 const double *RESTRICT weights, const double *RESTRICT leaky,
                 const double *RESTRICT gout, const int64_t *RESTRICT order,
                 const int64_t *RESTRICT starts,
                 const int64_t *RESTRICT occupied, int64_t R, int64_t E,
                 int64_t H, int64_t hd, double scale,
                 double *RESTRICT gkeys, double *RESTRICT gw_scratch,
                 double *RESTRICT gq) {
    const int64_t D = H * hd;
    for (int64_t r = 0; r < R; ++r) {
        const int64_t lo = starts[r];
        const int64_t hi = (r + 1 < R) ? starts[r + 1] : E;
        const int64_t seg = occupied[r];
        const double *gs_seg = gout + seg * D;
        double *gq_seg = gq + seg * D;
        for (int64_t h = 0; h < H; ++h) {
            const double *gh = gs_seg + h * hd;
            const double *qh = q + seg * D + h * hd;
            double inner = 0.0;
            for (int64_t i = lo; i < hi; ++i) {
                const int64_t e = order ? order[i] : i;
                const double *kh = keys + (e * H + h) * hd;
                double gw = 0.0;
                for (int64_t d = 0; d < hd; ++d) gw += gh[d] * kh[d];
                gw_scratch[e * H + h] = gw;
                inner += weights[e * H + h] * gw;
            }
            double *gqh = gq_seg + h * hd;
            for (int64_t i = lo; i < hi; ++i) {
                const int64_t e = order ? order[i] : i;
                const double w = weights[e * H + h];
                const double gs = w * (gw_scratch[e * H + h] - inner) *
                                  leaky[e * H + h] * scale;
                const double *kh = keys + (e * H + h) * hd;
                double *gk = gkeys + (e * H + h) * hd;
                for (int64_t d = 0; d < hd; ++d) {
                    gk[d] = w * gh[d] + qh[d] * gs;
                    gqh[d] += kh[d] * gs;
                }
            }
        }
    }
}
"""

_I64 = ctypes.c_int64
_PD = ctypes.POINTER(ctypes.c_double)
_PI = ctypes.POINTER(ctypes.c_int64)

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_tried = False

_enabled = _runtime.env_flag("O2_C_KERNELS", True)


def set_c_kernels(enabled: bool) -> bool:
    """Toggle the compiled kernels; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def _ptr_d(a: np.ndarray):
    return a.ctypes.data_as(_PD)


def _ptr_i(a: Optional[np.ndarray]):
    return a.ctypes.data_as(_PI) if a is not None else None


def _compile() -> Optional[ctypes.CDLL]:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    so_path = os.path.join(tempfile.gettempdir(), f"o2_ckernels_{digest}.so")
    if not os.path.exists(so_path):
        src_path = os.path.join(tempfile.gettempdir(), f"o2_ckernels_{digest}.c")
        with open(src_path, "w") as f:
            f.write(_SOURCE)
        tmp_so = so_path + f".tmp{os.getpid()}"
        cmd = [
            _runtime.env_str("CC", "cc", lower=False),
            "-O3",
            "-march=native",
            "-fno-math-errno",
            "-shared",
            "-fPIC",
            src_path,
            "-lm",
            "-o",
            tmp_so,
        ]
        try:
            subprocess.run(
                cmd,
                check=True,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                timeout=120,
            )
            os.replace(tmp_so, so_path)  # atomic: concurrent compiles race safely
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib_ = ctypes.CDLL(so_path)
    except OSError:
        return None

    lib_.edge_fuse_fwd.argtypes = [
        _PD, _PI, _PD, _PI, _PD, _PI, _PD, _PD, _I64, _I64, _PD,
    ]
    lib_.edge_fuse_bwd.argtypes = [
        _PD, _PD, _PI, _PI, _PI, _I64, _I64, _PD, _PD, _PD, _PD, _PD,
    ]
    lib_.seg_att_fwd.argtypes = [
        _PD, _PD, _PI, _PI, _PI, _I64, _I64, _I64, _I64,
        ctypes.c_double, ctypes.c_double, _PD, _PD, _PD,
    ]
    lib_.seg_att_bwd.argtypes = [
        _PD, _PD, _PD, _PD, _PD, _PI, _PI, _PI,
        _I64, _I64, _I64, _I64, ctypes.c_double, _PD, _PD, _PD,
    ]
    for fn in (lib_.edge_fuse_fwd, lib_.edge_fuse_bwd, lib_.seg_att_fwd,
               lib_.seg_att_bwd):
        fn.restype = None
    return lib_


def lib() -> Optional[ctypes.CDLL]:
    """The compiled library, or ``None`` when disabled/unavailable."""
    global _lib, _tried
    if not _enabled:
        return None
    if not _tried:
        with _lock:
            if not _tried:
                _lib = _compile()
                _tried = True
    return _lib


def available() -> bool:
    """Whether the compiled kernels can be used right now."""
    return lib() is not None


# ----------------------------------------------------------------------
# numpy-facing wrappers (all arrays are made C-contiguous float64/int64 by
# the callers in repro.tensor.ops, which own the layout guarantees).
# ----------------------------------------------------------------------
def edge_fuse_fwd(
    pre: np.ndarray,
    src: np.ndarray,
    extras,  # sequence of (values (Ni, F), idx (E,)) pairs, up to 2
    eproj: Optional[np.ndarray],
    bias: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused gather+add+relu; ``out`` lets plan replay reuse its pinned
    buffer (the kernel overwrites every element, no zeroing needed)."""
    lib_ = lib()
    assert lib_ is not None
    E = src.shape[0]
    F = pre.shape[1]
    a = [(None, None), (None, None)]
    for k, (vals, idx) in enumerate(extras):
        a[k] = (vals, idx)
    if out is None:
        out = _pool.empty((E, F), tag="c-edge-fwd")
    lib_.edge_fuse_fwd(
        _ptr_d(pre),
        _ptr_i(src),
        _ptr_d(a[0][0]) if a[0][0] is not None else None,
        _ptr_i(a[0][1]),
        _ptr_d(a[1][0]) if a[1][0] is not None else None,
        _ptr_i(a[1][1]),
        _ptr_d(eproj) if eproj is not None else None,
        _ptr_d(bias),
        E,
        F,
        _ptr_d(out),
    )
    return out


def edge_fuse_bwd(
    grad: np.ndarray,
    out: np.ndarray,
    src: np.ndarray,
    num_sources: int,
    extras,  # sequence of (num_rows Ni, idx (E,)) pairs, up to 2
    accum=None,  # optional (gmask, gpre, gex_list, gbias) caller buffers
):
    """Fused edge-message backward.

    ``accum`` lets a caller pass its own ``(gmask, gpre, gex_list, gbias)``
    buffers: ``gmask`` is overwritten, the rest are *accumulated into* (the
    kernel only ever does ``+=`` on them, in ascending edge order), so a
    band-sweeping caller can feed edge slices through the same shared
    accumulators and reproduce the one-call gradient bytes exactly.
    """
    lib_ = lib()
    assert lib_ is not None
    E, F = grad.shape
    gex = [None, None]
    idxs = [None, None]
    if accum is not None:
        gmask, gpre, gex_list, gbias = accum
        for k, (_n_rows, idx) in enumerate(extras):
            gex[k] = gex_list[k]
            idxs[k] = idx
    else:
        gmask = _pool.empty((E, F), tag="c-edge-bwd")
        gpre = _pool.zeros((num_sources, F), tag="c-edge-gpre")
        gbias = np.zeros(F, dtype=np.float64)
        for k, (n_rows, idx) in enumerate(extras):
            gex[k] = _pool.zeros((n_rows, F), tag="c-edge-gex")
            idxs[k] = idx
    lib_.edge_fuse_bwd(
        _ptr_d(grad),
        _ptr_d(out),
        _ptr_i(src),
        _ptr_i(idxs[0]),
        _ptr_i(idxs[1]),
        E,
        F,
        _ptr_d(gmask),
        _ptr_d(gpre),
        _ptr_d(gex[0]) if gex[0] is not None else None,
        _ptr_d(gex[1]) if gex[1] is not None else None,
        _ptr_d(gbias),
    )
    return gmask, gpre, [g for g in gex if g is not None], gbias


def seg_att_fwd(
    keys: np.ndarray,
    q: np.ndarray,
    plan,
    scale: float,
    slope: float,
    out=None,
):
    """Fused attention forward; ``out`` is an optional ``(weights, leaky,
    agg)`` triple of caller buffers for plan replay.  ``agg`` is
    accumulated into, so the caller must hand it over zeroed."""
    lib_ = lib()
    assert lib_ is not None
    E, H, hd = keys.shape
    N = q.shape[0]
    if out is not None:
        weights, leaky, agg = out
    else:
        weights = _pool.empty((E, H), tag="c-att-w")
        leaky = _pool.empty((E, H), tag="c-att-leaky")
        agg = _pool.zeros((N, H * hd), tag="c-att-agg")
    lib_.seg_att_fwd(
        _ptr_d(keys), _ptr_d(q), _ptr_i(plan.perm), _ptr_i(plan.starts),
        _ptr_i(plan.occupied), plan.starts.shape[0], E, H, hd,
        scale, slope, _ptr_d(weights), _ptr_d(leaky), _ptr_d(agg),
    )
    return weights, leaky, agg


def seg_att_bwd(
    keys: np.ndarray,
    q: np.ndarray,
    weights: np.ndarray,
    leaky: np.ndarray,
    gout: np.ndarray,
    plan,
    scale: float,
    gkeys_out: Optional[np.ndarray] = None,
):
    """Attention backward; ``gkeys_out`` lets a band-sweeping caller have
    the key gradient written at its run offset instead of copying it."""
    lib_ = lib()
    assert lib_ is not None
    E, H, hd = keys.shape
    if gkeys_out is not None:
        gkeys = gkeys_out
    else:
        gkeys = _pool.empty((E, H, hd), tag="c-att-gkeys")
    scratch = _pool.empty((E, H), tag="c-att-scratch")
    gq = _pool.zeros(q.shape, tag="c-att-gq")
    lib_.seg_att_bwd(
        _ptr_d(keys), _ptr_d(q), _ptr_d(weights), _ptr_d(leaky), _ptr_d(gout),
        _ptr_i(plan.perm), _ptr_i(plan.starts), _ptr_i(plan.occupied),
        plan.starts.shape[0], E, H, hd, scale,
        _ptr_d(gkeys), _ptr_d(scratch), _ptr_d(gq),
    )
    return gkeys, gq
