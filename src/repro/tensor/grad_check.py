"""Numerical gradient checking for the autograd engine.

Used by the test suite to verify every op against central finite
differences, the standard way to validate a hand-written backward pass.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` wrt ``inputs[wrt]``."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    ``fn`` must be deterministic.  Every input with ``requires_grad=True``
    is checked.  Raises ``AssertionError`` with the offending input index on
    mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            diff = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {diff:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
