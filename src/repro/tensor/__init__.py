"""Numpy-backed reverse-mode autodiff substrate.

The paper's reference implementation runs on PyTorch; this package is the
self-contained replacement used by every model in the repository.
"""

from . import cnative, memprof, plan, pool
from .grad_check import check_gradients, numerical_gradient
from .plan import CompiledStep
from .pool import (
    BufferPool,
    buffer_pool_enabled,
    global_pool,
    set_buffer_pool,
    use_buffer_pool,
)
from .ops import (
    MATMUL_BLOCK,
    concat,
    edge_message,
    edge_message_value,
    gather_rows,
    matmul_blocked,
    rows_matmul,
    gather_rows_reference,
    ones,
    period_attention,
    segment_attention,
    segment_counts,
    segment_mean,
    segment_softmax,
    segment_softmax_reference,
    segment_sum,
    segment_sum_reference,
    softmax,
    stack,
    where,
    zeros,
)
from .segment import (
    SegmentPlan,
    clear_plan_cache,
    fast_kernels_enabled,
    get_plan,
    plan_cache_info,
    set_fast_kernels,
    use_fast_kernels,
)
from .tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "Tensor",
    "as_tensor",
    "unbroadcast",
    "concat",
    "stack",
    "gather_rows",
    "gather_rows_reference",
    "edge_message",
    "edge_message_value",
    "MATMUL_BLOCK",
    "matmul_blocked",
    "rows_matmul",
    "segment_sum",
    "segment_sum_reference",
    "segment_mean",
    "segment_counts",
    "segment_softmax",
    "segment_softmax_reference",
    "segment_attention",
    "period_attention",
    "softmax",
    "where",
    "zeros",
    "ones",
    "check_gradients",
    "numerical_gradient",
    "SegmentPlan",
    "get_plan",
    "plan_cache_info",
    "clear_plan_cache",
    "fast_kernels_enabled",
    "set_fast_kernels",
    "cnative",
    "use_fast_kernels",
    "pool",
    "memprof",
    "plan",
    "CompiledStep",
    "BufferPool",
    "global_pool",
    "buffer_pool_enabled",
    "set_buffer_pool",
    "use_buffer_pool",
]
