"""Numpy-backed reverse-mode autodiff substrate.

The paper's reference implementation runs on PyTorch; this package is the
self-contained replacement used by every model in the repository.
"""

from .grad_check import check_gradients, numerical_gradient
from .ops import (
    concat,
    gather_rows,
    ones,
    segment_counts,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
    where,
    zeros,
)
from .tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "Tensor",
    "as_tensor",
    "unbroadcast",
    "concat",
    "stack",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "segment_counts",
    "segment_softmax",
    "softmax",
    "where",
    "zeros",
    "ones",
    "check_gradients",
    "numerical_gradient",
]
