"""Allocation profiler for the tensor memory plane (``O2_MEM_PROFILE``).

When enabled, every buffer request routed through :mod:`repro.tensor.pool`
(pooled or not) is tallied per op tag, so a training run can report where
its allocation traffic goes: bytes and counts per op, pool hit/miss rates,
buffers still outstanding, and the process peak RSS.

The profiler is off by default (``O2_MEM_PROFILE=1`` or
:func:`set_mem_profile` to enable) and costs one dict update per recorded
allocation when on, a single flag check when off.  It profiles both the
pooled and the reference allocation paths, so the two legs of
``benchmarks/bench_memory.py`` produce comparable tables.

Usage::

    from repro.tensor import memprof
    memprof.set_mem_profile(True)
    ...  # run training
    print(memprof.format_report())
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

from .. import runtime as _runtime

__all__ = [
    "enabled",
    "set_mem_profile",
    "use_mem_profile",
    "record_alloc",
    "reset",
    "report",
    "format_report",
    "current_rss_bytes",
    "peak_rss_bytes",
]

_enabled = _runtime.env_flag("O2_MEM_PROFILE", False)

_lock = threading.Lock()
# tag -> [count, bytes]; mutated under _lock (forward ops may run threaded).
_allocs: Dict[str, list] = {}


def enabled() -> bool:
    """Whether allocation recording is active."""
    return _enabled


def set_mem_profile(value: bool) -> bool:
    """Toggle the profiler; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


class use_mem_profile:
    """Context manager pinning the profiler switch (for tests/benchmarks)."""

    def __init__(self, value: bool) -> None:
        self._value = value
        self._previous: Optional[bool] = None

    def __enter__(self) -> "use_mem_profile":
        self._previous = set_mem_profile(self._value)
        return self

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_mem_profile(self._previous)


def record_alloc(tag: str, nbytes: int) -> None:
    """Tally one buffer request of ``nbytes`` under ``tag`` (if enabled)."""
    if not _enabled:
        return
    with _lock:
        entry = _allocs.get(tag)
        if entry is None:
            _allocs[tag] = [1, nbytes]
        else:
            entry[0] += 1
            entry[1] += nbytes


def reset() -> None:
    """Drop all recorded allocation tallies."""
    with _lock:
        _allocs.clear()


# ----------------------------------------------------------------------
# RSS probes (Linux: /proc for current, getrusage high-water for peak).
# ----------------------------------------------------------------------

def current_rss_bytes() -> int:
    """Resident set size of this process right now (0 if unavailable)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0


def peak_rss_bytes() -> int:
    """High-water resident set size of this process (0 if unavailable)."""
    try:
        import resource

        # Linux reports ru_maxrss in KiB (macOS in bytes; close enough for
        # the Linux-only benchmarks that consume this).
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        return 0


# ----------------------------------------------------------------------
# Reporting.
# ----------------------------------------------------------------------

def report() -> dict:
    """Snapshot: per-op allocation tallies, pool statistics, RSS."""
    from . import pool as _pool  # local import: pool imports memprof

    with _lock:
        allocs = {
            tag: {"count": count, "bytes": nbytes}
            for tag, (count, nbytes) in sorted(_allocs.items())
        }
    total_bytes = sum(v["bytes"] for v in allocs.values())
    total_count = sum(v["count"] for v in allocs.values())
    from . import plan as _plan  # local import: plan imports pool

    snap = {
        "enabled": _enabled,
        "allocs": allocs,
        "total_alloc_bytes": total_bytes,
        "total_alloc_count": total_count,
        "pool": _pool.global_pool().stats(),
        "pool_enabled": _pool.buffer_pool_enabled(),
        "plan": _plan.plan_stats(),
        "current_rss_bytes": current_rss_bytes(),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    try:  # core is optional from the tensor plane's point of view
        from ..core import shard as _shard
        from ..core import shard_train as _shard_train

        snap["shard_train"] = _shard_train.shard_train_stats()
        snap["shard_gate_reason"] = _shard.shard_gate_reason()
        snap["shard_train_gate_reason"] = _shard.shard_train_gate_reason()
    except ImportError:  # pragma: no cover - trimmed installs
        pass
    return snap


def format_report(snapshot: Optional[dict] = None) -> str:
    """Human-readable rendering of :func:`report` (top ops by bytes)."""
    snap = snapshot or report()
    pool = snap["pool"]
    lines = [
        "memory plane report",
        f"  pool: enabled={snap['pool_enabled']} hits={pool['hits']} "
        f"misses={pool['misses']} hit_rate={pool['hit_rate']:.3f} "
        f"bypassed={pool['bypassed']} evicted={pool['evicted']}",
        f"  buffers: outstanding={pool['outstanding']} "
        f"idle={pool['idle_bytes'] / 1e6:.1f} MB",
        f"  rss: current={snap['current_rss_bytes'] / 1e6:.1f} MB "
        f"peak={snap['peak_rss_bytes'] / 1e6:.1f} MB",
    ]
    plan = snap.get("plan")
    if plan is not None and (
        plan["captures"]
        or plan["eager_fallbacks"]
        or plan.get("shard_fallbacks")
    ):
        lines.insert(
            2,
            f"  plan: captures={plan['captures']} replays={plan['replays']} "
            f"eager_fallbacks={plan['eager_fallbacks']} "
            f"shard_fallbacks={plan.get('shard_fallbacks', 0)} "
            f"evictions={plan['guard_evictions']} "
            f"pinned={plan['pinned_bytes'] / 1e6:.1f} MB",
        )
    st = snap.get("shard_train")
    if st is not None and st.get("steps"):
        lines.append(
            f"  shard_train: steps={st['steps']} bands={st['bands']} "
            f"nodes={st['nodes']} halo={st['halo_bytes'] / 1e6:.1f} MB "
            f"({st['halo_rows']} rows) "
            f"exchange={st['exchange_bytes'] / 1e6:.1f} MB "
            f"fanout_tasks={st['fanout_tasks']} "
            f"worker_peak_rss={st['worker_peak_rss_mb']:.1f} MB"
        )
        lines.append(
            f"  shard gates: eval={snap.get('shard_gate_reason', '?')!r} "
            f"train={snap.get('shard_train_gate_reason', '?')!r}"
        )
    ranked = sorted(
        snap["allocs"].items(), key=lambda kv: kv[1]["bytes"], reverse=True
    )
    if ranked:
        lines.append(
            f"  per-op buffer requests "
            f"({snap['total_alloc_count']} total, "
            f"{snap['total_alloc_bytes'] / 1e6:.1f} MB):"
        )
        for tag, entry in ranked[:20]:
            lines.append(
                f"    {tag:<24} {entry['count']:>9}  "
                f"{entry['bytes'] / 1e6:>10.1f} MB"
            )
    return "\n".join(lines)
