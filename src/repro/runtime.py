"""Process-level runtime tuning for the numpy training fast path.

On glibc, malloc serves allocations above ``M_MMAP_THRESHOLD`` (128 KiB by
default) with a fresh ``mmap`` and returns them to the kernel on free.
Training steps on this codebase allocate thousands of multi-megabyte
temporaries per second (edge-message matrices, gradients), so with the
default thresholds every one of them costs an mmap/munmap round trip plus
kernel page-zeroing on first touch -- profiled at 15-25% of a training step
on the batched fast path.

:func:`tune_allocator` picks its profile from the memory plane.  With the
buffer pool disabled it raises ``M_MMAP_THRESHOLD`` and
``M_TRIM_THRESHOLD`` so freed arena memory is retained and recycled in
user space -- the pre-pool behaviour, trading resident high-water mark for
speed.  With the pool enabled (``O2_BUFFER_POOL``, the default) the big
training temporaries are recycled by :mod:`repro.tensor.pool` itself, so
arena hoarding would only double-cache them: the lean profile keeps
glibc's documented 128 KiB mmap threshold (pinned, so the dynamic
threshold cannot drift it upward) and a small trim threshold, which lets
pool evictions and bypassed buffers return to the OS promptly.  Applied by
:class:`repro.core.trainer.Trainer` and the benchmarks; long-lived,
memory-sensitive processes (e.g. the serving layer) simply do not call it.

The tuning is best-effort: on non-glibc platforms (musl, macOS, Windows)
``mallopt`` is absent or a no-op and the function reports ``False``.  Set
``O2_MALLOC_TUNE=0`` to disable it entirely.
"""

from __future__ import annotations

import ctypes
import os

__all__ = ["tune_allocator", "allocator_tuned"]

# From glibc's malloc.h; mallopt param numbers are ABI-stable.
_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

_tuned = False


def allocator_tuned() -> bool:
    """Whether :func:`tune_allocator` has successfully applied the tuning."""
    return _tuned


def tune_allocator(
    mmap_threshold: int | None = None, trim_threshold: int | None = None
) -> bool:
    """Tune glibc malloc for training (profile depends on the buffer pool).

    Pool disabled: keep large freed buffers in the malloc arena instead of
    unmapping (hoard profile).  Pool enabled: pin the documented default
    thresholds so non-pooled frees return to the OS and the pool stays the
    only cache (lean profile).  Explicit arguments override the profile.

    Idempotent and fail-soft: returns ``True`` if the thresholds are (or
    already were) applied, ``False`` when disabled via ``O2_MALLOC_TUNE=0``
    or when the platform has no usable glibc ``mallopt``.
    """
    global _tuned
    if _tuned:
        return True
    if os.environ.get("O2_MALLOC_TUNE", "1").strip().lower() in ("0", "false", "off"):
        return False
    if mmap_threshold is None or trim_threshold is None:
        from .tensor import pool as _pool

        if _pool.buffer_pool_enabled():
            lean_mmap, lean_trim = 131072, 1 << 20
        else:
            lean_mmap, lean_trim = 1 << 29, 1 << 29
        if mmap_threshold is None:
            mmap_threshold = lean_mmap
        if trim_threshold is None:
            trim_threshold = lean_trim
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        mallopt = libc.mallopt
    except (OSError, AttributeError):  # pragma: no cover - non-glibc platform
        return False
    mallopt.argtypes = (ctypes.c_int, ctypes.c_int)
    mallopt.restype = ctypes.c_int
    ok = mallopt(_M_MMAP_THRESHOLD, int(mmap_threshold)) and mallopt(
        _M_TRIM_THRESHOLD, int(trim_threshold)
    )
    _tuned = bool(ok)
    return _tuned
