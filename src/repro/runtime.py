"""Process-level runtime tuning for the numpy training fast path.

On glibc, malloc serves allocations above ``M_MMAP_THRESHOLD`` (128 KiB by
default) with a fresh ``mmap`` and returns them to the kernel on free.
Training steps on this codebase allocate thousands of multi-megabyte
temporaries per second (edge-message matrices, gradients), so with the
default thresholds every one of them costs an mmap/munmap round trip plus
kernel page-zeroing on first touch -- profiled at 15-25% of a training step
on the batched fast path.

:func:`tune_allocator` picks its profile from the memory plane.  With the
buffer pool disabled it raises ``M_MMAP_THRESHOLD`` and
``M_TRIM_THRESHOLD`` so freed arena memory is retained and recycled in
user space -- the pre-pool behaviour, trading resident high-water mark for
speed.  With the pool enabled (``O2_BUFFER_POOL``, the default) the big
training temporaries are recycled by :mod:`repro.tensor.pool` itself, so
arena hoarding would only double-cache them: the lean profile keeps
glibc's documented 128 KiB mmap threshold (pinned, so the dynamic
threshold cannot drift it upward) and a small trim threshold, which lets
pool evictions and bypassed buffers return to the OS promptly.  When the
step compiler is active the trainer retunes to a third, ``pinned``
profile: the captured tape pins its pooled buffers anyway, so prompt
trimming cannot lower RSS but does force an mmap/munmap plus kernel
page-zeroing round trip on every replay's plain-numpy temporaries.
Applied by :class:`repro.core.trainer.Trainer` and the benchmarks;
long-lived, memory-sensitive processes (e.g. the serving layer) simply do
not call it.

The tuning is best-effort: on non-glibc platforms (musl, macOS, Windows)
``mallopt`` is absent or a no-op and the function reports ``False``.  Set
``O2_MALLOC_TUNE=0`` to disable it entirely.
"""

from __future__ import annotations

import ctypes
import os

__all__ = [
    "env_flag",
    "env_float",
    "env_int",
    "env_str",
    "tune_allocator",
    "allocator_tuned",
]

# One truthiness convention for every O2_* switch: anything except an
# explicit "0"/"false"/"off" counts as on (so O2_FLAG= and O2_FLAG=yes both
# enable).  ``default`` supplies the unset value -- flags that default off
# (e.g. O2_MEM_PROFILE) and flags that default on (e.g. O2_BUFFER_POOL)
# share the same parser instead of each module inverting it by hand.
_FALSY = ("0", "false", "off")


def env_flag(name: str, default: bool = True) -> bool:
    """Parse the boolean env switch ``name`` with the repo-wide convention."""
    raw = os.environ.get(name)
    if raw is None:
        return bool(default)
    return raw.strip().lower() not in _FALSY


def env_int(name: str, default: int) -> int:
    """Parse the integer env knob ``name``; malformed values fall back.

    Accepts float spellings (``O2_POOL_MAX_MB=0.5``) by truncation, matching
    the historical pool-threshold parser.
    """
    raw = os.environ.get(name, "")
    try:
        return int(float(raw or default))
    except ValueError:
        return int(default)


def env_float(name: str, default: float) -> float:
    """Parse the float env knob ``name``; malformed values fall back."""
    raw = os.environ.get(name, "")
    try:
        return float(raw or default)
    except ValueError:
        return float(default)


def env_str(name: str, default: str, lower: bool = True) -> str:
    """Parse the enum-valued env switch ``name``: stripped and lowercased.

    Every enum-valued ``O2_*`` switch (``O2_NUM_THREADS=auto``,
    ``O2_SERVE_INDEX=on``...) compares case-insensitively against keyword
    spellings; centralising the normalisation here keeps the modules on one
    convention, mirroring :func:`env_flag`.  Unset falls back to ``default``
    (also normalised, so callers can pass the canonical spelling).  Pass
    ``lower=False`` for case-sensitive values (``CC=/opt/bin/GCC-14``).
    """
    raw = os.environ.get(name)
    if raw is None:
        raw = default
    raw = raw.strip()
    return raw.lower() if lower else raw

# From glibc's malloc.h; mallopt param numbers are ABI-stable.
_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

# Applied (mmap_threshold, trim_threshold), or None before the first tune.
_tuned: "tuple[int, int] | None" = None

# Named threshold profiles (mmap, trim); see tune_allocator.
_PROFILES = {
    # No pool: hoard the arena, recycle big temporaries in user space.
    "hoard": (1 << 29, 1 << 29),
    # Pool on: the pool is the only cache; give freed pages back promptly.
    "lean": (131072, 1 << 20),
    # Compiled step: the captured tape pins its pooled buffers for the
    # life of the plan, so RSS is dominated by pinned memory and prompt
    # trimming buys nothing.  Replays still make plain-numpy allocations
    # above 128 KiB (segment-plan rebuilds, leaf-gradient copies); under
    # the lean thresholds each costs an mmap/munmap round trip plus
    # kernel page-zeroing *every replay*.  Keep them in the arena.
    "pinned": (1 << 25, 1 << 25),
}


def allocator_tuned() -> bool:
    """Whether :func:`tune_allocator` has successfully applied a tuning."""
    return _tuned is not None


def tune_allocator(
    mmap_threshold: int | None = None,
    trim_threshold: int | None = None,
    profile: str | None = None,
) -> bool:
    """Tune glibc malloc for training (profile depends on the memory plane).

    Pool disabled: keep large freed buffers in the malloc arena instead of
    unmapping (``hoard``).  Pool enabled: pin the documented default
    thresholds so non-pooled frees return to the OS and the pool stays the
    only cache (``lean``).  Step compiler active: the pinned tape already
    dominates RSS, so retain replay-path temporaries too (``pinned``).
    ``profile`` selects one by name; explicit thresholds override it.

    Idempotent per threshold pair and fail-soft: returns ``True`` if the
    requested thresholds are (or already were) applied, ``False`` when
    disabled via ``O2_MALLOC_TUNE=0`` or when the platform has no usable
    glibc ``mallopt``.  Callers may retune: the last applied profile wins,
    which lets a compiled-training phase hand a leaner arena back to a
    serving phase in the same process.
    """
    global _tuned
    if not env_flag("O2_MALLOC_TUNE", True):
        return False
    if mmap_threshold is None or trim_threshold is None:
        if profile is None:
            from .tensor import pool as _pool

            profile = "lean" if _pool.buffer_pool_enabled() else "hoard"
        prof_mmap, prof_trim = _PROFILES[profile]
        if mmap_threshold is None:
            mmap_threshold = prof_mmap
        if trim_threshold is None:
            trim_threshold = prof_trim
    want = (int(mmap_threshold), int(trim_threshold))
    if _tuned == want:
        return True
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        mallopt = libc.mallopt
    except (OSError, AttributeError):  # pragma: no cover - non-glibc platform
        return False
    mallopt.argtypes = (ctypes.c_int, ctypes.c_int)
    mallopt.restype = ctypes.c_int
    ok = mallopt(_M_MMAP_THRESHOLD, want[0]) and mallopt(
        _M_TRIM_THRESHOLD, want[1]
    )
    if ok:
        _tuned = want
    return bool(ok)
