"""Shared thread-pool engine for per-period parallelism.

The five time periods of the multi-graph propagate independently (they
share parameters but build disjoint autograd subgraphs), and numpy releases
the GIL inside its BLAS and reduction kernels, so a thread pool overlaps
most of the per-period work on multi-core machines.

The worker count comes from the ``O2_NUM_THREADS`` environment variable
(``auto`` or unset picks ``min(num_tasks, cpu_count)``); it can be pinned
programmatically with :func:`set_num_threads`.  With one worker,
:func:`parallel_map` degrades to a plain serial loop -- the deterministic
reference execution.  The parallel path is bit-for-bit identical to the
serial one because every task is a pure function of inputs fixed before
dispatch (all RNG draws happen serially, before the fan-out) and results
are joined in task order.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from .runtime import env_str

T = TypeVar("T")
R = TypeVar("R")

_override: Optional[int] = None
_executor: Optional[ThreadPoolExecutor] = None
_executor_workers = 0
_lock = threading.Lock()


def _env_threads() -> Optional[int]:
    raw = env_str("O2_NUM_THREADS", "auto")
    if raw in ("", "auto"):
        return None
    try:
        return max(int(raw), 1)
    except ValueError:
        raise ValueError(
            f"O2_NUM_THREADS must be an integer or 'auto', got {raw!r}"
        ) from None


def num_threads(num_tasks: Optional[int] = None) -> int:
    """Worker count: the override, else ``O2_NUM_THREADS``, else auto.

    ``auto`` never exceeds the CPU count or (when given) the task count --
    there is no point spinning up more workers than independent tasks.
    """
    configured = _override if _override is not None else _env_threads()
    if configured is None:
        configured = os.cpu_count() or 1
        if num_tasks is not None:
            configured = min(configured, num_tasks)
    return max(configured, 1)


def set_num_threads(value: Optional[int]) -> Optional[int]:
    """Pin the worker count (``None`` defers back to ``O2_NUM_THREADS``).

    Returns the previous override so callers can restore it.
    """
    global _override
    previous = _override
    if value is not None and value < 1:
        raise ValueError("num_threads must be >= 1")
    _override = value
    return previous


class use_num_threads:
    """Context manager pinning the worker count (tests/benchmarks)."""

    def __init__(self, value: Optional[int]) -> None:
        self._value = value
        self._previous: Optional[int] = None

    def __enter__(self) -> "use_num_threads":
        self._previous = set_num_threads(self._value)
        return self

    def __exit__(self, *exc) -> None:
        set_num_threads(self._previous)


def _get_executor(workers: int) -> ThreadPoolExecutor:
    """A process-wide pool, rebuilt only when the worker count changes."""
    global _executor, _executor_workers
    with _lock:
        if _executor is None or _executor_workers != workers:
            if _executor is not None:
                _executor.shutdown(wait=False)
            _executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="o2-period"
            )
            _executor_workers = workers
        return _executor


def parallel_map(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over the thread pool.

    Results keep the order of ``items``.  Serial (and executor-free) when
    one worker is configured, one item is passed, or when called from
    inside a pool worker (nested fan-out would deadlock a saturated pool).
    """
    items = list(items)
    workers = num_threads(len(items))
    current = threading.current_thread().name
    if workers <= 1 or len(items) <= 1 or current.startswith("o2-period"):
        return [fn(item) for item in items]
    executor = _get_executor(workers)
    return list(executor.map(fn, items))


# ----------------------------------------------------------------------
# Process-pool backend (``O2_NUM_PROCS``): coarse-grained experiment
# fan-out.  Unlike the thread pool above -- which overlaps GIL-releasing
# numpy kernels -- worker processes sidestep the GIL entirely, so whole
# harness cells (simulate, build, train, evaluate) run concurrently.
# Tasks must be top-level functions with picklable arguments and results.

_proc_override: Optional[int] = None


def _env_procs() -> int:
    raw = env_str("O2_NUM_PROCS", "0")
    if raw in ("", "0", "off", "serial"):
        return 0
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        return max(int(raw), 0)
    except ValueError:
        raise ValueError(
            f"O2_NUM_PROCS must be an integer, 'auto' or 'off', got {raw!r}"
        ) from None


def num_procs() -> int:
    """Worker-process count; ``0`` means serial (the default)."""
    if _proc_override is not None:
        return _proc_override
    return _env_procs()


def set_num_procs(value: Optional[int]) -> Optional[int]:
    """Pin the process count (``None`` defers back to ``O2_NUM_PROCS``)."""
    global _proc_override
    previous = _proc_override
    if value is not None and value < 0:
        raise ValueError("num_procs must be >= 0")
    _proc_override = value
    return previous


class use_num_procs:
    """Context manager pinning the process count (tests/benchmarks)."""

    def __init__(self, value: Optional[int]) -> None:
        self._value = value
        self._previous: Optional[int] = None

    def __enter__(self) -> "use_num_procs":
        self._previous = set_num_procs(self._value)
        return self

    def __exit__(self, *exc) -> None:
        set_num_procs(self._previous)


def num_serve_procs(default: int = 1) -> int:
    """Serving worker-process count from ``O2_SERVE_PROCS``.

    ``auto`` maps to the CPU count (one pre-forked worker per core is the
    sweet spot for the GIL-free serving plane); unset falls back to
    ``default``.  Used by ``python -m repro.serve --procs`` and
    :class:`repro.serve.workers.WorkerPool`.
    """
    raw = env_str("O2_SERVE_PROCS", "")
    if raw in ("", "0"):
        return max(default, 1)
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        return max(int(raw), 1)
    except ValueError:
        raise ValueError(
            f"O2_SERVE_PROCS must be an integer or 'auto', got {raw!r}"
        ) from None


# True inside a process_map worker (set by the pool initializer, which runs
# once in each freshly forked/spawned child).  A task that itself calls
# process_map -- e.g. a sharded propagation worker whose model code would
# fan out again -- must degrade to the serial loop instead of forking a
# pool per worker (quadratic process growth, a fork bomb under recursion).
_in_worker = False


def _mark_worker() -> None:
    global _in_worker
    _in_worker = True


def in_process_worker() -> bool:
    """Whether this process is a :func:`process_map` pool worker."""
    return _in_worker


class ProcessMapError(RuntimeError):
    """A :func:`process_map` task failed in a worker process.

    The pool loses the worker-side traceback at the pickle boundary, so the
    message carries what the parent needs to bisect: the failing item's
    index, a truncated repr of the item, and the original exception.
    """


class _IndexedTask:
    """Picklable wrapper attaching the item index to worker failures."""

    def __init__(self, fn: Callable[[T], R]) -> None:
        self._fn = fn

    def __call__(self, indexed):
        index, item = indexed
        try:
            return self._fn(item)
        except Exception as exc:
            detail = repr(item)
            if len(detail) > 120:
                detail = detail[:120] + "...<truncated>"
            raise ProcessMapError(
                f"process_map task {index} failed with "
                f"{type(exc).__name__}: {exc} (item: {detail})"
            ) from exc


# Persistent pool (``process_map(..., persistent=True)``): rounds that fan
# out many times per second -- one per layer per training step in sharded
# training -- cannot afford a fork+teardown per call.  The pool is keyed by
# (start method, worker count); a request with a different worker count
# tears the old pool down first.  Forked workers snapshot the parent at
# creation time, so persistent callers must ship all round-varying state
# through their task arguments (the shard arenas do exactly that).
_persistent_pool = None
_persistent_key: Optional[tuple] = None


def _get_process_pool(ctx, method: str, workers: int):
    global _persistent_pool, _persistent_key
    key = (method, workers)
    if _persistent_key != key and _persistent_pool is not None:
        _persistent_pool.terminate()
        _persistent_pool = None
    if _persistent_pool is None:
        _persistent_pool = ctx.Pool(processes=workers, initializer=_mark_worker)
        _persistent_key = key
        import atexit

        atexit.register(shutdown_process_pool)
    return _persistent_pool


def shutdown_process_pool() -> None:
    """Terminate the persistent :func:`process_map` pool (tests/atexit)."""
    global _persistent_pool, _persistent_key
    if _persistent_pool is not None:
        _persistent_pool.terminate()
        _persistent_pool = None
        _persistent_key = None


def process_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    procs: Optional[int] = None,
    chunksize: Optional[int] = None,
    persistent: bool = False,
) -> List[R]:
    """``[fn(x) for x in items]`` across worker processes, in item order.

    Serial when fewer than two workers or items are configured, and always
    serial inside a pool worker (nested fan-out must not fork again).  Each
    task must seed its own RNG state (cf. ``harness._seed_init``) so results
    are identical to the serial loop regardless of which worker runs which
    item.  Workers are forked where available (cheap, inherits imports) and
    spawned elsewhere.  ``chunksize`` is handed to ``Pool.map`` unchanged:
    the default lets multiprocessing pick its batch size, ``1`` keeps
    long-running heterogeneous tasks load-balanced across workers.

    ``persistent=True`` reuses one process-wide pool across calls (see
    :func:`_get_process_pool`) -- the fan-out pattern of sharded training,
    where a per-call pool would pay a fork per layer per step.

    A task that raises in a worker surfaces as :class:`ProcessMapError`
    naming the failing item's index and (truncated) repr, chained from the
    original exception where pickling preserves it.
    """
    items = list(items)
    workers = num_procs() if procs is None else max(procs, 0)
    workers = min(workers, len(items))
    if workers <= 1 or len(items) <= 1 or _in_worker:
        return [fn(item) for item in items]
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    if persistent:
        pool = _get_process_pool(ctx, method, workers)
        return pool.map(_IndexedTask(fn), list(enumerate(items)), chunksize)
    with ctx.Pool(processes=workers, initializer=_mark_worker) as pool:
        return pool.map(_IndexedTask(fn), list(enumerate(items)), chunksize)
