"""Shared thread-pool engine for per-period parallelism.

The five time periods of the multi-graph propagate independently (they
share parameters but build disjoint autograd subgraphs), and numpy releases
the GIL inside its BLAS and reduction kernels, so a thread pool overlaps
most of the per-period work on multi-core machines.

The worker count comes from the ``O2_NUM_THREADS`` environment variable
(``auto`` or unset picks ``min(num_tasks, cpu_count)``); it can be pinned
programmatically with :func:`set_num_threads`.  With one worker,
:func:`parallel_map` degrades to a plain serial loop -- the deterministic
reference execution.  The parallel path is bit-for-bit identical to the
serial one because every task is a pure function of inputs fixed before
dispatch (all RNG draws happen serially, before the fan-out) and results
are joined in task order.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_override: Optional[int] = None
_executor: Optional[ThreadPoolExecutor] = None
_executor_workers = 0
_lock = threading.Lock()


def _env_threads() -> Optional[int]:
    raw = os.environ.get("O2_NUM_THREADS", "auto").strip().lower()
    if raw in ("", "auto"):
        return None
    try:
        return max(int(raw), 1)
    except ValueError:
        raise ValueError(
            f"O2_NUM_THREADS must be an integer or 'auto', got {raw!r}"
        ) from None


def num_threads(num_tasks: Optional[int] = None) -> int:
    """Worker count: the override, else ``O2_NUM_THREADS``, else auto.

    ``auto`` never exceeds the CPU count or (when given) the task count --
    there is no point spinning up more workers than independent tasks.
    """
    configured = _override if _override is not None else _env_threads()
    if configured is None:
        configured = os.cpu_count() or 1
        if num_tasks is not None:
            configured = min(configured, num_tasks)
    return max(configured, 1)


def set_num_threads(value: Optional[int]) -> Optional[int]:
    """Pin the worker count (``None`` defers back to ``O2_NUM_THREADS``).

    Returns the previous override so callers can restore it.
    """
    global _override
    previous = _override
    if value is not None and value < 1:
        raise ValueError("num_threads must be >= 1")
    _override = value
    return previous


class use_num_threads:
    """Context manager pinning the worker count (tests/benchmarks)."""

    def __init__(self, value: Optional[int]) -> None:
        self._value = value
        self._previous: Optional[int] = None

    def __enter__(self) -> "use_num_threads":
        self._previous = set_num_threads(self._value)
        return self

    def __exit__(self, *exc) -> None:
        set_num_threads(self._previous)


def _get_executor(workers: int) -> ThreadPoolExecutor:
    """A process-wide pool, rebuilt only when the worker count changes."""
    global _executor, _executor_workers
    with _lock:
        if _executor is None or _executor_workers != workers:
            if _executor is not None:
                _executor.shutdown(wait=False)
            _executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="o2-period"
            )
            _executor_workers = workers
        return _executor


def parallel_map(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over the thread pool.

    Results keep the order of ``items``.  Serial (and executor-free) when
    one worker is configured, one item is passed, or when called from
    inside a pool worker (nested fan-out would deadlock a saturated pool).
    """
    items = list(items)
    workers = num_threads(len(items))
    current = threading.current_thread().name
    if workers <= 1 or len(items) <= 1 or current.startswith("o2-period"):
        return [fn(item) for item in items]
    executor = _get_executor(workers)
    return list(executor.map(fn, items))
