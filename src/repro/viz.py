"""Terminal visualisation: region heatmaps and training curves.

Pure-text rendering (the environment has no plotting stack); used by the
examples to show city structure and model output at a glance.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .geo import RegionGrid

# Light-to-dark ramp for text heatmaps.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    grid: RegionGrid,
    values: np.ndarray,
    title: str = "",
    legend: bool = True,
) -> str:
    """Render per-region values as a character heatmap.

    ``values`` has one entry per region; rows print north-up (row 0 at the
    bottom, like map coordinates).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (grid.num_regions,):
        raise ValueError(
            f"need one value per region ({grid.num_regions}), got {values.shape}"
        )
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0

    lines = []
    if title:
        lines.append(title)
    for row in range(grid.rows - 1, -1, -1):
        cells = []
        for col in range(grid.cols):
            v = values[grid.region_id(row, col)]
            level = int((v - lo) / span * (len(_RAMP) - 1))
            cells.append(_RAMP[level] * 2)
        lines.append("".join(cells))
    if legend:
        lines.append(f"[{_RAMP[0]}]={lo:.3g}  [{_RAMP[-1]}]={hi:.3g}")
    return "\n".join(lines)


def categorical_map(
    grid: RegionGrid,
    labels: np.ndarray,
    symbols: Optional[Dict[int, str]] = None,
    title: str = "",
) -> str:
    """Render integer region labels (e.g. archetypes) as a character map."""
    labels = np.asarray(labels)
    if labels.shape != (grid.num_regions,):
        raise ValueError("need one label per region")
    if symbols is None:
        alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        symbols = {int(v): alphabet[i % 26] for i, v in enumerate(np.unique(labels))}
    lines = [title] if title else []
    for row in range(grid.rows - 1, -1, -1):
        lines.append(
            "".join(
                symbols[int(labels[grid.region_id(row, col)])] * 2
                for col in range(grid.cols)
            )
        )
    return "\n".join(lines)


def loss_curve(
    losses: Sequence[float], width: int = 60, height: int = 10, title: str = ""
) -> str:
    """Render a loss curve as ASCII art (one column per bucket of epochs)."""
    losses = np.asarray(list(losses), dtype=np.float64)
    if losses.size == 0:
        raise ValueError("losses is empty")
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")

    # Downsample epochs to the plot width.
    buckets = np.array_split(losses, min(width, len(losses)))
    series = np.array([b.mean() for b in buckets])
    lo, hi = float(series.min()), float(series.max())
    span = hi - lo if hi > lo else 1.0
    rows = ((hi - series) / span * (height - 1)).round().astype(int)

    canvas = [[" "] * len(series) for _ in range(height)]
    for x, y in enumerate(rows):
        canvas[y][x] = "*"
    lines = [title] if title else []
    lines.append(f"{hi:10.4g} ┐")
    for r, row in enumerate(canvas):
        prefix = "           │"
        lines.append(prefix + "".join(row))
    lines.append(f"{lo:10.4g} ┘" + f" ({len(losses)} epochs)")
    return "\n".join(lines)
