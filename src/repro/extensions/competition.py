"""Multi-platform competition (the paper's limitations ii & iii).

"Many stores are registered on more than one platform. The model could be
more accurate if we can obtain the data from multiple platforms." --
Section V.  This extension quantifies that claim on the simulator:

* one *market* (a normal simulated month) is split across two platforms:
  each store registers on A, on B, or on both; orders at dual-registered
  stores are recorded by the platform the customer's neighbourhood prefers;
* a site-recommendation model trained on **platform A's log only** sees a
  censored market; one trained on the **pooled** log sees everything;
* both are evaluated against the *full-market* demand -- the quantity an
  operator actually cares about when opening a store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..city import real_world_dataset
from ..city.simulator import SimulationResult
from ..core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from ..data import SiteRecDataset
from ..data.records import OrderRecord
from ..data.split import split_interactions
from ..metrics import EvaluationResult, evaluate_model
from ..nn import init

REGISTRATIONS = ("A", "B", "both")


@dataclass
class DuopolyConfig:
    """Market-splitting knobs."""

    scale: float = 0.6
    seed: int = 0
    # Store registration mix (must sum to 1).
    frac_only_a: float = 0.3
    frac_only_b: float = 0.25
    frac_both: float = 0.45
    # Platform A's mean share of orders at dual-registered stores; varies
    # smoothly by neighbourhood around this mean.
    platform_a_share: float = 0.55
    epochs: int = 50
    lr: float = 1e-2
    patience: int = 12
    top_n_frac: float = 0.35
    model_config: O2SiteRecConfig = field(default_factory=O2SiteRecConfig)

    def __post_init__(self) -> None:
        total = self.frac_only_a + self.frac_only_b + self.frac_both
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"registration fractions must sum to 1, got {total}")
        if not 0 < self.platform_a_share < 1:
            raise ValueError("platform_a_share must be in (0, 1)")


@dataclass
class DuopolyMarket:
    """One market split across two platforms."""

    sim: SimulationResult
    registration: Dict[str, str]  # store_id -> "A" | "B" | "both"
    orders_a: List[OrderRecord]
    orders_b: List[OrderRecord]

    @property
    def market_orders(self) -> int:
        return self.sim.num_orders

    def coverage(self, platform: str) -> float:
        """Fraction of the market's orders visible to a platform."""
        count = len(self.orders_a if platform == "A" else self.orders_b)
        return count / max(self.market_orders, 1)


def split_market(
    sim: SimulationResult, config: DuopolyConfig
) -> DuopolyMarket:
    """Assign registrations and route each order to a platform's log."""
    rng = np.random.default_rng(config.seed + 4242)
    registration: Dict[str, str] = {}
    for store in sim.stores:
        draw = rng.random()
        if draw < config.frac_only_a:
            registration[store.record.store_id] = "A"
        elif draw < config.frac_only_a + config.frac_only_b:
            registration[store.record.store_id] = "B"
        else:
            registration[store.record.store_id] = "both"

    # Neighbourhood-level platform preference (smooth, around the mean).
    n = sim.land.num_regions
    share = np.clip(
        config.platform_a_share + rng.normal(0.0, 0.1, size=n), 0.1, 0.9
    )

    orders_a: List[OrderRecord] = []
    orders_b: List[OrderRecord] = []
    for order in sim.orders:
        reg = registration[order.store_id]
        if reg == "A":
            orders_a.append(order)
        elif reg == "B":
            orders_b.append(order)
        elif rng.random() < share[order.customer_region]:
            orders_a.append(order)
        else:
            orders_b.append(order)
    return DuopolyMarket(
        sim=sim, registration=registration, orders_a=orders_a, orders_b=orders_b
    )


class _MarketView:
    """Dataset facade whose targets are the full market's demand."""

    def __init__(self, platform_data: SiteRecDataset, market_targets: np.ndarray):
        self._data = platform_data
        self.targets = market_targets

    def __getattr__(self, name):
        return getattr(self._data, name)

    def pair_targets(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        return self.targets[pairs[:, 0], pairs[:, 1]]


@dataclass
class CompetitionResult:
    """Evaluation of platform-censored vs pooled training."""

    results: Dict[str, EvaluationResult]  # "platform_a", "pooled"
    coverage_a: float

    def __getitem__(self, key: str) -> EvaluationResult:
        return self.results[key]

    def pooled_gain(self, metric: str = "NDCG@3") -> float:
        censored = self.results["platform_a"][metric]
        if censored == 0:
            return float("nan")
        return (self.results["pooled"][metric] - censored) / censored


def run_competition_experiment(
    config: Optional[DuopolyConfig] = None,
) -> CompetitionResult:
    """Train on platform A's log vs the pooled log; judge on the market."""
    config = config or DuopolyConfig()
    sim = real_world_dataset(seed=7 + config.seed, scale=config.scale)
    market = split_market(sim, config)

    # Full-market ground truth (what a site decision is really about).
    full = SiteRecDataset.from_simulation(sim)
    market_targets = full.targets

    train_config = TrainConfig(
        epochs=config.epochs,
        lr=config.lr,
        patience=config.patience,
        seed=config.seed,
    )

    results: Dict[str, EvaluationResult] = {}
    for key, orders in (
        ("platform_a", market.orders_a),
        ("pooled", market.orders_a + market.orders_b),
    ):
        data = SiteRecDataset.from_simulation(sim, orders=orders)
        split = split_interactions(
            data.store_regions, data.num_types, train_frac=0.8, seed=config.seed
        )
        init.seed(config.seed * 13 + (1 if key == "platform_a" else 2))
        model = O2SiteRec(data, split, config.model_config)
        Trainer(model, train_config).fit(
            split.train_pairs, data.pair_targets(split.train_pairs)
        )
        view = _MarketView(data, market_targets)
        results[key] = evaluate_model(
            model, view, split, top_n_frac=config.top_n_frac
        )

    return CompetitionResult(results=results, coverage_a=market.coverage("A"))
