"""Cross-city transfer (the paper's stated future work, Section V).

The paper evaluates on one city (Shanghai) and names multi-city analysis as
future work; its CityTransfer baseline is built on exactly this premise.
This extension pre-trains O2-SiteRec on a *source* city and transfers the
city-agnostic parameters -- every attention/projection/prediction weight,
but not the per-node ID embeddings -- to a data-poor *target* city, then
fine-tunes.

Three regimes are compared on the target city's test fold:

* ``scratch``   -- train on the target's (reduced) data only;
* ``zero_shot`` -- transferred weights, no target training at all
  (embeddings stay at initialisation: a lower bound);
* ``transfer``  -- transferred weights + target fine-tuning.

With scarce target data, ``transfer`` should beat ``scratch`` -- knowledge
about *how* capacity, preferences and commercial features combine carries
across cities even though the cities themselves differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..city import real_world_dataset
from ..core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from ..data import SiteRecDataset
from ..data.split import InteractionSplit
from ..metrics import EvaluationResult, evaluate_model
from ..nn import init

REGIMES = ("scratch", "zero_shot", "transfer")


def transferable_parameters(model: O2SiteRec) -> Dict[str, np.ndarray]:
    """The city-agnostic slice of a model's state dict.

    Per-node ID embeddings are tied to one city's node sets and are
    excluded; everything else (fusion layers, attention projections,
    edge-type matrices, time attention, predictor) transfers.
    """
    return {
        name: value
        for name, value in model.state_dict().items()
        if "embedding" not in name
    }


def load_transferable(model: O2SiteRec, source: Dict[str, np.ndarray]) -> int:
    """Copy matching city-agnostic parameters into ``model``.

    Returns the number of parameters copied.  Shape mismatches (e.g. a
    different feature dimensionality) are skipped -- transfer degrades
    gracefully rather than failing.
    """
    own = dict(model.named_parameters())
    copied = 0
    for name, value in source.items():
        param = own.get(name)
        if param is not None and param.data.shape == value.shape:
            param.data = value.copy()
            copied += 1
    return copied


@dataclass
class TransferConfig:
    """Scope of a cross-city transfer experiment."""

    source_scale: float = 0.7
    target_scale: float = 0.6
    target_train_frac: float = 0.4  # the target city is data-poor
    source_epochs: int = 60
    target_epochs: int = 40
    fine_tune_epochs: int = 25
    lr: float = 1e-2
    fine_tune_lr: float = 3e-3
    seed: int = 0
    model_config: O2SiteRecConfig = field(default_factory=O2SiteRecConfig)


@dataclass
class TransferResult:
    """Evaluation of the three regimes on the target city's test fold."""

    results: Dict[str, EvaluationResult]
    parameters_transferred: int

    def __getitem__(self, regime: str) -> EvaluationResult:
        return self.results[regime]

    def improvement(self, metric: str = "NDCG@3") -> float:
        """Relative gain of transfer over training from scratch."""
        scratch = self.results["scratch"][metric]
        if scratch == 0:
            return float("nan")
        return (self.results["transfer"][metric] - scratch) / scratch


def _build_city(seed: int, scale: float, train_frac: float, split_seed: int):
    sim = real_world_dataset(seed=seed, scale=scale)
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=split_seed, train_frac=train_frac)
    return dataset, split


def _fit(
    model: O2SiteRec,
    dataset: SiteRecDataset,
    split: InteractionSplit,
    epochs: int,
    lr: float,
    seed: int,
) -> None:
    trainer = Trainer(
        model,
        TrainConfig(epochs=epochs, lr=lr, patience=max(epochs // 4, 5), seed=seed),
    )
    trainer.fit(split.train_pairs, dataset.pair_targets(split.train_pairs))


def run_transfer_experiment(
    config: Optional[TransferConfig] = None,
    top_n_frac: float = 0.35,
) -> TransferResult:
    """Pre-train on a source city, transfer to a data-poor target city."""
    config = config or TransferConfig()
    seed = config.seed

    # Source city: plentiful data, full 80/20 split.
    source_data, source_split = _build_city(
        seed=7 + seed, scale=config.source_scale, train_frac=0.8, split_seed=seed
    )
    init.seed(seed * 31 + 1)
    source_model = O2SiteRec(source_data, source_split, config.model_config)
    _fit(
        source_model,
        source_data,
        source_split,
        config.source_epochs,
        config.lr,
        seed,
    )
    shared = transferable_parameters(source_model)

    # Target city: a different seed (different land use, stores, demand)
    # and a deliberately small training fraction.
    target_data, target_split = _build_city(
        seed=101 + seed,
        scale=config.target_scale,
        train_frac=config.target_train_frac,
        split_seed=seed,
    )

    results: Dict[str, EvaluationResult] = {}

    init.seed(seed * 31 + 2)
    scratch = O2SiteRec(target_data, target_split, config.model_config)
    _fit(
        scratch, target_data, target_split, config.target_epochs, config.lr, seed
    )
    results["scratch"] = evaluate_model(
        scratch, target_data, target_split, top_n_frac=top_n_frac
    )

    init.seed(seed * 31 + 3)
    zero_shot = O2SiteRec(target_data, target_split, config.model_config)
    copied = load_transferable(zero_shot, shared)
    results["zero_shot"] = evaluate_model(
        zero_shot, target_data, target_split, top_n_frac=top_n_frac
    )

    init.seed(seed * 31 + 3)  # same init as zero_shot, then fine-tune
    transfer = O2SiteRec(target_data, target_split, config.model_config)
    load_transferable(transfer, shared)
    _fit(
        transfer,
        target_data,
        target_split,
        config.fine_tune_epochs,
        config.fine_tune_lr,
        seed,
    )
    results["transfer"] = evaluate_model(
        transfer, target_data, target_split, top_n_frac=top_n_frac
    )

    return TransferResult(results=results, parameters_transferred=copied)
