"""Extensions beyond the paper's evaluation (its Section V future work)."""

from .competition import (
    REGISTRATIONS,
    CompetitionResult,
    DuopolyConfig,
    DuopolyMarket,
    run_competition_experiment,
    split_market,
)
from .transfer import (
    REGIMES,
    TransferConfig,
    TransferResult,
    load_transferable,
    run_transfer_experiment,
    transferable_parameters,
)

__all__ = [
    "TransferConfig",
    "TransferResult",
    "REGIMES",
    "transferable_parameters",
    "load_transferable",
    "run_transfer_experiment",
    "DuopolyConfig",
    "DuopolyMarket",
    "CompetitionResult",
    "REGISTRATIONS",
    "split_market",
    "run_competition_experiment",
]
