"""Partial-sort top-k selection, pinned to stable full-sort ordering.

Every ranking surface in the repo -- ``recommend_sites``, the serving
``query`` path and the ``@k`` metric kernels -- used to rank candidates
with a full ``np.argsort(-scores, kind="stable")`` and then keep the first
``k`` entries.  For city-wide candidate pools that is O(n log n) work (and
a full permutation array) to extract a handful of winners.

:func:`top_k_indices` does the same selection in O(n + k log k): an
``np.argpartition`` pass splits off the top slice, and only that slice is
sorted.  The result is **identical** to the full stable sort, including
the tie-break order among duplicate scores: the reference puts equal
scores in ascending-index order, so we select strictly-better candidates
first and fill the remainder with the lowest-indexed ties (``flatnonzero``
returns indices in ascending order), then stable-sort the k-sized slice.

Non-finite scores fall back to the full sort -- ``argpartition``'s NaN
placement differs from ``argsort``'s and the equality pin matters more
than speed on degenerate inputs.
"""

from __future__ import annotations

import numpy as np


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, in descending-score order.

    Bit-for-bit identical to ``np.argsort(-scores, kind="stable")[:k]``
    (ties broken by ascending index), but via ``np.argpartition`` so only
    the winning slice is ever sorted.  ``k >= len(scores)`` degrades to
    the full stable sort.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    neg = -np.asarray(scores, dtype=np.float64)
    n = neg.shape[0]
    if k >= n or not np.isfinite(neg).all():
        return np.argsort(neg, kind="stable")[:k]
    # Value of the k-th best score: everything strictly better is in, the
    # remaining seats go to the lowest-indexed candidates at that value.
    kth = np.partition(neg, k - 1)[k - 1]
    better = np.flatnonzero(neg < kth)
    seats = k - better.shape[0]
    if seats > 0:
        ties = np.flatnonzero(neg == kth)[:seats]
        chosen = np.concatenate([better, ties])
    else:  # pragma: no cover - neg < kth can hold for at most k-1 entries
        chosen = better
    # ``chosen`` is ascending-index within each score class, so a stable
    # sort on the slice reproduces the reference tie-break exactly.
    return chosen[np.argsort(neg[chosen], kind="stable")]


def top_k_mask(scores: np.ndarray, k: int) -> np.ndarray:
    """Boolean membership mask of the stable top-k (order-free queries).

    For set-intersection metrics (Precision@k / Recall@k) the rank order
    inside the top-k is irrelevant; the mask skips the final slice sort.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    scores = np.asarray(scores)
    mask = np.zeros(scores.shape[0], dtype=bool)
    if k >= scores.shape[0]:
        mask[:] = True
        return mask
    neg = -np.asarray(scores, dtype=np.float64)
    if not np.isfinite(neg).all():
        mask[np.argsort(neg, kind="stable")[:k]] = True
        return mask
    kth = np.partition(neg, k - 1)[k - 1]
    better = neg < kth
    seats = k - int(better.sum())
    mask[better] = True
    if seats > 0:
        mask[np.flatnonzero(neg == kth)[:seats]] = True
    return mask
