"""City partitioning into square regions (Definition 1 of the paper).

The city is a set of two-dimensional grids of size ``cell_size x cell_size``
(paper: 500 m x 500 m); each grid cell is a *region*.  Regions are numbered
row-major; geometry is handled in metres on a local tangent plane, with a
lon/lat conversion for order records (Table I stores coordinates in degrees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

# (dr, dc) offset tables per reach, row-major with (0, 0) removed -- the
# exact visit order of the nested loop neighbors_within replaces.
_NEIGHBOR_OFFSETS: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _neighbor_offsets(reach: int) -> Tuple[np.ndarray, np.ndarray]:
    cached = _NEIGHBOR_OFFSETS.get(reach)
    if cached is None:
        side = np.arange(-reach, reach + 1, dtype=np.int64)
        drs = np.repeat(side, len(side))
        dcs = np.tile(side, len(side))
        keep = (drs != 0) | (dcs != 0)
        cached = (drs[keep], dcs[keep])
        _NEIGHBOR_OFFSETS[reach] = cached
    return cached

# Metres per degree around Shanghai's latitude (31.2 N), used to emit
# plausible lon/lat pairs in synthetic order records.
_M_PER_DEG_LAT = 111_320.0
_M_PER_DEG_LON = 95_200.0


@dataclass(frozen=True)
class RegionGrid:
    """A ``rows x cols`` grid of square regions.

    Attributes
    ----------
    rows, cols:
        Grid dimensions.
    cell_size:
        Side of each region in metres (``xi`` in Definition 1).
    origin_lon, origin_lat:
        Geographic anchor of grid cell (0, 0)'s south-west corner.
    """

    rows: int
    cols: int
    cell_size: float = 500.0
    origin_lon: float = 121.30
    origin_lat: float = 31.10

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid must have at least one row and column")
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")

    # -- identity -----------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return self.rows * self.cols

    def region_id(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"cell ({row}, {col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def row_col(self, region: int) -> Tuple[int, int]:
        if not 0 <= region < self.num_regions:
            raise IndexError(f"region {region} outside [0, {self.num_regions})")
        return divmod(region, self.cols)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_regions))

    # -- geometry -------------------------------------------------------------
    def centroid(self, region: int) -> Tuple[float, float]:
        """Region centre in metres from the grid origin: ``(x, y)``."""
        row, col = self.row_col(region)
        return ((col + 0.5) * self.cell_size, (row + 0.5) * self.cell_size)

    def centroids(self) -> np.ndarray:
        """All centroids, shape ``(num_regions, 2)`` in metres."""
        rows, cols = np.divmod(np.arange(self.num_regions), self.cols)
        return np.stack(
            [(cols + 0.5) * self.cell_size, (rows + 0.5) * self.cell_size], axis=1
        )

    def distance(self, region_a: int, region_b: int) -> float:
        """Euclidean centroid distance in metres."""
        xa, ya = self.centroid(region_a)
        xb, yb = self.centroid(region_b)
        return float(np.hypot(xa - xb, ya - yb))

    def distance_matrix(self) -> np.ndarray:
        """Pairwise centroid distances, shape ``(N, N)`` in metres."""
        c = self.centroids()
        diff = c[:, None, :] - c[None, :, :]
        return np.sqrt((diff**2).sum(axis=2))

    def region_of_point(self, x: float, y: float) -> int:
        """Region containing the metre-coordinate point (clamped to grid)."""
        col = int(np.clip(x // self.cell_size, 0, self.cols - 1))
        row = int(np.clip(y // self.cell_size, 0, self.rows - 1))
        return self.region_id(row, col)

    def neighbors_within(self, region: int, radius: float) -> List[int]:
        """Regions (excluding ``region``) with centroid distance <= radius.

        Vectorised over the offset window but value- and order-identical to
        the nested ``(dr, dc)`` reference loop: offsets visit row-major,
        centroids use the same ``(col + 0.5) * cell_size`` arithmetic, and
        the distance test is the same ``np.hypot`` ufunc elementwise.
        """
        row, col = self.row_col(region)
        reach = int(radius // self.cell_size) + 1
        drs, dcs = _neighbor_offsets(reach)
        r = row + drs
        c = col + dcs
        valid = (r >= 0) & (r < self.rows) & (c >= 0) & (c < self.cols)
        r = r[valid]
        c = c[valid]
        x0, y0 = self.centroid(region)
        x1 = (c + 0.5) * self.cell_size
        y1 = (r + 0.5) * self.cell_size
        near = np.hypot(x1 - x0, y1 - y0) <= radius
        return (r[near] * self.cols + c[near]).tolist()

    def pairs_within(self, radius: float) -> List[Tuple[int, int, float]]:
        """All ordered region pairs with centroid distance <= radius.

        Returns ``(i, j, distance_m)`` triples with ``i != j`` -- the edge
        set of the Region Geographical Graph (Definition 2, threshold 800 m).
        """
        pairs = []
        for i in self:
            for j in self.neighbors_within(i, radius):
                pairs.append((i, j, self.distance(i, j)))
        return pairs

    # -- geographic coordinates -----------------------------------------------
    def to_lonlat(self, x: float, y: float) -> Tuple[float, float]:
        """Convert metre coordinates to (lon, lat) degrees."""
        return (
            self.origin_lon + x / _M_PER_DEG_LON,
            self.origin_lat + y / _M_PER_DEG_LAT,
        )

    def from_lonlat(self, lon: float, lat: float) -> Tuple[float, float]:
        """Convert (lon, lat) degrees to metre coordinates."""
        return (
            (lon - self.origin_lon) * _M_PER_DEG_LON,
            (lat - self.origin_lat) * _M_PER_DEG_LAT,
        )

    def center_region(self) -> int:
        return self.region_id(self.rows // 2, self.cols // 2)

    def distance_from_center(self, region: int) -> float:
        """Centroid distance to the grid's central region, in metres."""
        return self.distance(region, self.center_region())
