"""Geography: region grids (Definition 1) and geographic features (III-C)."""

from .features import (
    entropy,
    normalize_columns,
    poi_diversity,
    region_feature_matrix,
    store_diversity,
    traffic_convenience,
)
from .grid import RegionGrid

__all__ = [
    "RegionGrid",
    "entropy",
    "poi_diversity",
    "store_diversity",
    "traffic_convenience",
    "region_feature_matrix",
    "normalize_columns",
]
