"""Geographic feature extraction (Section III-C of the paper).

Four features are extracted per region from the context data and used as
node attributes of both the store-region and customer-region nodes:

* **POI set** -- vector of POI counts per POI type;
* **POI diversity** -- entropy of the POI type distribution;
* **Traffic convenience** -- vector of (intersections, roads) counts;
* **Store diversity** -- entropy of the store type distribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def entropy(proportions: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shannon entropy of a (batch of) probability vector(s).

    Zero-probability entries contribute zero; an all-zero row (no items at
    all) has entropy zero.
    """
    p = np.asarray(proportions, dtype=np.float64)
    total = p.sum(axis=axis, keepdims=True)
    norm = np.where(total > 0, p / np.where(total > 0, total, 1.0), 0.0)
    log_term = np.zeros_like(norm)
    positive = norm > 0
    log_term[positive] = np.log(norm[positive])
    return -(norm * log_term).sum(axis=axis)


def poi_diversity(poi_counts: np.ndarray) -> np.ndarray:
    """Information entropy of the POI type proportions per region.

    ``poi_counts`` has shape ``(num_regions, num_poi_types)``.
    """
    return entropy(poi_counts, axis=1)


def store_diversity(store_type_counts: np.ndarray) -> np.ndarray:
    """Information entropy of the store type proportions per region."""
    return entropy(store_type_counts, axis=1)


def traffic_convenience(
    intersections: np.ndarray, roads: np.ndarray
) -> np.ndarray:
    """Stack intersection and road counts into a ``(num_regions, 2)`` matrix."""
    inter = np.asarray(intersections, dtype=np.float64)
    rd = np.asarray(roads, dtype=np.float64)
    if inter.shape != rd.shape:
        raise ValueError("intersections and roads must have the same shape")
    return np.stack([inter, rd], axis=1)


def region_feature_matrix(
    poi_counts: np.ndarray,
    intersections: np.ndarray,
    roads: np.ndarray,
    store_type_counts: np.ndarray,
    normalize: bool = True,
) -> np.ndarray:
    """Assemble the full geographic feature matrix per region.

    Layout: ``[POI set | POI diversity | traffic convenience | store
    diversity]`` giving ``num_poi_types + 1 + 2 + 1`` columns.  With
    ``normalize=True`` each column is scaled to [0, 1] by its maximum
    (keeps the downstream fusion layers well conditioned).
    """
    features = np.concatenate(
        [
            np.asarray(poi_counts, dtype=np.float64),
            poi_diversity(poi_counts)[:, None],
            traffic_convenience(intersections, roads),
            store_diversity(store_type_counts)[:, None],
        ],
        axis=1,
    )
    if normalize:
        features = normalize_columns(features)
    return features


def normalize_columns(matrix: np.ndarray) -> np.ndarray:
    """Scale each column to [0, 1] by its maximum (zero columns untouched)."""
    m = np.asarray(matrix, dtype=np.float64).copy()
    col_max = m.max(axis=0)
    nonzero = col_max > 0
    m[:, nonzero] = m[:, nonzero] / col_max[nonzero]
    return m
