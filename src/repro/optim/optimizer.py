"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter
from ..tensor import pool as _pool


class Optimizer:
    """Base class: holds parameters, applies updates, clears gradients."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def capture_step(self) -> Optional[callable]:
        """An in-place update closure for the compiled training step.

        The step compiler (:mod:`repro.tensor.plan`) requires parameter
        arrays to keep their identity across steps, so the closure must
        update ``p.data`` in place -- the reference ``step`` paths that
        rebind ``p.data`` cannot be replayed.  Subclasses with an in-place
        update return a zero-argument callable; the ``None`` default makes
        :class:`~repro.tensor.plan.CompiledStep` fall back to eager.
        """
        return None


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]

    def _sq_sum(g: np.ndarray) -> float:
        buf = _pool.out_buffer(g.shape, g.dtype, tag="clip-sq")
        if buf is None:
            return float((g**2).sum())
        return float(np.multiply(g, g, out=buf).sum())

    total = float(np.sqrt(sum(_sq_sum(p.grad) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            # Leaf grads are exclusively owned by the parameter (the
            # backward driver copies the first contribution), so the
            # pooled path may scale them in place.
            if _pool.buffer_pool_enabled():
                np.multiply(p.grad, scale, out=p.grad)
            else:
                p.grad = p.grad * scale
    return total
