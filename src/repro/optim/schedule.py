"""Learning-rate schedules.

Wrap an optimizer and call :meth:`step` once per epoch; the schedule
mutates ``optimizer.lr`` in place.
"""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer


class LRSchedule:
    """Base class: tracks the epoch count and the base learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.compute_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRSchedule):
    """Cosine annealing from the base rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def compute_lr(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRSchedule):
    """Linear warmup to the base rate, then constant."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int) -> None:
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.warmup_epochs = warmup_epochs
        # Start below the base rate immediately.
        optimizer.lr = self.compute_lr(0)

    def compute_lr(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs:
            return self.base_lr
        return self.base_lr * (epoch + 1) / (self.warmup_epochs + 1)
