"""Optimizers and loss functions."""

from .adam import Adam
from .losses import l1_loss, l2_penalty, mse_loss
from .optimizer import Optimizer, clip_grad_norm
from .schedule import CosineLR, LRSchedule, StepLR, WarmupLR
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "LRSchedule",
    "StepLR",
    "CosineLR",
    "WarmupLR",
    "mse_loss",
    "l1_loss",
    "l2_penalty",
]
