"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class SGD(Optimizer):
    """Plain SGD: ``p -= lr * grad`` (with momentum and weight decay knobs)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad
