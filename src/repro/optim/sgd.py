"""Stochastic gradient descent with optional momentum.

Like :class:`~repro.optim.adam.Adam`, the update runs fully in place (one
scratch buffer per parameter, identical floating-point operation order)
when the buffer pool is enabled, and falls back to the reference
expressions when ``O2_BUFFER_POOL=0``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter
from ..tensor import pool as _pool
from .optimizer import Optimizer


class SGD(Optimizer):
    """Plain SGD: ``p -= lr * grad`` (with momentum and weight decay knobs)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if _pool.buffer_pool_enabled():
            self._step_inplace()
            return
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad

    def capture_step(self):
        """In-place update closure for the compiled step (see base class)."""
        return self._step_inplace

    def _step_inplace(self) -> None:
        if self._scratch is None:
            self._scratch = [np.empty_like(p.data) for p in self.parameters]
        for p, v, s in zip(self.parameters, self._velocity, self._scratch):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s)
                np.add(grad, s, out=s)
                grad = s
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            np.multiply(grad, self.lr, out=s)
            np.subtract(p.data, s, out=p.data)
