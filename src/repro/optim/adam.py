"""Adam optimizer (the paper trains with Adam, lr 1e-4).

With the buffer pool enabled (``O2_BUFFER_POOL``, the default) the update
runs fully in place through two pre-allocated scratch buffers per
parameter: no ``m_hat``/``v_hat``/``grad**2`` temporaries and no fresh
``p.data`` per step.  The scratch path applies the *identical* sequence of
floating-point operations as the reference expression (scalar multiplies
commute bitwise in IEEE 754, ``grad**2 == grad*grad``), so fit curves are
bit-for-bit equal between the two paths -- pinned by
``tests/test_memory_plane.py``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..nn.module import Parameter
from ..tensor import pool as _pool
from .optimizer import Optimizer


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        if _pool.buffer_pool_enabled():
            self._step_inplace(b1t, b2t)
            return
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / b1t
            v_hat = v / b2t
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def capture_step(self):
        """In-place update closure for the compiled step (see base class).

        Always routes through :meth:`_step_inplace` -- with the pool off
        too -- because the scratch path applies the identical FP sequence
        as the reference expression while preserving ``p.data`` identity.
        """

        def _fn() -> None:
            self._t += 1
            self._step_inplace(
                1.0 - self.beta1**self._t, 1.0 - self.beta2**self._t
            )

        return _fn

    def _step_inplace(self, b1t: float, b2t: float) -> None:
        if self._scratch is None:
            self._scratch = [
                (np.empty_like(p.data), np.empty_like(p.data))
                for p in self.parameters
            ]
        for p, m, v, (s1, s2) in zip(
            self.parameters, self._m, self._v, self._scratch
        ):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s1)
                np.add(grad, s1, out=s1)
                grad = s1
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s2)
            m += s2
            v *= self.beta2
            np.multiply(grad, grad, out=s2)
            np.multiply(s2, 1.0 - self.beta2, out=s2)
            v += s2
            # grad (possibly aliasing s1) is dead from here on.
            np.divide(m, b1t, out=s1)  # m_hat
            np.divide(v, b2t, out=s2)  # v_hat
            np.sqrt(s2, out=s2)
            np.add(s2, self.eps, out=s2)
            np.multiply(s1, self.lr, out=s1)
            np.divide(s1, s2, out=s1)
            np.subtract(p.data, s1, out=p.data)
