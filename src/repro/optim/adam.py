"""Adam optimizer (the paper trains with Adam, lr 1e-4)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / b1t
            v_hat = v / b2t
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
