"""Loss functions.

The paper uses two task losses:

* ``O1`` (Eq. 6): mean absolute reconstruction error of delivery times in the
  courier mobility graph -- :func:`l1_loss`;
* ``O2`` (Eq. 16): mean squared error of predicted order counts --
  :func:`mse_loss`;

combined as ``Loss = O2 + beta * O1`` (Eq. 17), see
:func:`repro.core.model.O2SiteRec.loss`.
"""

from __future__ import annotations

from ..tensor import Tensor, as_tensor


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error over all elements."""
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def l2_penalty(parameters, coefficient: float) -> Tensor:
    """Sum of squared parameter values scaled by ``coefficient``."""
    total = None
    for p in parameters:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coefficient
