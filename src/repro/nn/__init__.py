"""Neural-network building blocks on top of :mod:`repro.tensor`."""

from . import init
from .activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh, get_activation
from .attention import FactoredEdgeAttr, MeanSegmentAggregation, MultiHeadSegmentAttention
from .dropout import Dropout
from .embedding import Embedding
from .linear import Linear
from .mlp import MLP
from .module import Module, ModuleList, Parameter
from .norm import LayerNorm

__all__ = [
    "init",
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "MLP",
    "MultiHeadSegmentAttention",
    "FactoredEdgeAttr",
    "MeanSegmentAggregation",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "get_activation",
]
