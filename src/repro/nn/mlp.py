"""Multi-layer perceptron used for prediction heads."""

from __future__ import annotations

from typing import Sequence

from ..tensor import Tensor
from .activations import get_activation
from .dropout import Dropout
from .linear import Linear
from .module import Module, ModuleList


class MLP(Module):
    """Stack of Linear layers with activations between them.

    ``hidden`` lists the hidden sizes; the final layer maps to ``out_dim``
    with ``out_activation`` applied (paper heads use ReLU throughout).
    """

    def __init__(
        self,
        in_dim: int,
        hidden: Sequence[int],
        out_dim: int,
        activation: str = "relu",
        out_activation: str = "identity",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        sizes = [in_dim] + list(hidden) + [out_dim]
        self.layers = ModuleList(
            Linear(sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)
        )
        self.activation = get_activation(activation)
        self.out_activation = get_activation(out_activation)
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        n = len(self.layers)
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < n - 1:
                x = self.activation(x)
                if self.dropout is not None:
                    x = self.dropout(x)
        return self.out_activation(x)
