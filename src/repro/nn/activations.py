"""Activation functions, as modules and as a registry by name."""

from __future__ import annotations

from typing import Callable, Dict

from ..tensor import Tensor
from .module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.2) -> None:
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


_ACTIVATIONS: Dict[str, Callable[[], Module]] = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "identity": Identity,
    "none": Identity,
}


def get_activation(name: str) -> Module:
    """Look up an activation module by name (paper default: ReLU)."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None
