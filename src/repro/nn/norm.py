"""Layer normalisation.

Not part of the paper's architecture, but offered for deeper model stacks
(normalising node embeddings between aggregation layers stabilises training
on larger cities).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .module import Module, Parameter


class LayerNorm(Module):
    """Normalise the last axis to zero mean / unit variance, then affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim), name="gain")
        self.bias = Parameter(np.zeros(dim), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"LayerNorm({self.dim}) got trailing dimension {x.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred * (variance + self.eps) ** -0.5
        return normalised * self.gain + self.bias
