"""Multi-head attention over graph neighbourhoods (segment attention).

Implements the paper's ``Aggre`` function (Eqs. 10-12): importance of each
source node is estimated from the node attributes, the *edge attributes* and
the *edge type*:

* key: ``K_i(u) = W_k^i . sigma(W [z_u, phi_us])`` -- the source embedding is
  first fused with the edge attribute vector, then projected per head;
* query: ``Q_i(s) = W_q^i h_s``;
* score: ``alpha_i(u, s) = softmax(sigma(K_i(u) W_e Q_i(s)^T))`` where ``W_e``
  is trainable and shared by all edges of the same type (each edge type gets
  its own ``MultiHeadSegmentAttention`` instance);
* output: per head ``sigma(sum_u K_i(u) alpha_i(u, s))``, heads concatenated.

The neighbourhood softmax is computed with
:func:`repro.tensor.segment_softmax`, so neighbourhoods of different sizes
need no padding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, concat, gather_rows, segment_softmax, segment_sum
from . import init
from .linear import Linear
from .module import Module, Parameter


class MultiHeadSegmentAttention(Module):
    """Edge-type-specific multi-head attention aggregation.

    Parameters
    ----------
    query_dim:
        Dimension of the target-node embeddings.
    source_dim:
        Dimension of the source-node embeddings.
    edge_dim:
        Dimension of the per-edge attribute vectors (0 if the edge type
        carries no attributes, e.g. plain structural edges).
    num_heads, head_dim:
        Attention heads and per-head width.  The output width is
        ``num_heads * head_dim``.
    """

    def __init__(
        self,
        query_dim: int,
        source_dim: int,
        edge_dim: int,
        num_heads: int,
        head_dim: int,
    ) -> None:
        super().__init__()
        if num_heads < 1 or head_dim < 1:
            raise ValueError("num_heads and head_dim must be positive")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.edge_dim = edge_dim
        fuse_dim = max(source_dim, head_dim)
        # Shared fusion of source embedding and edge attributes (Eq. 10's W).
        self.fuse = Linear(source_dim + edge_dim, fuse_dim)
        self.key_proj = Linear(fuse_dim, num_heads * head_dim, bias=False)
        self.query_proj = Linear(query_dim, num_heads * head_dim, bias=False)
        # Edge-type bilinear form W_e, shared across heads for this edge type.
        self.edge_type_weight = Parameter(
            np.eye(head_dim) + init.normal((head_dim, head_dim), std=0.05),
            name="edge_type_weight",
        )
        self.scale = 1.0 / np.sqrt(head_dim)

    @property
    def out_dim(self) -> int:
        return self.num_heads * self.head_dim

    def forward(
        self,
        target: Tensor,
        source: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        edge_attr: Optional[Tensor] = None,
    ) -> Tensor:
        """Aggregate ``source`` rows into ``target`` slots along edges.

        ``src_index``/``dst_index`` are aligned edge endpoint arrays indexing
        ``source`` and ``target`` respectively.  Returns a tensor of shape
        ``(len(target), num_heads * head_dim)``; targets with no incident
        edge receive zeros.
        """
        num_targets = target.shape[0]
        num_edges = len(src_index)
        if num_edges == 0:
            return Tensor(np.zeros((num_targets, self.out_dim)))

        src_emb = gather_rows(source, src_index)
        if self.edge_dim:
            if edge_attr is None:
                raise ValueError("edge_attr required: edge_dim > 0")
            fused_in = concat([src_emb, edge_attr], axis=1)
        else:
            fused_in = src_emb
        fused = self.fuse(fused_in).relu()

        keys = self.key_proj(fused).reshape(num_edges, self.num_heads, self.head_dim)
        queries = self.query_proj(target).reshape(
            num_targets, self.num_heads, self.head_dim
        )
        q_edge = gather_rows(queries, dst_index)

        # Bilinear score K W_e Q^T per edge per head.
        keys_we = (
            keys.reshape(num_edges * self.num_heads, self.head_dim)
            @ self.edge_type_weight
        ).reshape(num_edges, self.num_heads, self.head_dim)
        scores = (keys_we * q_edge).sum(axis=2) * self.scale
        scores = scores.leaky_relu(0.2)
        weights = segment_softmax(scores, dst_index, num_targets)

        weighted = keys * weights.expand_dims(2)
        aggregated = segment_sum(
            weighted.reshape(num_edges, self.out_dim), dst_index, num_targets
        )
        return aggregated.relu()


class MeanSegmentAggregation(Module):
    """Attribute-blind mean aggregation (the ``w/o NA`` ablation).

    Projects source embeddings to the attention output width so it is a
    drop-in replacement for :class:`MultiHeadSegmentAttention`.
    """

    def __init__(self, source_dim: int, out_dim: int) -> None:
        super().__init__()
        self.proj = Linear(source_dim, out_dim)
        self._out_dim = out_dim

    @property
    def out_dim(self) -> int:
        return self._out_dim

    def forward(
        self,
        target: Tensor,
        source: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        edge_attr: Optional[Tensor] = None,
    ) -> Tensor:
        num_targets = target.shape[0]
        if len(src_index) == 0:
            return Tensor(np.zeros((num_targets, self._out_dim)))
        src_emb = gather_rows(source, src_index)
        messages = self.proj(src_emb).relu()
        from ..tensor import segment_mean

        return segment_mean(messages, dst_index, num_targets)
