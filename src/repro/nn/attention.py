"""Multi-head attention over graph neighbourhoods (segment attention).

Implements the paper's ``Aggre`` function (Eqs. 10-12): importance of each
source node is estimated from the node attributes, the *edge attributes* and
the *edge type*:

* key: ``K_i(u) = W_k^i . sigma(W [z_u, phi_us])`` -- the source embedding is
  first fused with the edge attribute vector, then projected per head;
* query: ``Q_i(s) = W_q^i h_s``;
* score: ``alpha_i(u, s) = softmax(sigma(K_i(u) W_e Q_i(s)^T))`` where ``W_e``
  is trainable and shared by all edges of the same type (each edge type gets
  its own ``MultiHeadSegmentAttention`` instance);
* output: per head ``sigma(sum_u K_i(u) alpha_i(u, s))``, heads concatenated.

The neighbourhood softmax is computed with
:func:`repro.tensor.segment_softmax`, so neighbourhoods of different sizes
need no padding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import (
    Tensor,
    buffer_pool_enabled,
    concat,
    edge_message,
    edge_message_value,
    fast_kernels_enabled,
    gather_rows,
    matmul_blocked,
    pool as _pool,
    rows_matmul,
    segment_attention,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from . import init
from .linear import Linear
from .module import Module, Parameter


class FactoredEdgeAttr:
    """Edge attributes in factored (pre-gather) form.

    Many edge types build their attribute matrix by gathering rows of a much
    smaller table -- e.g. capacity edge embeddings are
    ``concat([b[dst_regions], b[src_regions]])`` for a per-region table ``b``.
    Materialising the ``(E, edge_dim)`` matrix only to push it through the
    linear fusion layer wastes both bandwidth and an E-row matmul: because
    the fusion is linear, each block can be projected at table size first and
    gathered after.  This container keeps the blocks apart so
    :class:`MultiHeadSegmentAttention` can exploit that.

    Parameters
    ----------
    static:
        Dense per-edge block ``(E, s)`` occupying the leading edge-attribute
        columns, or ``None``.
    blocks:
        Sequence of ``(values, index)`` pairs: ``values`` is a ``(N_i, d_i)``
        tensor and ``index`` an ``(E,)`` row map.  Blocks occupy the columns
        after ``static`` in order.
    """

    __slots__ = ("static", "blocks", "dim")

    def __init__(self, static: Optional[Tensor], blocks) -> None:
        self.static = static
        self.blocks = tuple(blocks)
        dim = 0 if static is None else static.shape[1]
        for values, _ in self.blocks:
            dim += values.shape[1]
        self.dim = dim

    def dense(self) -> Tensor:
        """Materialise the equivalent ``(E, edge_dim)`` attribute tensor."""
        parts = [] if self.static is None else [self.static]
        for values, index in self.blocks:
            parts.append(gather_rows(values, index))
        return parts[0] if len(parts) == 1 else concat(parts, axis=1)


class MultiHeadSegmentAttention(Module):
    """Edge-type-specific multi-head attention aggregation.

    Parameters
    ----------
    query_dim:
        Dimension of the target-node embeddings.
    source_dim:
        Dimension of the source-node embeddings.
    edge_dim:
        Dimension of the per-edge attribute vectors (0 if the edge type
        carries no attributes, e.g. plain structural edges).
    num_heads, head_dim:
        Attention heads and per-head width.  The output width is
        ``num_heads * head_dim``.
    """

    def __init__(
        self,
        query_dim: int,
        source_dim: int,
        edge_dim: int,
        num_heads: int,
        head_dim: int,
    ) -> None:
        super().__init__()
        if num_heads < 1 or head_dim < 1:
            raise ValueError("num_heads and head_dim must be positive")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.edge_dim = edge_dim
        fuse_dim = max(source_dim, head_dim)
        # Shared fusion of source embedding and edge attributes (Eq. 10's W).
        self.fuse = Linear(source_dim + edge_dim, fuse_dim)
        self.key_proj = Linear(fuse_dim, num_heads * head_dim, bias=False)
        self.query_proj = Linear(query_dim, num_heads * head_dim, bias=False)
        # Edge-type bilinear form W_e, shared across heads for this edge type.
        self.edge_type_weight = Parameter(
            np.eye(head_dim) + init.normal((head_dim, head_dim), std=0.05),
            name="edge_type_weight",
        )
        self.scale = 1.0 / np.sqrt(head_dim)

    @property
    def out_dim(self) -> int:
        return self.num_heads * self.head_dim

    def forward(
        self,
        target: Tensor,
        source: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        edge_attr: Optional[Tensor] = None,
    ) -> Tensor:
        """Aggregate ``source`` rows into ``target`` slots along edges.

        ``src_index``/``dst_index`` are aligned edge endpoint arrays indexing
        ``source`` and ``target`` respectively.  Returns a tensor of shape
        ``(len(target), num_heads * head_dim)``; targets with no incident
        edge receive zeros.
        """
        num_targets = target.shape[0]
        num_edges = len(src_index)
        if num_edges == 0:
            return Tensor(np.zeros((num_targets, self.out_dim)))
        if self.edge_dim and edge_attr is None:
            raise ValueError("edge_attr required: edge_dim > 0")

        if fast_kernels_enabled():
            # Fast path.  Two rewrites feed one fused kernel:
            #
            # * the fusion layer is linear, so project the source nodes
            #   *before* gathering them onto edges --
            #   ``concat([z[src], phi]) @ W == (z @ W_z)[src] + phi @ W_phi``.
            #   The node-side matmul shrinks from E rows to N_src rows
            #   (edges outnumber nodes by an order of magnitude);
            # * the bilinear score ``K W_e Q^T == K . (Q W_e^T)`` folds W_e
            #   into the query side, moving the (head_dim, head_dim) matmul
            #   from E edge rows to the far fewer target rows.
            #
            # Everything from the key projection to the final relu then runs
            # as a single autograd node (see repro.tensor.segment_attention)
            # instead of a ~10-node chain of E-row intermediates.
            w = self.fuse.weight
            source_dim = source.shape[1]
            pre = source @ w[:source_dim]
            extras = ()
            if not self.edge_dim:
                eproj = None
            elif isinstance(edge_attr, FactoredEdgeAttr):
                # Project each factored block at table size, gather inside
                # edge_message -- no (E, edge_dim) matrix is ever built.
                off = source_dim
                eproj = None
                if edge_attr.static is not None:
                    s = edge_attr.static.shape[1]
                    # Blocked (rows_matmul) so shard workers can rebuild
                    # their edge range's projection bit-for-bit.
                    eproj = rows_matmul(edge_attr.static, w[off : off + s])
                    off += s
                extras = []
                for values, index in edge_attr.blocks:
                    d = values.shape[1]
                    extras.append((values @ w[off : off + d], index))
                    off += d
            else:
                eproj = rows_matmul(edge_attr, w[source_dim:])
            ckpt = buffer_pool_enabled()
            fused = edge_message(
                pre, eproj, self.fuse.bias, src_index, extra=extras, checkpoint=ckpt
            )
            # The projections above were consumed by edge_message's gather;
            # no backward rule reads their values (matmul grads read their
            # parents, edge_message's scatter reads only gradients), so drop
            # them mid-forward -- across periods and relations they are a
            # large slice of the tape's resident set.
            pre.release_data()
            if eproj is not None:
                eproj.release_data()
            for t, _ in extras:
                t.release_data()
            recompute = None
            if ckpt:
                # Checkpoint the (E, F) fused messages too: everything the
                # replay reads -- the raw source/attribute tensors and the
                # fusion weight -- outlives this node on the tape, so the
                # backward can rebuild ``fused.data`` bit-for-bit (same
                # expressions in the same order as the prelude above).
                idx64 = np.asarray(src_index, dtype=np.int64)

                def recompute(
                    source=source,
                    w=w,
                    bias=self.fuse.bias,
                    ea=edge_attr,
                    idx=idx64,
                    sd=source_dim,
                    edge_dim=self.edge_dim,
                ):
                    wd = w.data
                    fuse_dim = wd.shape[1]
                    buf = _pool.out_buffer
                    pre_r = np.matmul(
                        source.data,
                        wd[:sd],
                        out=buf((source.shape[0], fuse_dim), tag="edge-msg-ckpt"),
                    )
                    eproj_r = None
                    extras_r = []
                    off = sd
                    if not edge_dim:
                        pass
                    elif isinstance(ea, FactoredEdgeAttr):
                        if ea.static is not None:
                            s = ea.static.shape[1]
                            eproj_r = matmul_blocked(
                                ea.static.data,
                                wd[off : off + s],
                                out=buf(
                                    (ea.static.shape[0], fuse_dim),
                                    tag="edge-msg-ckpt",
                                ),
                            )
                            off += s
                        for values, index in ea.blocks:
                            d = values.shape[1]
                            extras_r.append((
                                np.matmul(
                                    values.data,
                                    wd[off : off + d],
                                    out=buf(
                                        (values.shape[0], fuse_dim),
                                        tag="edge-msg-ckpt",
                                    ),
                                ),
                                np.asarray(index, dtype=np.int64),
                            ))
                            off += d
                    else:
                        eproj_r = matmul_blocked(
                            ea.data,
                            wd[sd:],
                            out=buf((ea.shape[0], fuse_dim), tag="edge-msg-ckpt"),
                        )
                    return edge_message_value(pre_r, eproj_r, bias.data, idx, extras_r)

            queries = self.query_proj(target)
            q_we = (
                queries.reshape(num_targets * self.num_heads, self.head_dim)
                @ self.edge_type_weight.T
            ).reshape(num_targets, self.num_heads, self.head_dim)
            att = segment_attention(
                fused,
                self.key_proj.weight,
                q_we,
                dst_index,
                num_targets,
                self.scale,
                negative_slope=0.2,
                recompute_input=recompute,
            )
            if recompute is not None:
                # edge_message pinned only the relu sign mask and
                # segment_attention replays the value on demand, so the
                # (E, F) fused block recycles mid-forward as well.
                fused.release_data()
            return att

        src_emb = gather_rows(source, src_index)
        if self.edge_dim:
            if isinstance(edge_attr, FactoredEdgeAttr):
                edge_attr = edge_attr.dense()
            fused_in = concat([src_emb, edge_attr], axis=1)
        else:
            fused_in = src_emb
        fused = self.fuse(fused_in).relu()

        keys = self.key_proj(fused).reshape(num_edges, self.num_heads, self.head_dim)
        queries = self.query_proj(target).reshape(
            num_targets, self.num_heads, self.head_dim
        )

        q_edge = gather_rows(queries, dst_index)
        # Bilinear score K W_e Q^T per edge per head.
        keys_we = (
            keys.reshape(num_edges * self.num_heads, self.head_dim)
            @ self.edge_type_weight
        ).reshape(num_edges, self.num_heads, self.head_dim)
        scores = (keys_we * q_edge).sum(axis=2) * self.scale
        scores = scores.leaky_relu(0.2)
        weights = segment_softmax(scores, dst_index, num_targets)

        weighted = keys * weights.expand_dims(2)
        aggregated = segment_sum(
            weighted.reshape(num_edges, self.out_dim), dst_index, num_targets
        )
        return aggregated.relu()


class MeanSegmentAggregation(Module):
    """Attribute-blind mean aggregation (the ``w/o NA`` ablation).

    Projects source embeddings to the attention output width so it is a
    drop-in replacement for :class:`MultiHeadSegmentAttention`.
    """

    def __init__(self, source_dim: int, out_dim: int) -> None:
        super().__init__()
        self.proj = Linear(source_dim, out_dim)
        self._out_dim = out_dim

    @property
    def out_dim(self) -> int:
        return self._out_dim

    def forward(
        self,
        target: Tensor,
        source: Tensor,
        src_index: np.ndarray,
        dst_index: np.ndarray,
        edge_attr: Optional[Tensor] = None,
    ) -> Tensor:
        num_targets = target.shape[0]
        if len(src_index) == 0:
            return Tensor(np.zeros((num_targets, self._out_dim)))
        if fast_kernels_enabled():
            # Project before gathering (see MultiHeadSegmentAttention).
            messages = gather_rows(self.proj(source), src_index).relu()
        else:
            messages = self.proj(gather_rows(source, src_index)).relu()
        return segment_mean(messages, dst_index, num_targets)
