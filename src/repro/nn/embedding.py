"""Learnable lookup-table embeddings (node-ID latent features)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, gather_rows
from . import init
from .module import Module, Parameter


class Embedding(Module):
    """A table of ``num_embeddings`` rows of size ``embedding_dim``.

    Used for the paper's four randomly-initialised, jointly-learned ID
    embeddings (region embeddings ``b``, store-region ``h'``,
    customer-region ``z'`` and store-type ``q'``).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, std: float = 0.1) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), std=std), name="weight"
        )

    def forward(self, indices=None) -> Tensor:
        """Look up rows; with ``indices=None`` return the full table."""
        if indices is None:
            return self.weight
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return gather_rows(self.weight, idx)
