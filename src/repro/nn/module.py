"""Module/Parameter abstractions, modelled after ``torch.nn``.

A :class:`Module` owns :class:`Parameter` tensors and child modules;
``parameters()`` walks the tree so optimizers can update everything that was
registered by attribute assignment.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` always)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by :meth:`parameters` and
    :meth:`named_parameters`.  ``train()``/``eval()`` toggle behaviours such
    as dropout.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # -- parameter discovery ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield from child.named_parameters(prefix=f"{name}.{i}.")
            elif isinstance(value, dict):
                for k, child in value.items():
                    if isinstance(child, Module):
                        yield from child.named_parameters(prefix=f"{name}.{k}.")
                    elif isinstance(child, Parameter):
                        yield f"{name}.{k}", child

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, ModuleList):
                for child in value:
                    yield from child.modules()
            elif isinstance(value, dict):
                for child in value.values():
                    if isinstance(child, Module):
                        yield from child.modules()

    # -- training mode ------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- gradient/state management -------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].copy()

    # -- call protocol --------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList:
    """An ordered container of modules discovered by parameter traversal."""

    def __init__(self, modules=()) -> None:
        self._modules: List[Module] = list(modules)

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
