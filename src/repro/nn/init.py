"""Weight initialisation schemes.

A process-local :func:`seed` / :func:`default_rng` pair keeps model
construction reproducible without threading a generator through every
constructor.
"""

from __future__ import annotations

import numpy as np

_RNG = np.random.default_rng(0)


def seed(value: int) -> None:
    """Reset the global initialiser RNG (call before building a model)."""
    global _RNG
    _RNG = np.random.default_rng(value)


def default_rng() -> np.random.Generator:
    return _RNG


def xavier_uniform(fan_in: int, fan_out: int, shape=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return _RNG.uniform(-limit, limit, size=shape)


def normal(shape, std: float = 0.1) -> np.ndarray:
    return _RNG.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
