"""Dense (affine) layer."""

from __future__ import annotations

from ..tensor import Tensor
from . import init
from .module import Module, Parameter


class Linear(Module):
    """``y = x @ W + b`` with Xavier-initialised ``W``.

    Accepts inputs of shape ``(..., in_features)``.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(in_features, out_features), name="weight"
        )
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
