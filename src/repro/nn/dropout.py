"""Inverted dropout (the paper applies dropout to alleviate overfitting)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor import plan as _plan
from . import init
from .module import Module


class Dropout(Module):
    """Zero each element with probability ``p`` during training.

    Uses inverted scaling (division by keep probability) so evaluation is a
    no-op.
    """

    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (init.default_rng().random(x.shape) < keep) / keep
        if _plan.tracing():
            # Compiled-step replay draws the same number of variates from
            # the same global stream in the same order as an eager step
            # (thunks run in emission order), refreshing the captured mask
            # in place -- so compiled and eager runs consume the RNG
            # identically and stay bit-for-bit comparable.
            shape = x.shape

            def _redraw_mask() -> None:
                r = init.default_rng().random(shape)
                np.divide(r < keep, keep, out=mask)

            _plan.emit_aux(_redraw_mask)
        return x * Tensor(mask)
