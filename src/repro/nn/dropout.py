"""Inverted dropout (the paper applies dropout to alleviate overfitting)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from . import init
from .module import Module


class Dropout(Module):
    """Zero each element with probability ``p`` during training.

    Uses inverted scaling (division by keep probability) so evaluation is a
    no-op.
    """

    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (init.default_rng().random(x.shape) < keep) / keep
        return x * Tensor(mask)
