"""Rolling-origin (temporal) evaluation protocol.

The paper splits (store-region, type) interactions randomly within one
month.  A stricter protocol for a *deployment* claim is temporal: build the
graphs and features from the first ``train_days`` only, train on that
window's order counts, and rank candidate regions by the **following
window's** order counts.  Nothing after the cut-off leaks into the model.

This module implements that protocol on the simulator and compares
O2-SiteRec against any baseline under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import BASELINE_REGISTRY
from ..city import real_world_dataset
from ..core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from ..data import MINUTES_PER_DAY, SiteRecDataset
from ..data.split import split_interactions
from ..metrics import EvaluationResult, evaluate_model
from ..nn import init


@dataclass
class TemporalConfig:
    """Scope of a rolling-origin evaluation."""

    scale: float = 0.6
    train_days: int = 10  # past window (graphs, features, train targets)
    seed: int = 0
    epochs: int = 50
    lr: float = 1e-2
    patience: int = 12
    top_n_frac: float = 0.35
    model_config: O2SiteRecConfig = field(default_factory=O2SiteRecConfig)


@dataclass
class TemporalDatasets:
    """Past-window dataset plus future-window targets."""

    past: SiteRecDataset  # built from the first train_days only
    future_targets: np.ndarray  # (N, T) normalised counts of the rest
    train_days: int
    future_days: int


def build_temporal_datasets(config: Optional[TemporalConfig] = None) -> TemporalDatasets:
    """Simulate a month and slice it at the ``train_days`` boundary."""
    config = config or TemporalConfig()
    sim = real_world_dataset(seed=7 + config.seed, scale=config.scale)
    total_days = sim.config.num_days
    if not 0 < config.train_days < total_days:
        raise ValueError(
            f"train_days must be in (0, {total_days}), got {config.train_days}"
        )
    cut = config.train_days * MINUTES_PER_DAY
    past_orders = [o for o in sim.orders if o.created_minute < cut]
    future_orders = [o for o in sim.orders if o.created_minute >= cut]
    if not past_orders or not future_orders:
        raise RuntimeError("temporal slice produced an empty window")

    past = SiteRecDataset.from_simulation(sim, orders=past_orders)

    from ..data.aggregates import OrderAggregates

    future = OrderAggregates.from_orders(
        future_orders, sim.land.num_regions, sim.config.num_store_types
    )
    scale = max(future.counts_sa.max(), 1.0)
    return TemporalDatasets(
        past=past,
        future_targets=future.counts_sa / scale,
        train_days=config.train_days,
        future_days=total_days - config.train_days,
    )


class _FutureView:
    """A dataset facade whose targets are the future window's counts."""

    def __init__(self, past: SiteRecDataset, future_targets: np.ndarray) -> None:
        self._past = past
        self.targets = future_targets

    def __getattr__(self, name):
        return getattr(self._past, name)

    def pair_targets(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        return self.targets[pairs[:, 0], pairs[:, 1]]


def run_temporal_evaluation(
    config: Optional[TemporalConfig] = None,
    baselines: Sequence[str] = ("HGT", "GraphRec"),
) -> Dict[str, EvaluationResult]:
    """Train on the past window, rank candidates by future demand.

    Every model sees only past-window data (graphs, features, train
    targets); the evaluation relevance comes from the future window.
    Returns ``{model name: EvaluationResult}``.
    """
    config = config or TemporalConfig()
    data = build_temporal_datasets(config)
    past = data.past
    split = split_interactions(
        past.store_regions, past.num_types, train_frac=0.8, seed=config.seed
    )
    train_targets = past.pair_targets(split.train_pairs)
    future_view = _FutureView(past, data.future_targets)

    train_config = TrainConfig(
        epochs=config.epochs,
        lr=config.lr,
        patience=config.patience,
        seed=config.seed,
    )

    results: Dict[str, EvaluationResult] = {}

    init.seed(config.seed * 17 + 1)
    ours = O2SiteRec(past, split, config.model_config)
    Trainer(ours, train_config).fit(split.train_pairs, train_targets)
    results["O2-SiteRec"] = evaluate_model(
        ours, future_view, split, top_n_frac=config.top_n_frac
    )

    for name in baselines:
        init.seed(config.seed * 17 + 2 + hash(name) % 1000)
        model = BASELINE_REGISTRY[name](past, split, setting="adaption")
        Trainer(model, train_config).fit(split.train_pairs, train_targets)
        results[name] = evaluate_model(
            model, future_view, split, top_n_frac=config.top_n_frac
        )
    return results
