"""Motivation analyses (Section II): Figs. 1-5 and Table II.

Each function consumes a :class:`~repro.city.SimulationResult` (the raw
order log and fleet) and returns the numbers behind the corresponding paper
figure; the benchmark harness prints them as series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats

from ..city.couriers import ACTIVE_FRACTION
from ..city.simulator import SimulationResult
from ..data.periods import TimePeriod
from ..data.records import MINUTES_PER_DAY


def _hour_bin(minute: float, bin_hours: int = 2) -> int:
    return int((minute % MINUTES_PER_DAY) // 60) // bin_hours


# int(created % 1440 // 60) -> TimePeriod, as a gather table.
_PERIOD_OF_HOUR = np.array(
    [int(TimePeriod.from_hour(h)) for h in range(24)], dtype=np.int64
)


def supply_demand_by_bin(
    sim: SimulationResult, bin_hours: int = 2
) -> Dict[str, np.ndarray]:
    """Fig. 1: normalised orders, couriers and supply-demand ratio per bin.

    Orders are counted from the log; couriers on shift come from the fleet's
    per-period schedule.  Counts are max-normalised as in the paper.
    """
    bins = 24 // bin_hours
    table = sim.order_table
    if table is not None and len(table):
        created = table.column("created_minute")
        hour_bins = (
            (created % MINUTES_PER_DAY) // 60
        ).astype(np.int64) // bin_hours
        orders = np.bincount(hour_bins, minlength=bins).astype(np.float64)
    else:
        orders = np.zeros(bins)
        for o in sim.orders:
            orders[_hour_bin(o.created_minute, bin_hours)] += 1

    couriers = np.zeros(bins)
    for b in range(bins):
        hour = b * bin_hours + bin_hours // 2
        period = TimePeriod.from_hour(hour)
        active = sim.config.num_couriers * ACTIVE_FRACTION[period]
        # The platform is mostly idle overnight (00:00-06:00).
        if hour < 6:
            active *= 0.25
        couriers[b] = active

    ratio = np.divide(couriers, orders, out=np.zeros(bins), where=orders > 0)
    return {
        "hours": np.arange(bins) * bin_hours,
        "orders": orders / max(orders.max(), 1.0),
        "couriers": couriers / max(couriers.max(), 1.0),
        "ratio": ratio / max(ratio[orders > 0].max(), 1e-9) if (orders > 0).any() else ratio,
    }


def delivery_time_vs_ratio(
    sim: SimulationResult, bin_hours: int = 2
) -> Dict[str, np.ndarray]:
    """Fig. 2: mean delivery time against the supply-demand ratio per bin.

    Returns the two aligned series plus their Pearson correlation -- the
    paper's argument that delivery time quantifies courier capacity.
    """
    bins = 24 // bin_hours
    dt_sum = np.zeros(bins)
    counts = np.zeros(bins)
    for o in sim.orders:
        b = _hour_bin(o.created_minute, bin_hours)
        dt_sum[b] += o.delivery_minutes
        counts[b] += 1
    delivery = np.divide(dt_sum, counts, out=np.zeros(bins), where=counts > 0)

    fig1 = supply_demand_by_bin(sim, bin_hours)
    valid = counts > 0
    if valid.sum() >= 3:
        corr = float(stats.pearsonr(fig1["ratio"][valid], delivery[valid])[0])
    else:
        corr = float("nan")
    return {
        "hours": fig1["hours"],
        "ratio": fig1["ratio"],
        "delivery_minutes": delivery,
        "correlation": np.array(corr),
    }


def delivery_scope_by_period(sim: SimulationResult) -> Dict[str, np.ndarray]:
    """Fig. 3: average farthest delivery distance of stores per period."""
    scope_sum = {p: 0.0 for p in TimePeriod}
    scope_max: Dict[Tuple[int, int], float] = {}
    for o in sim.orders:
        key = (o.store_region, int(o.period))
        scope_max[key] = max(scope_max.get(key, 0.0), o.distance_m)
    counts = {p: 0 for p in TimePeriod}
    for (region, t), value in scope_max.items():
        period = TimePeriod(t)
        scope_sum[period] += value
        counts[period] += 1
    return {
        "periods": np.array([p.label for p in TimePeriod], dtype=object),
        "scope_m": np.array(
            [scope_sum[p] / max(counts[p], 1) for p in TimePeriod]
        ),
    }


def delivery_time_distribution(
    sim: SimulationResult,
    distance_band_m: Tuple[float, float] = (2500.0, 3000.0),
    time_bins_min: Sequence[float] = (0, 10, 20, 30, 40, 50, 60, np.inf),
) -> Dict[str, np.ndarray]:
    """Fig. 4: delivery-time histogram at a fixed distance band, per period.

    Shows that the same distance takes different times in different periods
    (capacity varies) and that order volume decays with delivery time.
    """
    lo, hi = distance_band_m
    edges = np.asarray(time_bins_min, dtype=np.float64)
    nbins = len(edges) - 1
    table = sim.order_table
    if table is not None and len(table):
        distance = table.column("distance_m")
        keep = (distance >= lo) & (distance < hi)
        created = table.column("created_minute")[keep]
        minutes = (
            table.column("delivered_minute")[keep]
            - table.column("pickup_minute")[keep]
        )
        hours = (created.astype(np.int64) % MINUTES_PER_DAY) // 60
        periods = _PERIOD_OF_HOUR[hours]
        b = np.clip(np.searchsorted(edges, minutes, side="right") - 1, 0, nbins - 1)
        hist = np.bincount(
            periods * nbins + b, minlength=len(TimePeriod) * nbins
        ).reshape(len(TimePeriod), nbins).astype(np.float64)
    else:
        hist = np.zeros((len(TimePeriod), nbins))
        for o in sim.orders:
            if not lo <= o.distance_m < hi:
                continue
            b = int(np.searchsorted(edges, o.delivery_minutes, side="right")) - 1
            b = min(max(b, 0), nbins - 1)
            hist[int(o.period), b] += 1
    return {
        "periods": np.array([p.label for p in TimePeriod], dtype=object),
        "edges": edges,
        "histogram": hist,
    }


def top_store_types_by_period(
    sim: SimulationResult, k: int = 3
) -> Dict[TimePeriod, List[Tuple[str, int]]]:
    """Fig. 5: top-k popular store types per period (city-wide counts)."""
    counts = np.zeros((len(TimePeriod), sim.config.num_store_types))
    for o in sim.orders:
        counts[int(o.period), o.store_type] += 1
    names = sim.config.type_names
    result = {}
    for period in TimePeriod:
        order = np.argsort(-counts[int(period)])[:k]
        result[period] = [(names[a], int(counts[int(period), a])) for a in order]
    return result


def order_distance_distribution(
    sim: SimulationResult,
    edges_m: Sequence[float] = (0, 500, 1000, 1500, 2000, 2500, 3000, 4000, np.inf),
) -> Dict[str, np.ndarray]:
    """Histogram of customer-store distances over all orders.

    Companion statistic to Table II's radius analysis: most O2O orders fall
    in the 0.5-3 km band (nearer and people pick up in person; farther and
    the delivery scope cuts off).
    """
    bounds = np.asarray(edges_m, dtype=np.float64)
    counts = np.zeros(len(bounds) - 1)
    for o in sim.orders:
        b = int(np.searchsorted(bounds, o.distance_m, side="right")) - 1
        counts[min(max(b, 0), len(counts) - 1)] += 1
    return {"edges_m": bounds, "counts": counts, "share": counts / counts.sum()}


def courier_utilisation_by_period(sim: SimulationResult) -> Dict[str, np.ndarray]:
    """Orders handled per on-shift courier per hour, per period.

    The workload view of Fig. 1: rush-hour couriers carry multiples of the
    afternoon load even though more of them are on shift.
    """
    orders_per_period = np.zeros(len(TimePeriod))
    for o in sim.orders:
        orders_per_period[int(o.period)] += 1
    loads = []
    for period in TimePeriod:
        active = sim.fleet.active_couriers(period)
        hours = period.duration_hours * sim.config.num_days
        loads.append(orders_per_period[int(period)] / max(active * hours, 1e-9))
    return {
        "periods": np.array([p.label for p in TimePeriod], dtype=object),
        "orders_per_courier_hour": np.array(loads),
    }


def preference_order_correlation(
    sim: SimulationResult,
    radii_km: Sequence[float] = (1, 2, 3, 4, 5),
    per_type: bool = False,
) -> Dict[float, float]:
    """Table II: Pearson correlation between neighbourhood customer
    preferences and store-region orders, per radius.

    Orders = orders served by the stores of a region; preferences = orders
    placed by customers of regions within the radius.  By default the
    statistic is computed at region level (total orders vs total
    neighbourhood preference volume, over regions with stores): on a
    scaled-down synthetic city, the paper's per-(region, type) pooled
    version is dominated by supply quantisation noise (most region-type
    cells hold 0 or 1 store), while the region-level statistic preserves
    the claim Table II supports -- demand around a site strongly predicts
    its order volume, with weak radius dependence.  ``per_type=True``
    computes the literal per-cell version (restricted to cells whose type
    is actually supplied).  See DESIGN.md / EXPERIMENTS.md.
    """
    from ..data.aggregates import OrderAggregates

    agg = OrderAggregates.from_orders(
        sim.orders, sim.land.num_regions, sim.config.num_store_types
    )
    orders = agg.counts_sa
    counts_u = agg.counts_uat.sum(axis=2)
    grid = sim.land.grid
    store_counts = None
    if per_type:
        from ..city.stores import store_type_counts

        store_counts = store_type_counts(
            sim.stores, sim.land.num_regions, sim.config.num_store_types
        )

    result = {}
    for radius in radii_km:
        prefs = counts_u.copy()
        for r in range(sim.land.num_regions):
            neigh = grid.neighbors_within(r, radius * 1000.0)
            if neigh:
                prefs[r] = counts_u[r] + counts_u[neigh].sum(axis=0)
        if per_type:
            mask = store_counts.ravel() > 0
            x, y = orders.ravel()[mask], prefs.ravel()[mask]
        else:
            active = orders.sum(axis=1) > 0
            x, y = orders.sum(axis=1)[active], prefs.sum(axis=1)[active]
        result[float(radius)] = float(stats.pearsonr(x, y)[0])
    return result
