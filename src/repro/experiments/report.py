"""Assemble the bench outputs into a single reproduction report.

Every bench writes its paper-shaped table to ``benchmarks/results/<id>.txt``;
this module stitches them into one markdown document (the machine-generated
companion to the hand-written EXPERIMENTS.md).

    python -c "from repro.experiments.report import write_report; write_report()"
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .registry import EXPERIMENTS

# Rendering order: motivation, main tables, ablations, factors, sensitivity.
SECTION_ORDER: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Motivation (Section II)", ("fig01", "fig02", "fig03", "fig04", "fig05", "table02")),
    ("Main comparison (Section IV-B)", ("table03", "table04")),
    ("Ablations (Section IV-C)", ("fig10", "fig11")),
    ("Impact of factors (Section IV-D)", ("fig12_13", "fig14")),
    ("Sensitivity (Section IV-E)", ("fig15", "fig16")),
    ("Beyond the paper", ("design_ablation", "temporal")),
)


@dataclass
class ReportStatus:
    """What the assembler found on disk."""

    present: List[str]
    missing: List[str]

    @property
    def complete(self) -> bool:
        return not self.missing


def collect_results(results_dir: Path) -> Dict[str, str]:
    """Read every result block present under ``results_dir``."""
    results: Dict[str, str] = {}
    if not results_dir.is_dir():
        return results
    for path in sorted(results_dir.glob("*.txt")):
        results[path.stem] = path.read_text().rstrip()
    return results


def report_status(results_dir: Path) -> ReportStatus:
    """Which expected result blocks exist / are missing."""
    expected = [rid for _, ids in SECTION_ORDER for rid in ids]
    present = collect_results(results_dir)
    return ReportStatus(
        present=[rid for rid in expected if rid in present],
        missing=[rid for rid in expected if rid not in present],
    )


def build_report(results_dir: Path) -> str:
    """Render the markdown report from whatever results exist."""
    results = collect_results(results_dir)
    lines = [
        "# Reproduction report (auto-generated)",
        "",
        "Assembled from `benchmarks/results/` — regenerate any block with",
        "`pytest benchmarks/<bench file> --benchmark-only` or the CLI",
        "`python -m repro.experiments <id>`. Paper-vs-measured commentary:",
        "`EXPERIMENTS.md`.",
        "",
    ]
    for section, ids in SECTION_ORDER:
        blocks = [(rid, results[rid]) for rid in ids if rid in results]
        if not blocks:
            continue
        lines.append(f"## {section}")
        lines.append("")
        for rid, text in blocks:
            lines.append("```")
            lines.append(text)
            lines.append("```")
            lines.append("")
    status = report_status(results_dir)
    if status.missing:
        lines.append(
            "_Missing blocks (bench not yet run): " + ", ".join(status.missing) + "_"
        )
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: Optional[Path] = None, output: Optional[Path] = None
) -> Path:
    """Write REPORT.md next to the results directory.  Returns the path."""
    if results_dir is None:
        results_dir = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    results_dir = Path(results_dir)
    if output is None:
        output = results_dir.parent.parent / "REPORT.md"
    output = Path(output)
    output.write_text(build_report(results_dir))
    return output
