"""Hyper-parameter grid search over O2-SiteRec configurations.

A small, dependency-free tuner for the scaled-down cities: enumerate a
grid of :class:`~repro.core.O2SiteRecConfig` overrides, train each on the
same rounds, and rank by a chosen metric.  Used to pick the repository's
defaults; exposed because any downstream user retuning for their own city
size will need it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics import evaluate_model
from .harness import HarnessConfig, build_dataset, train_o2siterec


@dataclass(frozen=True)
class TrialResult:
    """One grid point's averaged outcome."""

    overrides: Tuple[Tuple[str, object], ...]
    metric: str
    mean: float
    std: float
    rounds: int

    @property
    def overrides_dict(self) -> Dict[str, object]:
        return dict(self.overrides)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v}" for k, v in self.overrides)
        return f"{params or 'defaults'}: {self.metric}={self.mean:.4f}±{self.std:.4f}"


def grid_search(
    grid: Dict[str, Sequence],
    config: Optional[HarnessConfig] = None,
    kind: str = "real",
    metric: str = "NDCG@3",
    maximize: Optional[bool] = None,
    verbose: bool = False,
) -> List[TrialResult]:
    """Evaluate every combination in ``grid`` and return trials, best first.

    ``grid`` maps O2SiteRecConfig field names to candidate values, e.g.
    ``{"embedding_dim": [20, 40], "beta": [0.0, 0.2]}``.  ``maximize``
    defaults to True unless the metric is RMSE.
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    config = config or HarnessConfig()
    if maximize is None:
        maximize = metric.upper() != "RMSE"

    names = sorted(grid)
    combos = list(itertools.product(*(grid[name] for name in names)))

    # Build every round's dataset once; reuse across grid points.
    rounds = []
    for r in range(config.rounds):
        seed = config.base_seed + r
        rounds.append((seed, *build_dataset(kind, seed, config.scale)))

    trials: List[TrialResult] = []
    for combo in combos:
        overrides = dict(zip(names, combo))
        model_config = replace(config.model_config, **overrides)
        scores = []
        for seed, dataset, split in rounds:
            model = train_o2siterec(
                dataset, split, config, model_config=model_config, seed=seed
            )
            result = evaluate_model(
                model,
                dataset,
                split,
                top_n=config.top_n,
                top_n_frac=config.top_n_frac,
            )
            scores.append(result[metric])
        trial = TrialResult(
            overrides=tuple(sorted(overrides.items())),
            metric=metric,
            mean=float(np.mean(scores)),
            std=float(np.std(scores)),
            rounds=len(scores),
        )
        trials.append(trial)
        if verbose:
            print(trial)

    trials.sort(key=lambda t: t.mean, reverse=maximize)
    return trials
