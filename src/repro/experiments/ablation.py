"""Ablation studies (RQ2 & RQ3): Figs. 10 and 11.

Four variants against the full model:

* **w/o Co**   -- no courier capacity model, S-U edges built without the
  capacity-aware scope rule (Fig. 10);
* **w/o CoCu** -- additionally drops the S-U and U-A edges, removing
  customer preferences (Fig. 10);
* **w/o NA**   -- mean aggregation instead of the node-level attention
  (Fig. 11);
* **w/o SA**   -- mean over periods instead of the time semantics-level
  attention (Fig. 11).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core import O2SiteRecConfig
from ..metrics import EvaluationResult, MultiRoundResult, evaluate_model
from .harness import HarnessConfig, build_dataset, train_o2siterec

VARIANTS = ("O2-SiteRec", "w/o Co", "w/o CoCu", "w/o NA", "w/o SA")


def variant_config(base: O2SiteRecConfig, variant: str) -> O2SiteRecConfig:
    """The model configuration implementing a named ablation."""
    if variant == "O2-SiteRec":
        return base
    if variant == "w/o Co":
        return base.without_capacity()
    if variant == "w/o CoCu":
        return base.without_capacity_and_preferences()
    if variant == "w/o NA":
        return base.without_node_attention()
    if variant == "w/o SA":
        return base.without_time_attention()
    raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")


def run_ablation(
    variants: Sequence[str] = VARIANTS,
    config: Optional[HarnessConfig] = None,
    kind: str = "real",
    verbose: bool = False,
) -> Dict[str, MultiRoundResult]:
    """Train and evaluate the requested variants over all rounds."""
    config = config or HarnessConfig()
    results: Dict[str, list] = {v: [] for v in variants}
    for r in range(config.rounds):
        seed = config.base_seed + r
        dataset, split = build_dataset(kind, seed, config.scale)
        for variant in variants:
            model = train_o2siterec(
                dataset,
                split,
                config,
                model_config=variant_config(config.model_config, variant),
                seed=seed,
                init_tag="ablation",  # paired inits across variants
            )
            result = evaluate_model(model, dataset, split, top_n=config.top_n, top_n_frac=config.top_n_frac)
            results[variant].append(result)
            if verbose:
                print(
                    f"round {r} {variant}: NDCG@3={result['NDCG@3']:.4f} "
                    f"Precision@3={result['Precision@3']:.4f}"
                )
    return {v: MultiRoundResult(rows) for v, rows in results.items()}
