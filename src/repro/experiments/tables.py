"""Plain-text rendering of paper-shaped tables and figure series."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..metrics import MultiRoundResult, significance_marker
from .harness import ComparisonTable


def format_comparison_table(
    table: ComparisonTable,
    title: str = "Performance comparison",
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Render a ComparisonTable in the layout of Table III / IV."""
    metrics = list(metrics or table.metrics)
    name_width = max(len(k) for k in table.rows) + 2
    header = f"{'model':<{name_width}}" + "".join(f"{m:>14}" for m in metrics)
    lines = [title, "=" * len(header), header, "-" * len(header)]

    for key, result in table.rows.items():
        cells = []
        for m in metrics:
            value = result.mean(m)
            marker = ""
            if key == "O2-SiteRec":
                marker = significance_marker(table.p_value(m))
            cells.append(f"{value:.4f}{marker:<2}".rjust(14))
        lines.append(f"{key:<{name_width}}" + "".join(cells))

    lines.append("-" * len(header))
    lines.append(
        "** / * : significant at 0.01 / 0.05 (paired t-test vs "
        f"{table.reference_row})"
    )
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    fmt: str = "{:.4f}",
) -> str:
    """Render one figure's data as an aligned text table."""
    x_strs = [str(x) for x in x_values]
    x_width = max(len(x_label), max((len(s) for s in x_strs), default=0)) + 2
    name_width = max((len(n) for n in series), default=4) + 2

    header = f"{x_label:<{x_width}}" + "".join(
        f"{name:>{max(len(name) + 2, 12)}}" for name in series
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for i, x in enumerate(x_strs):
        cells = "".join(
            fmt.format(values[i]).rjust(max(len(name) + 2, 12))
            for name, values in series.items()
        )
        lines.append(f"{x:<{x_width}}{cells}")
    return "\n".join(lines)


def format_bar_groups(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    fmt: str = "{:.4f}",
) -> str:
    """Render grouped-bar figures (Figs. 10-14) as a text table."""
    return format_series(title, "group", groups, series, fmt=fmt)
