"""Impact-of-factors experiments (RQ4): Figs. 12, 13 and 14.

* Figs. 12/13: per-store-type results for the six highlighted types (light
  meal, light salad, fruit, steamed buns, juice, fried chicken) comparing
  O2-SiteRec against HGT and GraphRec.
* Fig. 14: performance over region subsets by geographic distribution --
  downtown, suburb and average (all regions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..metrics import evaluate_model
from .harness import HarnessConfig, build_dataset, train_baseline, train_o2siterec

FOCUS_TYPES = (
    "light_meal",
    "light_salad",
    "fruit",
    "steamed_buns",
    "juice",
    "fried_chicken",
)

COMPARED_BASELINES = ("HGT", "GraphRec")  # the two shown in Fig. 12/13

GEOGRAPHY_GROUPS = ("downtown", "suburb", "average")


def per_type_results(
    config: Optional[HarnessConfig] = None,
    kind: str = "real",
    focus_types: Sequence[str] = FOCUS_TYPES,
    metric: str = "NDCG@3",
) -> Dict[str, Dict[str, float]]:
    """Figs. 12/13: ``{model: {type_name: metric}}`` averaged over rounds."""
    config = config or HarnessConfig()
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, Dict[str, int]] = {}

    for r in range(config.rounds):
        seed = config.base_seed + r
        dataset, split = build_dataset(kind, seed, config.scale)
        type_ids = [dataset.type_index(name) for name in focus_types]

        models = {"O2-SiteRec": train_o2siterec(dataset, split, config, seed=seed)}
        for name in COMPARED_BASELINES:
            models[name] = train_baseline(
                name, "adaption", dataset, split, config, seed
            )

        for model_name, model in models.items():
            result = evaluate_model(
                model, dataset, split, top_n=config.top_n, top_n_frac=config.top_n_frac, types=type_ids
            )
            for a, row in result.per_type.items():
                type_name = dataset.type_names[a]
                sums.setdefault(model_name, {}).setdefault(type_name, 0.0)
                counts.setdefault(model_name, {}).setdefault(type_name, 0)
                sums[model_name][type_name] += row[metric]
                counts[model_name][type_name] += 1

    return {
        model_name: {
            t: sums[model_name][t] / counts[model_name][t]
            for t in sums[model_name]
        }
        for model_name in sums
    }


def geography_results(
    config: Optional[HarnessConfig] = None,
    kind: str = "real",
    metric: str = "NDCG@3",
) -> Dict[str, float]:
    """Fig. 14: O2-SiteRec performance per geographic distribution.

    "downtown" pools the downtown and office archetypes; "suburb" is the
    suburb archetype; "average" is all regions.  Grouping uses the
    simulator's latent archetypes -- evaluation-side knowledge only, exactly
    like the paper's region labels.
    """
    config = config or HarnessConfig()
    sums = {g: 0.0 for g in GEOGRAPHY_GROUPS}
    counts = {g: 0 for g in GEOGRAPHY_GROUPS}

    for r in range(config.rounds):
        seed = config.base_seed + r
        dataset, split = build_dataset(kind, seed, config.scale)
        model = train_o2siterec(dataset, split, config, seed=seed)

        downtown = np.concatenate(
            [
                dataset.analysis.regions_of("downtown"),
                dataset.analysis.regions_of("office"),
            ]
        )
        suburb = dataset.analysis.regions_of("suburb")
        filters = {"downtown": downtown, "suburb": suburb, "average": None}

        for group, regions in filters.items():
            try:
                result = evaluate_model(
                    model,
                    dataset,
                    split,
                    top_n=config.top_n,
                    top_n_frac=config.top_n_frac,
                    regions_filter=regions,
                    # Degenerate pools rank trivially and would flatter the
                    # sparse suburbs: require a real pool with at least two
                    # active candidates to order.
                    min_candidates=5,
                    min_positive=2,
                )
            except ValueError:
                continue  # too few candidates in this subset this round
            sums[group] += result[metric]
            counts[group] += 1

    return {
        g: (sums[g] / counts[g]) if counts[g] else float("nan")
        for g in GEOGRAPHY_GROUPS
    }
