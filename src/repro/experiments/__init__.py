"""Experiment harness: every table and figure of the paper's evaluation."""

from ..metrics import evaluate_model  # convenience re-export for harness users
from .ablation import VARIANTS, run_ablation, variant_config
from .factors import (
    COMPARED_BASELINES,
    FOCUS_TYPES,
    GEOGRAPHY_GROUPS,
    geography_results,
    per_type_results,
)
from .harness import (
    BASELINE_ORDER,
    BEST_BASELINE,
    ComparisonTable,
    HarnessConfig,
    build_dataset,
    compare_models,
    quick_harness,
    train_baseline,
    train_o2siterec,
)
from .motivation import (
    courier_utilisation_by_period,
    delivery_scope_by_period,
    delivery_time_distribution,
    delivery_time_vs_ratio,
    order_distance_distribution,
    preference_order_correlation,
    supply_demand_by_bin,
    top_store_types_by_period,
)
from .report import build_report, report_status, write_report
from .registry import EXPERIMENTS, Experiment
from .sensitivity import beta_sweep, embedding_size_sweep
from .temporal import (
    TemporalConfig,
    TemporalDatasets,
    build_temporal_datasets,
    run_temporal_evaluation,
)
from .tuning import TrialResult, grid_search
from .tables import format_bar_groups, format_comparison_table, format_series

__all__ = [
    "evaluate_model",
    "HarnessConfig",
    "quick_harness",
    "build_dataset",
    "train_o2siterec",
    "train_baseline",
    "compare_models",
    "ComparisonTable",
    "BASELINE_ORDER",
    "BEST_BASELINE",
    "run_ablation",
    "variant_config",
    "VARIANTS",
    "per_type_results",
    "geography_results",
    "FOCUS_TYPES",
    "COMPARED_BASELINES",
    "GEOGRAPHY_GROUPS",
    "embedding_size_sweep",
    "beta_sweep",
    "grid_search",
    "TrialResult",
    "TemporalConfig",
    "TemporalDatasets",
    "build_temporal_datasets",
    "run_temporal_evaluation",
    "supply_demand_by_bin",
    "delivery_time_vs_ratio",
    "order_distance_distribution",
    "courier_utilisation_by_period",
    "build_report",
    "report_status",
    "write_report",
    "delivery_scope_by_period",
    "delivery_time_distribution",
    "top_store_types_by_period",
    "preference_order_correlation",
    "format_comparison_table",
    "format_series",
    "format_bar_groups",
    "EXPERIMENTS",
    "Experiment",
]
