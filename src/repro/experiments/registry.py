"""Index of every table and figure reproduced from the paper.

Maps each experiment id to a short description and the bench target that
regenerates it -- the machine-readable companion of DESIGN.md's
per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Experiment:
    """One paper table/figure and where its reproduction lives."""

    experiment_id: str
    description: str
    bench: str
    modules: Tuple[str, ...]


EXPERIMENTS: Dict[str, Experiment] = {
    e.experiment_id: e
    for e in (
        Experiment(
            "fig1",
            "Orders, couriers and supply-demand ratio per 2h bin",
            "benchmarks/bench_fig01_supply_demand.py",
            ("repro.experiments.motivation", "repro.city"),
        ),
        Experiment(
            "fig2",
            "Delivery time vs supply-demand ratio",
            "benchmarks/bench_fig02_delivery_time.py",
            ("repro.experiments.motivation",),
        ),
        Experiment(
            "fig3",
            "Average delivery scope per period",
            "benchmarks/bench_fig03_delivery_scope.py",
            ("repro.experiments.motivation", "repro.city.couriers"),
        ),
        Experiment(
            "fig4",
            "Delivery-time distribution at 2.5-3 km per period",
            "benchmarks/bench_fig04_time_distribution.py",
            ("repro.experiments.motivation",),
        ),
        Experiment(
            "fig5",
            "Top-3 popular store types per period",
            "benchmarks/bench_fig05_top_types.py",
            ("repro.experiments.motivation",),
        ),
        Experiment(
            "table2",
            "Preference-order correlation at radius 1-5 km",
            "benchmarks/bench_table02_preference_correlation.py",
            ("repro.experiments.motivation",),
        ),
        Experiment(
            "table3",
            "Main comparison on real-world data",
            "benchmarks/bench_table03_main_real.py",
            ("repro.experiments.harness", "repro.core", "repro.baselines"),
        ),
        Experiment(
            "table4",
            "Main comparison on simulation data",
            "benchmarks/bench_table04_main_sim.py",
            ("repro.experiments.harness",),
        ),
        Experiment(
            "fig10",
            "Ablation: courier capacity and customer preferences",
            "benchmarks/bench_fig10_ablation_capacity.py",
            ("repro.experiments.ablation",),
        ),
        Experiment(
            "fig11",
            "Ablation: node-level and time semantics-level attention",
            "benchmarks/bench_fig11_ablation_attention.py",
            ("repro.experiments.ablation",),
        ),
        Experiment(
            "fig12_13",
            "Per-store-type results (six highlighted types)",
            "benchmarks/bench_fig12_13_store_types.py",
            ("repro.experiments.factors",),
        ),
        Experiment(
            "fig14",
            "Geographic distribution: downtown / suburb / average",
            "benchmarks/bench_fig14_geography.py",
            ("repro.experiments.factors",),
        ),
        Experiment(
            "fig15",
            "Embedding-size sensitivity",
            "benchmarks/bench_fig15_embedding_size.py",
            ("repro.experiments.sensitivity",),
        ),
        Experiment(
            "fig16",
            "Beta sensitivity",
            "benchmarks/bench_fig16_beta.py",
            ("repro.experiments.sensitivity",),
        ),
    )
}
