"""Hyper-parameter sensitivity (RQ5): Figs. 15 and 16.

* Fig. 15: NDCG@3 as a function of the hetero-graph embedding size d2.
* Fig. 16: NDCG@3 as a function of the loss trade-off beta.

The paper sweeps d2 in {30..150} (best 90) and beta in {0..1} (best 0.2);
the scaled-down city uses proportionally smaller embedding sizes by
default.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

import numpy as np

from ..metrics import evaluate_model
from .harness import HarnessConfig, build_dataset, train_o2siterec

DEFAULT_EMBEDDING_SIZES = (10, 20, 40, 60, 80)
DEFAULT_BETAS = (0.0, 0.1, 0.2, 0.5, 1.0)


def embedding_size_sweep(
    sizes: Sequence[int] = DEFAULT_EMBEDDING_SIZES,
    config: Optional[HarnessConfig] = None,
    kind: str = "real",
    metric: str = "NDCG@3",
) -> Dict[int, float]:
    """Fig. 15: ``{d2: mean metric}`` over rounds."""
    config = config or HarnessConfig()
    results = {d2: [] for d2 in sizes}
    for r in range(config.rounds):
        seed = config.base_seed + r
        dataset, split = build_dataset(kind, seed, config.scale)
        for d2 in sizes:
            model_config = replace(config.model_config, embedding_dim=d2)
            model = train_o2siterec(
                dataset, split, config, model_config=model_config, seed=seed
            )
            result = evaluate_model(model, dataset, split, top_n=config.top_n, top_n_frac=config.top_n_frac)
            results[d2].append(result[metric])
    return {d2: float(np.mean(v)) for d2, v in results.items()}


def beta_sweep(
    betas: Sequence[float] = DEFAULT_BETAS,
    config: Optional[HarnessConfig] = None,
    kind: str = "real",
    metric: str = "NDCG@3",
) -> Dict[float, float]:
    """Fig. 16: ``{beta: mean metric}`` over rounds."""
    config = config or HarnessConfig()
    results = {beta: [] for beta in betas}
    for r in range(config.rounds):
        seed = config.base_seed + r
        dataset, split = build_dataset(kind, seed, config.scale)
        for beta in betas:
            model_config = replace(config.model_config, beta=beta)
            model = train_o2siterec(
                dataset, split, config, model_config=model_config, seed=seed
            )
            result = evaluate_model(model, dataset, split, top_n=config.top_n, top_n_frac=config.top_n_frac)
            results[beta].append(result[metric])
    return {beta: float(np.mean(v)) for beta, v in results.items()}
