"""Command-line experiment runner.

Regenerate any paper table/figure without touching pytest:

    python -m repro.experiments --list
    python -m repro.experiments fig1 fig5 table2
    python -m repro.experiments table3 --scale 0.55 --rounds 2 --epochs 45

Each experiment prints the paper-shaped rows/series to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from ..city import real_world_dataset
from ..data import TimePeriod
from . import (
    HarnessConfig,
    beta_sweep,
    compare_models,
    delivery_scope_by_period,
    delivery_time_distribution,
    delivery_time_vs_ratio,
    embedding_size_sweep,
    format_bar_groups,
    format_comparison_table,
    format_series,
    geography_results,
    per_type_results,
    preference_order_correlation,
    run_ablation,
    supply_demand_by_bin,
    top_store_types_by_period,
)
from .registry import EXPERIMENTS


def _motivation_city(args):
    return real_world_dataset(seed=7, scale=max(args.scale, 0.7))


def _harness(args) -> HarnessConfig:
    return HarnessConfig(
        rounds=args.rounds,
        scale=args.scale,
        epochs=args.epochs,
        patience=max(args.epochs // 4, 5),
    )


def _run_fig1(args) -> str:
    data = supply_demand_by_bin(_motivation_city(args))
    return format_series(
        "Fig. 1 -- Orders, couriers and supply-demand ratio",
        "hour",
        data["hours"].tolist(),
        {k: data[k] for k in ("orders", "couriers", "ratio")},
    )


def _run_fig2(args) -> str:
    data = delivery_time_vs_ratio(_motivation_city(args))
    return format_series(
        f"Fig. 2 -- Delivery time vs ratio (corr {float(data['correlation']):.3f})",
        "hour",
        data["hours"].tolist(),
        {"ratio": data["ratio"], "delivery_min": data["delivery_minutes"]},
    )


def _run_fig3(args) -> str:
    data = delivery_scope_by_period(_motivation_city(args))
    return format_series(
        "Fig. 3 -- Average delivery scope per period (m)",
        "period",
        data["periods"].tolist(),
        {"scope_m": data["scope_m"]},
        fmt="{:.0f}",
    )


def _run_fig4(args) -> str:
    data = delivery_time_distribution(_motivation_city(args))
    rows = {
        str(p): data["histogram"][i] for i, p in enumerate(data["periods"])
    }
    labels = [f"bin{i}" for i in range(data["histogram"].shape[1])]
    return format_series(
        "Fig. 4 -- Delivery-time histogram at 2.5-3 km", "bin", labels, rows,
        fmt="{:.0f}",
    )


def _run_fig5(args) -> str:
    top = top_store_types_by_period(_motivation_city(args), k=3)
    lines = ["Fig. 5 -- Top store types per period"]
    for period in TimePeriod:
        entries = ", ".join(f"{n} ({c})" for n, c in top[period])
        lines.append(f"  {period.label:13s} {entries}")
    return "\n".join(lines)


def _run_table2(args) -> str:
    table = preference_order_correlation(_motivation_city(args))
    radii = sorted(table)
    return format_series(
        "Table II -- Preference-order correlation",
        "radius_km",
        [int(r) for r in radii],
        {"correlation": [table[r] for r in radii]},
    )


def _run_table3(args) -> str:
    table = compare_models("real", config=_harness(args))
    return format_comparison_table(table, title="Table III (real-world stand-in)")


def _run_table4(args) -> str:
    table = compare_models(
        "sim",
        config=_harness(args),
        settings=("adaption",),
        metrics=("NDCG@3", "NDCG@5", "Precision@3", "Precision@5"),
    )
    return format_comparison_table(
        table,
        title="Table IV (simulation stand-in)",
        metrics=("NDCG@3", "NDCG@5", "Precision@3", "Precision@5"),
    )


def _run_fig10(args) -> str:
    variants = ("O2-SiteRec", "w/o Co", "w/o CoCu")
    results = run_ablation(variants, config=_harness(args))
    metrics = ("NDCG@3", "Precision@3")
    return format_bar_groups(
        "Fig. 10 -- Capacity/preference ablation",
        metrics,
        {v: [results[v].mean(m) for m in metrics] for v in variants},
    )


def _run_fig11(args) -> str:
    variants = ("O2-SiteRec", "w/o NA", "w/o SA")
    results = run_ablation(variants, config=_harness(args))
    metrics = ("NDCG@3", "Precision@3")
    return format_bar_groups(
        "Fig. 11 -- Attention ablation",
        metrics,
        {v: [results[v].mean(m) for m in metrics] for v in variants},
    )


def _run_fig12_13(args) -> str:
    results = per_type_results(config=_harness(args))
    types = sorted(next(iter(results.values())))
    return format_bar_groups(
        "Figs. 12/13 -- NDCG@3 by store type",
        types,
        {m: [v.get(t, float("nan")) for t in types] for m, v in results.items()},
    )


def _run_fig14(args) -> str:
    results = geography_results(config=_harness(args))
    groups = list(results)
    return format_bar_groups(
        "Fig. 14 -- NDCG@3 by geography",
        groups,
        {"O2-SiteRec": [results[g] for g in groups]},
    )


def _run_fig15(args) -> str:
    results = embedding_size_sweep(config=_harness(args))
    sizes = sorted(results)
    return format_series(
        "Fig. 15 -- NDCG@3 vs embedding size",
        "d2",
        sizes,
        {"NDCG@3": [results[s] for s in sizes]},
    )


def _run_fig16(args) -> str:
    results = beta_sweep(config=_harness(args))
    betas = sorted(results)
    return format_series(
        "Fig. 16 -- NDCG@3 vs beta",
        "beta",
        betas,
        {"NDCG@3": [results[b] for b in betas]},
    )


RUNNERS: Dict[str, Callable] = {
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12_13": _run_fig12_13,
    "fig14": _run_fig14,
    "fig15": _run_fig15,
    "fig16": _run_fig16,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--scale", type=float, default=0.55, help="city scale")
    parser.add_argument("--rounds", type=int, default=1, help="experiment rounds")
    parser.add_argument("--epochs", type=int, default=45, help="training epochs")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        for exp_id, exp in EXPERIMENTS.items():
            print(f"{exp_id:10s} {exp.description}")
        return 0
    unknown = [e for e in args.experiments if e not in RUNNERS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    for exp_id in args.experiments:
        print(RUNNERS[exp_id](args))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
