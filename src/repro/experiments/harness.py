"""Experiment harness: datasets, model zoo and multi-round comparisons.

Drives the paper's evaluation section: Table III (real-world data, six
baselines x {Original, Adaption} vs O2-SiteRec with t-tests) and Table IV
(simulation data, Adaption only).  Scaled-down defaults keep a full table
under a few CPU-minutes; ``scale``/``epochs``/``rounds`` knobs trade time
for fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BASELINE_REGISTRY
from ..core import O2SiteRec, O2SiteRecConfig, TrainConfig, Trainer
from ..data import SiteRecDataset
from ..data.split import InteractionSplit
from ..metrics import (
    EvaluationResult,
    MultiRoundResult,
    evaluate_model,
    paired_t_test,
    significance_marker,
)

BASELINE_ORDER = tuple(BASELINE_REGISTRY)  # the paper's Table III row order
BEST_BASELINE = "HGT"  # significance reference, as in the paper


@dataclass(frozen=True)
class HarnessConfig:
    """Scope of a comparison run."""

    rounds: int = 3
    scale: float = 0.75
    epochs: int = 90
    core_lr: float = 1e-2
    baseline_lr: float = 5e-3
    patience: int = 20
    # Paper uses N=30 on a city with ~40k stores; on scaled-down pools a
    # fixed N saturates precision, so the harness sizes N per type as a
    # fraction of the candidate pool (see evaluate_model).
    top_n: int = 10
    top_n_frac: float = 0.35
    base_seed: int = 0
    model_config: O2SiteRecConfig = field(default_factory=O2SiteRecConfig)


def quick_harness() -> HarnessConfig:
    """A minutes-scale configuration for benches and CI."""
    return HarnessConfig(rounds=2, scale=0.55, epochs=45, patience=12)


def build_dataset(
    kind: str, seed: int, scale: float
) -> Tuple[SiteRecDataset, InteractionSplit]:
    """One experiment round's dataset + 80/20 split.

    ``kind`` is ``"real"`` (the Eleme-month stand-in) or ``"sim"`` (the
    sparser open-dataset stand-in).  Served through the pipeline artifact
    cache when ``O2_PIPELINE_CACHE`` is enabled (see
    :mod:`repro.data.cache`): a table run then simulates each
    (kind, seed, scale) once ever, across rounds, worker processes,
    benchmark scripts and repeat invocations.
    """
    from ..data.cache import cached_dataset

    return cached_dataset(kind, seed, scale)


def _seed_init(seed: int, key: str) -> None:
    """Deterministic weight init per (round, model): results must not depend
    on the order models are trained in."""
    import zlib

    from ..nn import init

    init.seed((seed * 7919 + zlib.crc32(key.encode())) % 2**31)


def train_o2siterec(
    dataset: SiteRecDataset,
    split: InteractionSplit,
    config: HarnessConfig,
    model_config: Optional[O2SiteRecConfig] = None,
    seed: int = 0,
    init_tag: str = "o2siterec",
) -> O2SiteRec:
    """Fit O2-SiteRec (or a configured variant) on the train fold.

    ``init_tag`` keys the weight initialisation.  Ablation studies pass the
    SAME tag for every variant so their inits are paired -- variant
    comparisons then measure the architecture, not the init lottery.
    """
    effective = model_config or config.model_config
    _seed_init(seed, init_tag)
    model = O2SiteRec(dataset, split, effective)
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=config.epochs,
            lr=config.core_lr,
            patience=config.patience,
            seed=seed,
        ),
    )
    trainer.fit(split.train_pairs, dataset.pair_targets(split.train_pairs))
    return model


def train_baseline(
    name: str,
    setting: str,
    dataset: SiteRecDataset,
    split: InteractionSplit,
    config: HarnessConfig,
    seed: int = 0,
):
    """Fit one named baseline in one setting on the train fold."""
    _seed_init(seed, f"{name}/{setting}")
    model = BASELINE_REGISTRY[name](dataset, split, setting=setting)
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=config.epochs,
            lr=config.baseline_lr,
            patience=config.patience,
            seed=seed,
        ),
    )
    trainer.fit(split.train_pairs, dataset.pair_targets(split.train_pairs))
    return model


@dataclass
class ComparisonTable:
    """Multi-round results for every row of Table III / IV."""

    rows: Dict[str, MultiRoundResult]  # e.g. "HGT/adaption", "O2-SiteRec"
    metrics: Sequence[str]
    reference_row: str  # the significance baseline

    def p_value(self, metric: str) -> float:
        return paired_t_test(
            self.rows["O2-SiteRec"], self.rows[self.reference_row], metric
        )

    def improvement_over(self, row: str, metric: str) -> float:
        """Relative improvement of O2-SiteRec over ``row`` on ``metric``."""
        ours = self.rows["O2-SiteRec"].mean(metric)
        theirs = self.rows[row].mean(metric)
        if theirs == 0:
            return float("nan")
        return (ours - theirs) / theirs


def _run_cell(cell: Tuple) -> Tuple[str, int, EvaluationResult]:
    """Train and evaluate one (round, model) cell of a comparison table.

    Top-level (picklable) so :func:`repro.parallel.process_map` can fan
    cells out across worker processes.  Results are identical to the serial
    loop: weight init is keyed by (seed, model) via ``_seed_init`` and the
    round's dataset is a pure function of (kind, seed, scale) -- with the
    artifact cache enabled, workers share one simulation per round instead
    of each re-running it.
    """
    kind, config, r, name, setting = cell
    seed = config.base_seed + r
    dataset, split = build_dataset(kind, seed, config.scale)
    if name is None:
        key = "O2-SiteRec"
        model = train_o2siterec(dataset, split, config, seed=seed)
    else:
        key = f"{name}/{setting}"
        model = train_baseline(name, setting, dataset, split, config, seed)
    result = evaluate_model(
        model, dataset, split, top_n=config.top_n, top_n_frac=config.top_n_frac
    )
    return key, r, result


def compare_models(
    kind: str = "real",
    config: Optional[HarnessConfig] = None,
    baselines: Sequence[str] = BASELINE_ORDER,
    settings: Sequence[str] = ("original", "adaption"),
    metrics: Sequence[str] = (
        "NDCG@3",
        "NDCG@5",
        "NDCG@10",
        "Precision@3",
        "Precision@5",
        "Precision@10",
        "RMSE",
    ),
    verbose: bool = False,
) -> ComparisonTable:
    """Run the full multi-round model comparison (Tables III and IV).

    With ``O2_NUM_PROCS`` > 1 (or :func:`repro.parallel.set_num_procs`),
    the independent (round, model) cells fan out across worker processes;
    the assembled table is identical to a serial run.
    """
    from .. import parallel

    config = config or HarnessConfig()
    rows: Dict[str, List[EvaluationResult]] = {}

    procs = parallel.num_procs()
    if procs > 1:
        cells = []
        for r in range(config.rounds):
            for name in baselines:
                for setting in settings:
                    cells.append((kind, config, r, name, setting))
            cells.append((kind, config, r, None, None))
        for key, r, result in parallel.process_map(_run_cell, cells, procs):
            rows.setdefault(key, []).append(result)
            if verbose:
                print(
                    f"round {r} {key}: "
                    + " ".join(f"{m}={result[m]:.4f}" for m in metrics)
                )
    else:
        for r in range(config.rounds):
            seed = config.base_seed + r
            dataset, split = build_dataset(kind, seed, config.scale)

            def record(key: str, model) -> None:
                result = evaluate_model(model, dataset, split, top_n=config.top_n, top_n_frac=config.top_n_frac)
                rows.setdefault(key, []).append(result)
                if verbose:
                    print(
                        f"round {r} {key}: "
                        + " ".join(f"{m}={result[m]:.4f}" for m in metrics)
                    )

            for name in baselines:
                for setting in settings:
                    record(
                        f"{name}/{setting}",
                        train_baseline(name, setting, dataset, split, config, seed),
                    )
            record("O2-SiteRec", train_o2siterec(dataset, split, config, seed=seed))

    return ComparisonTable(
        rows={k: MultiRoundResult(v) for k, v in rows.items()},
        metrics=metrics,
        reference_row=f"{BEST_BASELINE}/adaption"
        if f"{BEST_BASELINE}/adaption" in rows
        else f"{BEST_BASELINE}/{settings[0]}",
    )
