"""Classic-ML substrate: decision trees and gradient boosting."""

from .gbdt import GradientBoostedTrees
from .tree import DecisionTreeRegressor

__all__ = ["DecisionTreeRegressor", "GradientBoostedTrees"]
