"""Decision-tree regression (exact variance-reduction splits).

A classic-ML substrate for the feature-based site-recommendation lineage
the paper cites (Geo-spotting [12], BoardWatch [35] use feature rankers and
tree-enhanced regressors).  No external ML libraries exist in this
environment, so the trees are built from scratch: exact split search over
sorted feature columns, squared-error criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A tree node; leaves carry a prediction, splits carry children."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    x: np.ndarray, y: np.ndarray, min_samples_leaf: int
) -> Optional[tuple]:
    """Exact best (feature, threshold) by squared-error reduction.

    Returns ``(feature, threshold, gain)`` or ``None`` when no split
    satisfies the leaf-size constraint or improves the error.
    """
    n, num_features = x.shape
    if n < 2 * min_samples_leaf:
        return None
    total_sum = y.sum()
    total_sq = (y**2).sum()
    base_error = total_sq - total_sum**2 / n

    best = None
    best_gain = 1e-12
    for feature in range(num_features):
        order = np.argsort(x[:, feature], kind="stable")
        xs = x[order, feature]
        ys = y[order]
        left_sum = np.cumsum(ys)[:-1]
        left_sq = np.cumsum(ys**2)[:-1]
        counts = np.arange(1, n)

        valid = (
            (counts >= min_samples_leaf)
            & (counts <= n - min_samples_leaf)
            & (xs[1:] > xs[:-1])  # cannot split between equal values
        )
        if not valid.any():
            continue

        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        left_err = left_sq - left_sum**2 / counts
        right_err = right_sq - right_sum**2 / (n - counts)
        gain = base_error - (left_err + right_err)
        gain[~valid] = -np.inf

        idx = int(np.argmax(gain))
        if gain[idx] > best_gain:
            best_gain = float(gain[idx])
            threshold = 0.5 * (xs[idx] + xs[idx + 1])
            best = (feature, threshold, best_gain)
    return best


class DecisionTreeRegressor:
    """CART-style regression tree with exact splits."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 5) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, f) with matching y")
        if len(x) == 0:
            raise ValueError("empty training set")
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        split = _best_split(x, y, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit the tree before predicting")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    @property
    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
