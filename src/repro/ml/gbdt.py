"""Gradient-boosted regression trees (squared loss).

Standard Friedman-style boosting on top of
:class:`~repro.ml.tree.DecisionTreeRegressor`: each stage fits the
residuals of the running prediction, optionally on a subsample of rows.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeRegressor


class GradientBoostedTrees:
    """Boosted regression trees for squared error."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []
        self._base: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y) or x.ndim != 2:
            raise ValueError("x must be (n, f) with matching y")
        rng = np.random.default_rng(self.seed)
        self._trees = []
        self._base = float(y.mean())
        current = np.full(len(y), self._base)

        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                take = max(int(round(self.subsample * len(y))), 2 * self.min_samples_leaf)
                take = min(take, len(y))
                idx = rng.choice(len(y), size=take, replace=False)
            else:
                idx = np.arange(len(y))
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(x[idx], residual[idx])
            self._trees.append(tree)
            current = current + self.learning_rate * tree.predict(x)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit the model before predicting")
        x = np.asarray(x, dtype=np.float64)
        out = np.full(len(x), self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out

    def staged_mse(self, x: np.ndarray, y: np.ndarray) -> List[float]:
        """Training-curve diagnostic: MSE after each boosting stage."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        out = np.full(len(x), self._base)
        curve = []
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(x)
            curve.append(float(np.mean((out - y) ** 2)))
        return curve
