"""Per-type evaluation and multi-round aggregation.

The paper reports the average over all store types in the test data of
NDCG@{3,5,10}, Precision@{3,5,10} and RMSE, over multiple experiment
rounds, with a paired t-test against the best baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy import stats

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from .ranking import ranking_metrics_bulk, rmse

METRIC_NAMES = (
    "NDCG@3",
    "NDCG@5",
    "NDCG@10",
    "Precision@3",
    "Precision@5",
    "Precision@10",
    "RMSE",
)


@dataclass
class EvaluationResult:
    """Metric values (averaged over types) for one model on one split."""

    values: Dict[str, float]
    per_type: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def as_row(self, metrics: Sequence[str] = METRIC_NAMES) -> List[float]:
        return [self.values[m] for m in metrics]


def evaluate_model(
    model,
    dataset: SiteRecDataset,
    split: InteractionSplit,
    top_n: int = 30,
    ks: Sequence[int] = (3, 5, 10),
    types: Optional[Iterable[int]] = None,
    regions_filter: Optional[np.ndarray] = None,
    top_n_frac: Optional[float] = None,
    min_candidates: int = 2,
    skip_zero_relevance: bool = True,
    min_positive: int = 1,
) -> EvaluationResult:
    """Evaluate ``model`` on the test fold, averaged over store types.

    ``model`` needs ``predict(pairs) -> np.ndarray``.  ``types`` restricts
    the evaluation to specific store types (Fig. 12/13);
    ``regions_filter`` restricts candidates to a region subset (Fig. 14).

    ``top_n`` is the paper's N=30 (sized for a 40k-store city).  On small
    candidate pools a fixed N saturates Precision@K at 1; ``top_n_frac``
    replaces it with ``max(3, frac * pool size)`` per type, keeping the
    metric selective at any scale.

    ``skip_zero_relevance`` drops store types whose candidates all have
    zero ground truth: such pools carry no ranking information and would
    score a free 1.0 (this matters for sparse region subsets like the
    suburbs of Fig. 14).
    """
    type_ids = list(types) if types is not None else list(range(dataset.num_types))
    region_set = set(regions_filter.tolist()) if regions_filter is not None else None

    # Collect every type's candidate pairs, then predict in ONE forward pass
    # (full-graph models pay per call, not per pair).
    per_type_pairs: Dict[int, np.ndarray] = {}
    for a in type_ids:
        candidates = split.test_regions_for_type(a)
        if region_set is not None:
            candidates = np.array(
                [r for r in candidates if int(r) in region_set], dtype=np.int64
            )
        if len(candidates) < max(min_candidates, 2):
            continue
        pairs = np.stack(
            [candidates, np.full(len(candidates), a, dtype=np.int64)], axis=1
        )
        positives = int((dataset.pair_targets(pairs) > 0).sum())
        if skip_zero_relevance and positives == 0:
            continue
        if positives < min_positive:
            continue
        per_type_pairs[a] = pairs
    if not per_type_pairs:
        raise ValueError("no store type had enough test candidates to evaluate")

    all_pairs = np.concatenate(list(per_type_pairs.values()), axis=0)
    all_scores = np.asarray(model.predict(all_pairs), dtype=np.float64)

    per_type: Dict[int, Dict[str, float]] = {}
    offset = 0
    for a, pairs in per_type_pairs.items():
        scores = all_scores[offset : offset + len(pairs)]
        offset += len(pairs)
        relevance = dataset.pair_targets(pairs)

        effective_top_n = top_n
        if top_n_frac is not None:
            effective_top_n = max(3, int(round(top_n_frac * len(pairs))))

        # One partial sort per side covers every @k metric for this type
        # (numerically identical to per-k ndcg_at_k/precision_at_k calls).
        row = ranking_metrics_bulk(scores, relevance, ks, top_n=effective_top_n)
        row["RMSE"] = rmse(scores, relevance)
        per_type[a] = row

    averaged = {
        name: float(np.mean([row[name] for row in per_type.values()]))
        for name in next(iter(per_type.values()))
    }
    return EvaluationResult(values=averaged, per_type=per_type)


@dataclass
class MultiRoundResult:
    """Metric values across experiment rounds for one model."""

    rounds: List[EvaluationResult]

    def mean(self, metric: str) -> float:
        return float(np.mean([r[metric] for r in self.rounds]))

    def std(self, metric: str) -> float:
        return float(np.std([r[metric] for r in self.rounds]))

    def series(self, metric: str) -> np.ndarray:
        return np.array([r[metric] for r in self.rounds])


def paired_t_test(
    ours: MultiRoundResult, baseline: MultiRoundResult, metric: str
) -> float:
    """p-value of a paired t-test on a metric across rounds.

    The paper reports significance of O2-SiteRec against the best baseline
    (HGT) at levels 0.05 / 0.01.
    """
    a = ours.series(metric)
    b = baseline.series(metric)
    if len(a) != len(b):
        raise ValueError("both models must be evaluated on the same rounds")
    if len(a) < 2:
        return float("nan")
    if np.allclose(a, b):
        return 1.0
    return float(stats.ttest_rel(a, b).pvalue)


def significance_marker(p_value: float) -> str:
    """The paper's table annotation: ** for p<0.01, * for p<0.05."""
    if np.isnan(p_value):
        return ""
    if p_value < 0.01:
        return "**"
    if p_value < 0.05:
        return "*"
    return ""
