"""Ranking metrics (Section IV-A4).

* **NDCG@K** follows the graded hit-position definition of Geo-spotting
  [12]: candidates are ranked by the model; the DCG discounts each
  candidate's true relevance (its ground-truth order count) by its rank,
  and normalises by the ideal ordering.
* **Precision@K** (Eq. 18): overlap between the top-k predicted regions and
  the top-N ground-truth regions, divided by k (paper: N=30).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..topk import top_k_indices, top_k_mask

DEFAULT_TOP_N = 30


def _validate(scores: np.ndarray, relevance: np.ndarray) -> None:
    if scores.shape != relevance.shape:
        raise ValueError("scores and relevance must have the same shape")
    if scores.ndim != 1:
        raise ValueError("scores must be one-dimensional")
    if len(scores) == 0:
        raise ValueError("empty candidate list")


def dcg_at_k(relevance_in_rank_order: np.ndarray, k: int) -> float:
    """Discounted cumulative gain of the first ``k`` entries."""
    rel = np.asarray(relevance_in_rank_order, dtype=np.float64)[:k]
    if len(rel) == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, len(rel) + 2))
    return float((rel * discounts).sum())


def ndcg_at_k(scores: np.ndarray, relevance: np.ndarray, k: int) -> float:
    """NDCG@k of candidates scored by ``scores`` with true ``relevance``.

    Returns 1.0 when every candidate has zero relevance (nothing to rank).
    """
    scores = np.asarray(scores, dtype=np.float64)
    relevance = np.asarray(relevance, dtype=np.float64)
    _validate(scores, relevance)
    if k < 1:
        raise ValueError("k must be >= 1")
    # Only the first k ranks enter the DCG, so a partial top-k selection
    # (pinned identical to the stable full sort) is enough on both sides.
    predicted_top = top_k_indices(scores, k)
    ideal_top = top_k_indices(relevance, k)
    ideal = dcg_at_k(relevance[ideal_top], k)
    if ideal == 0.0:
        return 1.0
    return dcg_at_k(relevance[predicted_top], k) / ideal


def precision_at_k(
    scores: np.ndarray,
    relevance: np.ndarray,
    k: int,
    top_n: int = DEFAULT_TOP_N,
) -> float:
    """Precision@k against the top-N ground-truth candidates (Eq. 18)."""
    scores = np.asarray(scores, dtype=np.float64)
    relevance = np.asarray(relevance, dtype=np.float64)
    _validate(scores, relevance)
    if k < 1 or top_n < 1:
        raise ValueError("k and top_n must be >= 1")
    k = min(k, len(scores))
    top_n = min(top_n, len(scores))
    hits = np.count_nonzero(top_k_mask(scores, k) & top_k_mask(relevance, top_n))
    return hits / k


def recall_at_k(
    scores: np.ndarray,
    relevance: np.ndarray,
    k: int,
    top_n: int = DEFAULT_TOP_N,
) -> float:
    """Recall@k: fraction of the top-N true candidates captured in the
    predicted top-k (complement of Eq. 18's precision)."""
    scores = np.asarray(scores, dtype=np.float64)
    relevance = np.asarray(relevance, dtype=np.float64)
    _validate(scores, relevance)
    if k < 1 or top_n < 1:
        raise ValueError("k and top_n must be >= 1")
    k = min(k, len(scores))
    top_n = min(top_n, len(scores))
    hits = np.count_nonzero(top_k_mask(scores, k) & top_k_mask(relevance, top_n))
    return hits / top_n


def average_precision(
    scores: np.ndarray, relevance: np.ndarray, top_n: int = DEFAULT_TOP_N
) -> float:
    """Average precision with the top-N true candidates as the relevant set.

    Summarises the whole ranking (not just a cutoff); used by the extended
    evaluation, not by the paper's tables.
    """
    scores = np.asarray(scores, dtype=np.float64)
    relevance = np.asarray(relevance, dtype=np.float64)
    _validate(scores, relevance)
    top_n = min(max(top_n, 1), len(scores))
    true_top = set(np.argsort(-relevance, kind="stable")[:top_n].tolist())
    order = np.argsort(-scores, kind="stable")
    hits = 0
    precision_sum = 0.0
    for rank, idx in enumerate(order, start=1):
        if int(idx) in true_top:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(true_top) if true_top else 0.0


def hit_rate_at_k(scores: np.ndarray, relevance: np.ndarray, k: int) -> float:
    """1.0 if the single best true candidate appears in the predicted top-k."""
    scores = np.asarray(scores, dtype=np.float64)
    relevance = np.asarray(relevance, dtype=np.float64)
    _validate(scores, relevance)
    if k < 1:
        raise ValueError("k must be >= 1")
    best = int(np.argmax(relevance))
    return 1.0 if top_k_mask(scores, min(k, len(scores)))[best] else 0.0


def ranking_metrics_bulk(
    scores: np.ndarray,
    relevance: np.ndarray,
    ks: Sequence[int],
    top_n: int = DEFAULT_TOP_N,
) -> Dict[str, float]:
    """All ``NDCG@k`` / ``Precision@k`` values for one candidate set.

    Numerically identical to calling :func:`ndcg_at_k` and
    :func:`precision_at_k` once per ``k`` (the per-``k`` DCG sums reuse
    the exact reference expressions), but the candidate pool is ranked
    once -- a single partial top-``max(k)`` sort on each side -- instead
    of ``2 * len(ks) + 1`` full sorts.  ``evaluate_model`` calls this per
    store type; ``tests/test_serve_scale.py`` pins the equality.
    """
    scores = np.asarray(scores, dtype=np.float64)
    relevance = np.asarray(relevance, dtype=np.float64)
    _validate(scores, relevance)
    ks = list(ks)
    if not ks:
        return {}
    if min(ks) < 1 or top_n < 1:
        raise ValueError("k and top_n must be >= 1")
    n = len(scores)
    max_k = min(max(ks), n)
    top_n = min(top_n, n)

    predicted_top = top_k_indices(scores, max_k)
    ideal_top = top_k_indices(relevance, max_k)
    rel_predicted = relevance[predicted_top]
    rel_ideal = relevance[ideal_top]
    true_mask = top_k_mask(relevance, top_n)
    hits_by_rank = true_mask[predicted_top]

    out: Dict[str, float] = {}
    for k in ks:
        k_eff = min(k, n)
        ideal = dcg_at_k(rel_ideal, k_eff)
        out[f"NDCG@{k}"] = (
            1.0 if ideal == 0.0 else dcg_at_k(rel_predicted, k_eff) / ideal
        )
        out[f"Precision@{k}"] = (
            int(np.count_nonzero(hits_by_rank[:k_eff])) / k_eff
        )
    return out


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root mean squared error."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    if predictions.size == 0:
        raise ValueError("empty inputs")
    return float(np.sqrt(np.mean((predictions - targets) ** 2)))
