"""Evaluation metrics: prediction accuracy and ranking quality."""

from .evaluation import (
    METRIC_NAMES,
    EvaluationResult,
    MultiRoundResult,
    evaluate_model,
    paired_t_test,
    significance_marker,
)
from .ranking import (
    average_precision,
    dcg_at_k,
    hit_rate_at_k,
    ndcg_at_k,
    precision_at_k,
    ranking_metrics_bulk,
    recall_at_k,
    rmse,
)

__all__ = [
    "ndcg_at_k",
    "dcg_at_k",
    "precision_at_k",
    "ranking_metrics_bulk",
    "recall_at_k",
    "average_precision",
    "hit_rate_at_k",
    "rmse",
    "evaluate_model",
    "EvaluationResult",
    "MultiRoundResult",
    "paired_t_test",
    "significance_marker",
    "METRIC_NAMES",
]
