"""Candidate retrieval index: the coarse stage of retrieve-then-rank serving.

``service.query`` used to score *every* candidate region with the exact
(bit-pinned) scorer on every request -- the right answer for a few hundred
regions, the wrong shape for a metropolis.  :class:`VectorIndex` adds the
missing first stage: retrieve a small top-M candidate set in sub-millisecond
time, then let the existing exact scorer re-rank only the survivors.

The index is built once per snapshot, from two frozen surfaces:

* **Retrieval vectors** -- each region's *type-score row*: the exact scores
  of every store type for that region, computed by the bit-pinned scorer at
  build time and packed as one ``(T, N)`` float64 sheet.  A query for type
  ``a`` is the one-hot vector ``e_a``, so retrieval scoring is a contiguous
  row gather -- no model math on the hot path.
* **Partition geometry** -- k-means over the pooled per-period region
  embeddings (``concat_p h[p][s]``, the same arrays the exact scorer
  gathers from).  Regions with similar embeddings score similarly for every
  type, so embedding-space partitions are score-coherent and safe to prune.

Two modes share the machinery:

* ``flat`` -- exhaustive: scan the whole sheet row and return the true
  top-M under the exact scores.  Because the sheet *is* the exact scorer's
  output (same float64 bits), the retrieved set provably contains the true
  top-k whenever ``M >= k``, and the re-ranked result is float-for-float
  identical to the full scan (``tests/test_serve_index.py`` pins this).
* ``ivf`` -- partitioned brute force: probe the ``nprobe`` partitions whose
  best member scores highest for the queried type, scan only their members.
  Probing by per-partition max guarantees recall@k = 1.0 whenever
  ``nprobe >= k``; below that, recall is a knob (``nprobe``/``retrieve_m``),
  measured against the full scan by ``benchmarks/bench_retrieval.py``.

Everything is plain numpy and serialises as additional 64-byte-aligned
segments in the :mod:`repro.serve.arena` container (keys prefixed
``index__``), so an indexed arena still mmaps zero-copy, costs ~nothing
extra to open, and hot-swaps atomically with its snapshot.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

import numpy as np

from ..topk import top_k_indices

_INDEX_FORMAT_VERSION = 1
_ARRAY_PREFIX = "index__"

# Re-ranking batches below ~8 rows can hit different BLAS kernels than the
# full-scan batch and perturb low-order bits; clamping keeps the flat-mode
# float-for-float guarantee out of that regime.
MIN_RERANK = 8


# ----------------------------------------------------------------------
# Deterministic k-means (build time only)
# ----------------------------------------------------------------------
def _assign(x: np.ndarray, centroids: np.ndarray, chunk: int = 8192) -> np.ndarray:
    """Nearest-centroid assignment, chunked so N x K never materialises."""
    c2 = (centroids * centroids).sum(axis=1)
    out = np.empty(x.shape[0], dtype=np.int64)
    for start in range(0, x.shape[0], chunk):
        block = x[start:start + chunk]
        # ||x-c||^2 = ||x||^2 - 2 x.c + ||c||^2; drop the per-row constant.
        d = block @ centroids.T
        d *= -2.0
        d += c2
        out[start:start + chunk] = np.argmin(d, axis=1)
    return out


def _kmeans(
    x: np.ndarray, k: int, seed: int, iters: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Seeded Lloyd's with k-means++ init; returns (assignments, centroids)."""
    n = x.shape[0]
    rng = np.random.default_rng(seed)
    k = max(1, min(int(k), n))

    centroids = np.empty((k, x.shape[1]), dtype=np.float64)
    centroids[0] = x[int(rng.integers(n))]
    d2 = ((x - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = float(d2.sum())
        if total <= 0.0:  # all remaining points coincide with a centroid
            centroids[j:] = x[rng.integers(n, size=k - j)]
            break
        pick = int(rng.choice(n, p=d2 / total))
        centroids[j] = x[pick]
        np.minimum(d2, ((x - centroids[j]) ** 2).sum(axis=1), out=d2)

    assign = _assign(x, centroids)
    for _ in range(max(0, iters)):
        # Sort + reduceat segment means (the repo's segment-kernel idiom):
        # one O(n log n) sort replaces a slow element-wise scatter-add.
        order = np.argsort(assign, kind="stable")
        grouped = assign[order]
        counts = np.bincount(grouped, minlength=k)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        nonempty = counts > 0
        sums = np.zeros_like(centroids)
        if nonempty.any():
            sums[nonempty] = np.add.reduceat(x[order], starts[nonempty], axis=0)
            centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        if (~nonempty).any():
            # Reseed dead partitions onto the farthest points so no list
            # stays empty while others bloat.
            dist = ((x - centroids[assign]) ** 2).sum(axis=1)
            far = np.argsort(-dist, kind="stable")[: int((~nonempty).sum())]
            centroids[~nonempty] = x[far]
        new_assign = _assign(x, centroids)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
    return assign, centroids


# ----------------------------------------------------------------------
# The index
# ----------------------------------------------------------------------
class VectorIndex:
    """Top-M candidate retrieval over a frozen snapshot's regions.

    Immutable after construction (like the snapshot it belongs to), so it
    is freely shared across serving threads and, via the arena, across
    worker processes.  ``search`` returns candidate *positions* into the
    snapshot's ``candidate_regions()`` order, sorted ascending so the
    downstream re-rank keeps the full scan's duplicate-score tie-break.
    """

    def __init__(
        self,
        *,
        kind: str,
        sheet: np.ndarray,  # (T, N) exact scores, float64
        centroids: np.ndarray,  # (K, P*d2) embedding-space centroids
        probe_scores: np.ndarray,  # (K, T) per-partition max type scores
        list_offsets: np.ndarray,  # (K+1,) int64 into list_members
        list_members: np.ndarray,  # (N,) int64 positions, grouped by list
        retrieve_m: int,
        nprobe: int,
        meta: Optional[dict] = None,
    ) -> None:
        if kind not in ("flat", "ivf"):
            raise ValueError(f"unknown index kind {kind!r}")
        self.kind = kind
        self.sheet = np.asarray(sheet, dtype=np.float64)
        self.centroids = np.asarray(centroids, dtype=np.float64)
        self.probe_scores = np.asarray(probe_scores, dtype=np.float64)
        self.list_offsets = np.asarray(list_offsets, dtype=np.int64)
        self.list_members = np.asarray(list_members, dtype=np.int64)
        self.retrieve_m = int(retrieve_m)
        self.nprobe = int(nprobe)
        self.meta = dict(meta or {})
        if self.retrieve_m < 1:
            raise ValueError("retrieve_m must be >= 1")
        if self.kind == "ivf" and self.nprobe < 1:
            raise ValueError("nprobe must be >= 1")

    # -- introspection --------------------------------------------------
    @property
    def num_types(self) -> int:
        return self.sheet.shape[0]

    @property
    def num_candidates(self) -> int:
        return self.sheet.shape[1]

    @property
    def num_partitions(self) -> int:
        return max(self.list_offsets.shape[0] - 1, 0)

    def nbytes(self) -> int:
        return int(
            self.sheet.nbytes
            + self.centroids.nbytes
            + self.probe_scores.nbytes
            + self.list_offsets.nbytes
            + self.list_members.nbytes
        )

    def describe(self) -> Dict[str, object]:
        """Operational summary for ``service.stats()`` / the CLI."""
        return {
            "kind": self.kind,
            "candidates": self.num_candidates,
            "types": self.num_types,
            "partitions": self.num_partitions,
            "retrieve_m": self.retrieve_m,
            "nprobe": self.nprobe,
            "bytes": self.nbytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VectorIndex(kind={self.kind}, candidates={self.num_candidates}, "
            f"partitions={self.num_partitions}, retrieve_m={self.retrieve_m}, "
            f"nprobe={self.nprobe})"
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        snapshot,
        *,
        kind: str = "ivf",
        partitions: Optional[int] = None,
        retrieve_m: int = 64,
        nprobe: Optional[int] = None,
        seed: int = 0,
        iters: int = 15,
        chunk: int = 65536,
    ) -> "VectorIndex":
        """Train an index over ``snapshot``'s candidate regions.

        ``partitions`` defaults to ``round(sqrt(N))``; ``nprobe`` to a
        quarter of the partitions, floored at ``min(16, partitions)``
        (past the nprobe >= k exact-recall point for serving-sized k,
        see ``BENCH_retrieval.json``).  ``chunk`` bounds the
        score-sheet build batches; sheet rows are computed with the exact
        scorer so flat-mode retrieval is provably lossless.
        """
        if kind not in ("flat", "ivf"):
            raise ValueError(f"unknown index kind {kind!r}")
        started = time.perf_counter()
        n = snapshot.num_store_nodes
        types = snapshot.num_types
        if n < 1:
            raise ValueError("snapshot has no candidate regions to index")

        # The exact score sheet: one bit-pinned scoring pass per type (the
        # same _score_nodes batch shape service.query uses for a full
        # scan), chunked only past ``chunk`` rows to bound build memory.
        sheet = np.empty((types, n), dtype=np.float64)
        positions = np.arange(n, dtype=np.int64)
        for a in range(types):
            type_col = np.full(min(chunk, n), a, dtype=np.int64)
            for start in range(0, n, chunk):
                block = positions[start:start + chunk]
                sheet[a, start:start + chunk] = snapshot._score_nodes(
                    block, type_col[: block.shape[0]]
                )

        if kind == "flat":
            centroids = np.zeros((0, 0), dtype=np.float64)
            probe_scores = np.zeros((0, types), dtype=np.float64)
            list_offsets = np.zeros(1, dtype=np.int64)
            list_members = np.zeros(0, dtype=np.int64)
            k = 0
        else:
            # Pooled per-period embeddings: (N, P*d2), the same rows the
            # exact scorer gathers -- partition geometry lives here.
            pooled = np.ascontiguousarray(
                np.transpose(snapshot.h, (1, 0, 2)).reshape(n, -1)
            )
            k = partitions if partitions is not None else round(math.sqrt(n))
            k = max(1, min(int(k), n))
            assign, centroids = _kmeans(pooled, k, seed=seed, iters=iters)
            k = centroids.shape[0]
            # Inverted lists: grouped by partition, positions ascending
            # within each list (stable sort), so probed scans preserve the
            # full scan's tie-break order.
            order = np.argsort(assign, kind="stable")
            list_members = positions[order]
            counts = np.bincount(assign, minlength=k)
            list_offsets = np.zeros(k + 1, dtype=np.int64)
            np.cumsum(counts, out=list_offsets[1:])
            # Probe order statistic: each partition's best exact score per
            # type (empty partitions can never win a probe).  Max, not
            # mean: every partition holding a true top-k member has max
            # >= the k-th best score, so probing by max guarantees
            # recall@k = 1.0 whenever nprobe >= k -- below that, nprobe
            # trades recall for fewer lists scanned.
            probe_scores = np.full((k, types), -np.inf, dtype=np.float64)
            nonempty = counts > 0
            starts = list_offsets[:-1]
            for a in range(types):
                row = sheet[a][list_members]
                probe_scores[nonempty, a] = np.maximum.reduceat(
                    row, starts[nonempty]
                )

        if nprobe is None:
            # A quarter of the partitions, floored at min(16, k): probing
            # by per-partition max makes recall@k exact once nprobe >= k,
            # so the floor keeps the guarantee for serving-sized k even
            # on small snapshots where k//4 would be tiny.
            nprobe = max(k // 4, min(16, k)) if kind == "ivf" else 1
        index = cls(
            kind=kind,
            sheet=sheet,
            centroids=centroids,
            probe_scores=probe_scores,
            list_offsets=list_offsets,
            list_members=list_members,
            retrieve_m=retrieve_m,
            nprobe=nprobe,
            meta={
                "seed": int(seed),
                "iters": int(iters),
                "build_s": time.perf_counter() - started,
                "snapshot_id": snapshot.snapshot_id,
            },
        )
        return index

    # -- search ---------------------------------------------------------
    def _probe_members(self, store_type: int, nprobe: int) -> np.ndarray:
        """Positions in the ``nprobe`` best partitions, sorted ascending."""
        col = self.probe_scores[:, store_type]
        # K is ~sqrt(N): a full stable argsort is cheap and tolerates the
        # -inf sentinels of empty partitions.
        probed = np.argsort(-col, kind="stable")[: max(1, int(nprobe))]
        pieces = [
            self.list_members[self.list_offsets[p]:self.list_offsets[p + 1]]
            for p in probed
        ]
        members = np.concatenate(pieces) if pieces else self.list_members[:0]
        members.sort()
        return members

    def search(
        self,
        store_type: int,
        m: Optional[int] = None,
        *,
        nprobe: Optional[int] = None,
        keep: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Top-M candidate positions for ``store_type``, sorted ascending.

        ``keep`` (optional boolean mask over candidate positions) drops
        regions before selection -- the vectorised form of the service's
        ``exclude_regions`` filter.  Flat mode (or ``ivf`` with ``nprobe``
        >= partitions) returns the true top-M under the exact scores.
        """
        store_type = int(store_type)
        if not 0 <= store_type < self.num_types:
            raise KeyError(f"store type index {store_type} out of range")
        m = self.retrieve_m if m is None else int(m)
        if m < 1:
            raise ValueError("retrieve_m must be >= 1")
        row = self.sheet[store_type]
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        exhaustive = (
            self.kind == "flat"
            or self.num_partitions == 0
            or nprobe >= self.num_partitions
        )
        # Exhaustive scans skip the member gather entirely: the candidate
        # set is dense 0..N-1 and already in full-scan tie-break order.
        members = None if exhaustive else self._probe_members(store_type, nprobe)
        if members is None:
            if keep is not None:
                members = np.flatnonzero(keep)
            else:
                if m >= row.shape[0]:
                    return np.arange(row.shape[0], dtype=np.int64)
                chosen = top_k_indices(row, m)
                chosen.sort()
                return chosen
        elif keep is not None:
            members = members[keep[members]]
        if members.shape[0] == 0:
            return members
        if m >= members.shape[0]:
            return members
        chosen = members[top_k_indices(row[members], m)]
        chosen.sort()
        return chosen

    def recall_against_full_scan(
        self,
        store_type: int,
        k: int = 10,
        *,
        m: Optional[int] = None,
        nprobe: Optional[int] = None,
    ) -> float:
        """Fraction of the true top-k that survives retrieval.

        The sheet holds the exact scorer's outputs, so the reference top-k
        is the full scan's; with an exact re-rank stage, final recall@k
        equals this survival rate.
        """
        k = min(int(k), self.num_candidates)
        truth = top_k_indices(self.sheet[int(store_type)], k)
        survivors = self.search(store_type, m=m, nprobe=nprobe)
        return float(np.isin(truth, survivors).mean()) if k else 1.0

    # -- serialisation --------------------------------------------------
    def meta_payload(self) -> dict:
        return {
            "format_version": _INDEX_FORMAT_VERSION,
            "kind": self.kind,
            "retrieve_m": self.retrieve_m,
            "nprobe": self.nprobe,
            "extra": self.meta,
        }

    def array_payload(self) -> Dict[str, np.ndarray]:
        """Named arrays, ``index__``-prefixed so they ride along as extra
        64B-aligned arena segments / ``.npz`` entries."""
        return {
            _ARRAY_PREFIX + "sheet": self.sheet,
            _ARRAY_PREFIX + "centroids": self.centroids,
            _ARRAY_PREFIX + "probe_scores": self.probe_scores,
            _ARRAY_PREFIX + "list_offsets": self.list_offsets,
            _ARRAY_PREFIX + "list_members": self.list_members,
        }

    @classmethod
    def from_payload(cls, meta: dict, arrays) -> "VectorIndex":
        version = int(meta["format_version"])
        if version != _INDEX_FORMAT_VERSION:
            raise ValueError(
                f"index format {version} not supported "
                f"(expected {_INDEX_FORMAT_VERSION})"
            )
        return cls(
            kind=str(meta["kind"]),
            sheet=arrays[_ARRAY_PREFIX + "sheet"],
            centroids=arrays[_ARRAY_PREFIX + "centroids"],
            probe_scores=arrays[_ARRAY_PREFIX + "probe_scores"],
            list_offsets=arrays[_ARRAY_PREFIX + "list_offsets"],
            list_members=arrays[_ARRAY_PREFIX + "list_members"],
            retrieve_m=int(meta["retrieve_m"]),
            nprobe=int(meta["nprobe"]),
            meta=meta.get("extra"),
        )
