"""Wire protocols for the serving CLI: a line protocol and a small HTTP API.

Line protocol (stdin/stdout or any line transport), one request per line:

    PING                                     -> PONG
    TYPES                                    -> OK {"0": "bakery", ...}
    QUERY <type> [K=<n>] [CANDIDATES=1,2,3] [EXCLUDE=4,5]
                                             -> OK [{"region": .., "score": ..,
                                                     "orders": ..}, ...]
    STATS                                    -> OK {...service.stats()...}
    RELOAD <snapshot.npz>                    -> OK {"snapshot_id": "..."}
    QUIT                                     -> BYE (and the loop exits)

``<type>`` is a type index or a type name.  Errors come back as one line:
``ERR <message>``.  The HTTP API mirrors the same commands on
``GET /recommend``, ``GET /types``, ``GET /stats`` and ``GET /healthz``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from .service import RecommendationService


def _format_results(service: RecommendationService, results) -> str:
    return json.dumps(
        [
            {
                "region": rec.region,
                "store_type": rec.store_type,
                "type_name": service.snapshot.type_names[rec.store_type],
                "score": rec.score,
                "orders": rec.predicted_orders,
            }
            for rec in results
        ]
    )


def _parse_int_list(raw: str) -> List[int]:
    try:
        return [int(part) for part in raw.split(",") if part]
    except ValueError:
        raise ValueError(f"expected a comma-separated integer list, got {raw!r}")


def _parse_type(service: RecommendationService, token: str):
    """A store type given as an index or a name."""
    try:
        return int(token)
    except ValueError:
        return token


def _run_query(
    service: RecommendationService,
    type_token: str,
    k: Optional[int],
    candidates: Optional[Sequence[int]],
    exclude: Optional[Sequence[int]],
) -> str:
    results = service.query(
        _parse_type(service, type_token),
        candidate_regions=candidates,
        k=k,
        exclude_regions=exclude,
    )
    return _format_results(service, results)


def handle_line(service: RecommendationService, line: str) -> Tuple[str, bool]:
    """Execute one line-protocol command.

    Returns ``(response, keep_going)``; ``keep_going`` is False after QUIT.
    """
    tokens = line.strip().split()
    if not tokens:
        return "ERR empty command", True
    command = tokens[0].upper()
    try:
        if command == "PING":
            return "PONG", True
        if command in ("QUIT", "EXIT"):
            return "BYE", False
        if command == "TYPES":
            names = service.snapshot.type_names
            return "OK " + json.dumps({str(i): n for i, n in enumerate(names)}), True
        if command == "STATS":
            return "OK " + json.dumps(service.stats()), True
        if command == "RELOAD":
            if len(tokens) != 2:
                return "ERR usage: RELOAD <snapshot.npz>", True
            snapshot = service.reload(tokens[1])
            return "OK " + json.dumps({"snapshot_id": snapshot.snapshot_id}), True
        if command == "QUERY":
            if len(tokens) < 2:
                return "ERR usage: QUERY <type> [K=n] [CANDIDATES=..] [EXCLUDE=..]", True
            k: Optional[int] = None
            candidates: Optional[List[int]] = None
            exclude: Optional[List[int]] = None
            for token in tokens[2:]:
                key, _, value = token.partition("=")
                key = key.upper()
                if key == "K":
                    k = int(value)
                elif key == "CANDIDATES":
                    candidates = _parse_int_list(value)
                elif key == "EXCLUDE":
                    exclude = _parse_int_list(value)
                else:
                    return f"ERR unknown option {token!r}", True
            return "OK " + _run_query(service, tokens[1], k, candidates, exclude), True
        return f"ERR unknown command {command!r}", True
    except (KeyError, ValueError, OSError) as exc:
        return f"ERR {exc}", True


def serve_lines(service: RecommendationService, in_stream, out_stream) -> None:
    """Run the line protocol over a pair of text streams until EOF/QUIT."""
    for line in in_stream:
        response, keep_going = handle_line(service, line)
        out_stream.write(response + "\n")
        out_stream.flush()
        if not keep_going:
            break


# ----------------------------------------------------------------------
# HTTP
# ----------------------------------------------------------------------
def make_http_handler(service: RecommendationService):
    """A BaseHTTPRequestHandler subclass bound to ``service``."""

    class Handler(BaseHTTPRequestHandler):
        # HTTP/1.1 enables keep-alive: BaseHTTPRequestHandler defaults to
        # HTTP/1.0, where every query pays a full TCP setup/teardown (plus
        # a handler thread spawn under ThreadingHTTPServer) -- that
        # dominated small-query latency.  Every response already carries
        # Content-Length, which persistent connections require.
        protocol_version = "HTTP/1.1"
        # Persistent connections expose a Nagle/delayed-ACK stall: headers
        # and body leave in separate writes, and without TCP_NODELAY the
        # second write can sit ~40ms waiting for the client's ACK.
        # HTTP/1.0 masked this by closing (and so flushing) per response.
        disable_nagle_algorithm = True
        # Reap keep-alive connections whose client went quiet, so idle
        # sockets do not pin handler threads forever.
        timeout = 60.0

        def _send(self, status: int, payload: str) -> None:
            body = payload.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            parsed = urlparse(self.path)
            params = parse_qs(parsed.query)
            try:
                if parsed.path == "/healthz":
                    self._send(200, json.dumps({"status": "ok"}))
                elif parsed.path == "/stats":
                    self._send(200, json.dumps(service.stats()))
                elif parsed.path == "/types":
                    names = service.snapshot.type_names
                    self._send(
                        200, json.dumps({str(i): n for i, n in enumerate(names)})
                    )
                elif parsed.path == "/recommend":
                    if "type" not in params:
                        self._send(400, json.dumps({"error": "missing type"}))
                        return
                    k = int(params["k"][0]) if "k" in params else None
                    candidates = (
                        _parse_int_list(params["candidates"][0])
                        if "candidates" in params
                        else None
                    )
                    exclude = (
                        _parse_int_list(params["exclude"][0])
                        if "exclude" in params
                        else None
                    )
                    self._send(
                        200,
                        _run_query(
                            service, params["type"][0], k, candidates, exclude
                        ),
                    )
                else:
                    self._send(404, json.dumps({"error": "not found"}))
            except (KeyError, ValueError) as exc:
                self._send(400, json.dumps({"error": str(exc)}))

        def log_message(self, *args) -> None:  # pragma: no cover - quiet
            pass

    return Handler


def serve_http(
    service: RecommendationService, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Create (but don't start) an HTTP server for ``service``."""
    server = ThreadingHTTPServer((host, port), make_http_handler(service))
    # Keep-alive connections must not block shutdown (threads park in
    # readline waiting for the client's next request).
    server.daemon_threads = True
    return server
