"""Pre-forked multi-process serving plane (``O2_SERVE_PROCS``).

One Python process can only parse HTTP, digest candidates and rank top-k
on one core at a time -- the GIL serialises everything but the numpy
matmuls.  ``WorkerPool`` scales the serving plane out instead of up:

* **N pre-forked workers**, each a full :class:`RecommendationService`
  (own micro-batcher, own score cache) behind the shared listen port.
  Where the platform supports it every worker binds the port itself with
  ``SO_REUSEPORT`` and the kernel load-balances connections; elsewhere the
  pool fails soft to the classic pre-fork model -- the parent binds and
  listens once and every forked worker ``accept``\\ s on the inherited
  socket.
* **One snapshot, zero copies**: workers open the same
  :mod:`repro.serve.arena` file, so the OS page cache backs the whole
  fleet with a single physical copy of the embeddings (``.npz`` snapshots
  also work, at the cost of a private copy per worker).
* **Shared-memory metrics** (:class:`SharedServiceStats`): counters and
  fixed-bucket latency histograms live in ``multiprocessing`` shared
  arrays, mirrored from each worker's local :class:`ServiceMetrics` via
  its sink hook, so :meth:`WorkerPool.stats` aggregates fleet-wide QPS,
  p50/p99 and cache ratios without asking any worker anything.
* **Atomic fleet-wide hot swap**: deploys are a manifest-file version
  bump (:func:`write_manifest`, temp file + ``os.replace``).  Every
  worker watches the manifest and calls ``service.reload`` on a bump;
  each worker's cutover is a single reference swap, queries in flight
  finish on whichever snapshot their scoring pass captured, and no
  half-written state is ever visible because the manifest (and the arena
  it points at) only ever replace atomically.
"""

from __future__ import annotations

import bisect
import json
import multiprocessing as mp
import os
import signal
import socket
import tempfile
import threading
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..parallel import num_serve_procs
from .metrics import BUCKET_BOUNDS, ServiceMetrics
from .protocol import make_http_handler
from .service import RecommendationService
from .snapshot import ModelSnapshot, PathLike

# Counter/stage names mirrored into shared memory.  Fixed at fork time:
# shared arrays cannot grow, and a fixed layout keeps recording lock-cheap.
SHARED_COUNTERS = (
    "queries",
    "cache_hits",
    "cache_misses",
    "batches",
    "batched_requests",
    "batched_pairs",
    "reloads",
    "reload_errors",
    "retrievals",
    "retrieval_fallbacks",
)
SHARED_STAGES = ("total", "queue", "score", "retrieve")


# ----------------------------------------------------------------------
# Shared-memory metrics
# ----------------------------------------------------------------------
class SharedServiceStats:
    """Fleet-wide counters + latency histograms in shared memory.

    The bucket bounds replicate :data:`repro.serve.metrics.BUCKET_BOUNDS`
    so aggregated percentiles mean the same thing as per-worker ones.
    Everything updates under one cross-process lock; recording is a few
    integer adds, cheap enough for the request hot path.
    """

    def __init__(self, num_workers: int, ctx=None) -> None:
        ctx = ctx or mp.get_context()
        self.num_workers = num_workers
        self._lock = ctx.Lock()
        self._counters = ctx.Array("q", len(SHARED_COUNTERS), lock=False)
        self._worker_queries = ctx.Array("q", max(num_workers, 1), lock=False)
        buckets = len(BUCKET_BOUNDS) + 1
        self._buckets = ctx.Array("q", len(SHARED_STAGES) * buckets, lock=False)
        self._counts = ctx.Array("q", len(SHARED_STAGES), lock=False)
        self._sums = ctx.Array("d", len(SHARED_STAGES), lock=False)
        self._maxes = ctx.Array("d", len(SHARED_STAGES), lock=False)

    # -- recording (called from worker processes) -----------------------
    def increment(
        self, name: str, amount: int = 1, worker: Optional[int] = None
    ) -> None:
        try:
            idx = SHARED_COUNTERS.index(name)
        except ValueError:
            return  # not a fleet-level counter
        with self._lock:
            self._counters[idx] += amount
            if name == "queries" and worker is not None:
                self._worker_queries[worker] += amount

    def observe(self, stage: str, seconds: float) -> None:
        try:
            s = SHARED_STAGES.index(stage)
        except ValueError:
            return
        buckets = len(BUCKET_BOUNDS) + 1
        b = bisect.bisect_left(BUCKET_BOUNDS, seconds)
        with self._lock:
            self._buckets[s * buckets + b] += 1
            self._counts[s] += 1
            self._sums[s] += seconds
            if seconds > self._maxes[s]:
                self._maxes[s] = seconds

    # -- reading (parent process) ---------------------------------------
    def counter(self, name: str) -> int:
        idx = SHARED_COUNTERS.index(name)
        with self._lock:
            return int(self._counters[idx])

    def worker_queries(self) -> List[int]:
        with self._lock:
            return list(self._worker_queries)

    @staticmethod
    def _percentile(counts: List[int], total: int, max_s: float, p: float) -> float:
        if not total:
            return 0.0
        rank = p / 100.0 * total
        cumulative = 0
        for i, n in enumerate(counts):
            cumulative += n
            if cumulative >= rank and n:
                if i < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[i]
                return max_s
        return max_s

    def aggregate(self) -> Dict[str, object]:
        """Fleet totals in the shape of ``ServiceMetrics.snapshot()``."""
        buckets = len(BUCKET_BOUNDS) + 1
        with self._lock:
            counters = {
                name: int(self._counters[i])
                for i, name in enumerate(SHARED_COUNTERS)
            }
            latency: Dict[str, Dict[str, float]] = {}
            for s, stage in enumerate(SHARED_STAGES):
                total = int(self._counts[s])
                if not total:
                    continue
                row = list(self._buckets[s * buckets:(s + 1) * buckets])
                max_s = float(self._maxes[s])
                latency[stage] = {
                    "count": total,
                    "mean_ms": self._sums[s] / total * 1e3,
                    "p50_ms": self._percentile(row, total, max_s, 50) * 1e3,
                    "p99_ms": self._percentile(row, total, max_s, 99) * 1e3,
                    "max_ms": max_s * 1e3,
                }
            worker_queries = list(self._worker_queries)
        return {
            "counters": counters,
            "latency": latency,
            "per_worker_queries": worker_queries,
        }


class _WorkerSink:
    """Adapts ``SharedServiceStats`` to the ``ServiceMetrics`` sink API,
    tagging query counts with the owning worker's slot."""

    def __init__(self, shared: SharedServiceStats, worker_index: int) -> None:
        self._shared = shared
        self._worker = worker_index

    def increment(self, name: str, amount: int = 1) -> None:
        self._shared.increment(name, amount, worker=self._worker)

    def observe(self, stage: str, seconds: float) -> None:
        self._shared.observe(stage, seconds)


# ----------------------------------------------------------------------
# Deploy manifest: the fleet-wide hot-swap coordination point
# ----------------------------------------------------------------------
def read_manifest(path: PathLike) -> Tuple[int, str]:
    """The (version, snapshot path) currently deployed by ``path``."""
    payload = json.loads(Path(path).read_text())
    return int(payload["version"]), str(payload["snapshot"])

def write_manifest(
    path: PathLike, snapshot_path: PathLike, version: Optional[int] = None
) -> int:
    """Atomically point the manifest at ``snapshot_path``; returns version.

    ``version`` defaults to the current manifest version + 1.  The write
    is temp-file + ``os.replace``, so watchers see either the old or the
    new manifest in full -- the deploy is one atomic bump for the whole
    fleet, exactly like ``service.reload`` is for one process.
    """
    path = Path(path)
    if version is None:
        try:
            version = read_manifest(path)[0] + 1
        except (OSError, ValueError, KeyError):
            version = 1
    payload = {"version": int(version), "snapshot": str(snapshot_path)}
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w") as out:
            json.dump(payload, out)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return int(version)


class _ManifestWatcher(threading.Thread):
    """Polls the manifest and hot-swaps the worker's service on a bump."""

    def __init__(
        self,
        service: RecommendationService,
        manifest_path: Path,
        seen_version: int,
        poll_interval_s: float,
        shared: Optional[SharedServiceStats],
        stop_event: threading.Event,
    ) -> None:
        super().__init__(name="o2-serve-manifest", daemon=True)
        self._service = service
        self._manifest_path = manifest_path
        self._seen = seen_version
        self._poll = poll_interval_s
        self._shared = shared
        self._stop = stop_event

    def run(self) -> None:
        while not self._stop.wait(self._poll):
            try:
                version, snapshot_path = read_manifest(self._manifest_path)
            except (OSError, ValueError, KeyError):
                continue  # not written yet / mid-deploy race lost benignly
            if version == self._seen:
                continue
            try:
                self._service.reload(snapshot_path)
                self._seen = version
            except Exception:
                # Keep serving the old snapshot; surface the failure in
                # the fleet counters instead of killing the worker.
                self._seen = version
                if self._shared is not None:
                    self._shared.increment("reload_errors")


# ----------------------------------------------------------------------
# HTTP servers for the two socket-sharing strategies
# ----------------------------------------------------------------------
class _ReusePortHTTPServer(ThreadingHTTPServer):
    """Each worker binds the same (host, port) with ``SO_REUSEPORT``."""

    daemon_threads = True

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class _InheritedSocketHTTPServer(ThreadingHTTPServer):
    """Workers accept on one listening socket inherited from the parent."""

    daemon_threads = True

    def __init__(self, listen_sock: socket.socket, handler) -> None:
        super().__init__(
            listen_sock.getsockname()[:2], handler, bind_and_activate=False
        )
        self.socket.close()  # replace the unused fresh socket
        self.socket = listen_sock
        self.server_address = listen_sock.getsockname()
        host, port = self.server_address[:2]
        self.server_name = socket.getfqdn(host)
        self.server_port = port
        # The parent already called bind() and listen(); activating again
        # would listen() twice (harmless) -- skip for clarity.

    def server_close(self) -> None:
        # The listen socket belongs to the pool, not this worker.
        pass


def reuseport_available() -> bool:
    """Whether this platform can load-balance via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------
def _worker_main(
    worker_index: int,
    snapshot_path: str,
    host: str,
    port: int,
    shared: SharedServiceStats,
    manifest_path: Optional[str],
    poll_interval_s: float,
    service_kwargs: dict,
    ready_event,
    stop_event,
    listen_sock: Optional[socket.socket],
) -> None:
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent coordinates

    boot_path = snapshot_path
    seen_version = 0
    if manifest_path is not None:
        try:
            seen_version, boot_path = read_manifest(manifest_path)
        except (OSError, ValueError, KeyError):
            pass  # no manifest yet: boot from the given snapshot

    snapshot = ModelSnapshot.load(boot_path)
    metrics = ServiceMetrics(sink=_WorkerSink(shared, worker_index))
    service = RecommendationService(snapshot, metrics=metrics, **service_kwargs)
    handler = make_http_handler(service)
    if listen_sock is not None:
        server = _InheritedSocketHTTPServer(listen_sock, handler)
    else:
        server = _ReusePortHTTPServer((host, port), handler)

    local_stop = threading.Event()
    if manifest_path is not None:
        _ManifestWatcher(
            service,
            Path(manifest_path),
            seen_version,
            poll_interval_s,
            shared,
            local_stop,
        ).start()

    serve_thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="o2-serve-http",
        daemon=True,
    )
    serve_thread.start()
    ready_event.set()
    try:
        while not stop_event.wait(0.2):
            pass
    finally:
        local_stop.set()
        server.shutdown()
        server.server_close()
        service.close()


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
def _rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` (Linux /proc; None elsewhere)."""
    try:
        with open(f"/proc/{pid}/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


class WorkerPool:
    """N pre-forked HTTP serving workers behind one port.

    ``procs`` defaults to ``O2_SERVE_PROCS`` (``auto`` = CPU count).
    ``manifest_path`` enables fleet-wide hot swap: :meth:`reload` bumps
    the manifest and every worker cuts over atomically within
    ``poll_interval_s``.  ``service_kwargs`` are forwarded to each
    worker's :class:`RecommendationService`.
    """

    def __init__(
        self,
        snapshot_path: PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        procs: Optional[int] = None,
        manifest_path: Optional[PathLike] = None,
        poll_interval_s: float = 0.25,
        service_kwargs: Optional[dict] = None,
        start_timeout_s: float = 60.0,
    ) -> None:
        self.snapshot_path = str(snapshot_path)
        self.host = host
        self.port = port  # resolved on start() when 0
        self.procs = procs if procs is not None else num_serve_procs()
        if self.procs < 1:
            raise ValueError("procs must be >= 1")
        self.manifest_path = (
            None if manifest_path is None else Path(manifest_path)
        )
        self.poll_interval_s = poll_interval_s
        self.service_kwargs = dict(service_kwargs or {})
        self.start_timeout_s = start_timeout_s
        self.shared: Optional[SharedServiceStats] = None
        self._workers: List[mp.Process] = []
        self._reserve_sock: Optional[socket.socket] = None
        self._stop_event = None
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "WorkerPool":
        if self._started:
            raise RuntimeError("pool already started")
        if "fork" in mp.get_all_start_methods():
            ctx = mp.get_context("fork")
        elif reuseport_available():
            ctx = mp.get_context()
        else:  # pragma: no cover - exotic platform
            raise RuntimeError(
                "WorkerPool needs fork (to inherit a listen socket) or "
                "SO_REUSEPORT; this platform offers neither"
            )

        self.shared = SharedServiceStats(self.procs, ctx=ctx)
        self._stop_event = ctx.Event()

        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listen_sock: Optional[socket.socket] = None
        if reuseport_available():
            # Reserve the port without serving from it: a bound TCP socket
            # that never listens is not in the REUSEPORT accept group, so
            # it pins the (possibly ephemeral) port for late worker binds
            # while receiving no connections itself.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
        else:  # fail-soft: classic pre-fork, workers share one socket
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
            sock.listen(128)
            listen_sock = sock
        self._reserve_sock = sock
        self.port = sock.getsockname()[1]

        ready_events = [ctx.Event() for _ in range(self.procs)]
        self._workers = [
            ctx.Process(
                target=_worker_main,
                args=(
                    i,
                    self.snapshot_path,
                    self.host,
                    self.port,
                    self.shared,
                    None if self.manifest_path is None else str(self.manifest_path),
                    self.poll_interval_s,
                    self.service_kwargs,
                    ready_events[i],
                    self._stop_event,
                    listen_sock,
                ),
                name=f"o2-serve-worker-{i}",
                daemon=True,
            )
            for i in range(self.procs)
        ]
        for worker in self._workers:
            worker.start()
        deadline = time.monotonic() + self.start_timeout_s
        for i, event in enumerate(ready_events):
            if not event.wait(max(deadline - time.monotonic(), 0.0)):
                self.stop()
                raise RuntimeError(
                    f"serving worker {i} failed to become ready within "
                    f"{self.start_timeout_s:.0f}s"
                )
        self._started = True
        return self

    def stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()
        for worker in self._workers:
            worker.join(timeout=10.0)
        for worker in self._workers:
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5.0)
        if self._reserve_sock is not None:
            self._reserve_sock.close()
            self._reserve_sock = None
        self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- operations -----------------------------------------------------
    @property
    def pids(self) -> List[int]:
        return [worker.pid for worker in self._workers if worker.pid]

    def reload(self, snapshot_path: PathLike) -> int:
        """Deploy ``snapshot_path`` fleet-wide via a manifest bump."""
        if self.manifest_path is None:
            raise RuntimeError(
                "hot swap needs a manifest_path; start the pool with one"
            )
        return write_manifest(self.manifest_path, snapshot_path)

    def stats(self) -> Dict[str, object]:
        """Aggregated fleet stats + per-worker health (pids, RSS)."""
        report = (
            self.shared.aggregate()
            if self.shared is not None
            else {"counters": {}, "latency": {}, "per_worker_queries": []}
        )
        report["procs"] = self.procs
        report["port"] = self.port
        report["pids"] = self.pids
        report["alive"] = [worker.is_alive() for worker in self._workers]
        report["rss_bytes"] = [_rss_bytes(pid) for pid in self.pids]
        report["reuseport"] = reuseport_available()
        if self.manifest_path is not None:
            try:
                version, snapshot = read_manifest(self.manifest_path)
                report["manifest"] = {"version": version, "snapshot": snapshot}
            except (OSError, ValueError, KeyError):
                report["manifest"] = None
        return report
