"""Frozen inference snapshot of a trained O2-SiteRec model.

The full model's forward pass re-runs the per-period heterogeneous
multi-graph propagation for *every* query, even though that propagation is
completely query-independent: only the final gather + time attention +
predictor MLP depend on the requested (region, type) pairs.  A
:class:`ModelSnapshot` runs the propagation exactly once (eval mode,
dropout off), freezes the per-period store-region/store-type embeddings and
the time-attention/predictor weights as plain numpy arrays, and scores
queries with a gather and a few small matmuls.

The scoring path mirrors :meth:`HeteroRecommender.forward` operation by
operation (same numpy calls in the same order), so snapshot scores are
bit-for-bit identical to ``O2SiteRec.predict`` on the same pairs --
``tests/test_serve.py`` pins this.

Snapshots also serialise standalone (:meth:`save`/:meth:`load`): unlike a
model checkpoint, a snapshot file does not need the training dataset to be
rebuilt, so it is the deployable artifact for serving hosts.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

_MARKER_KEY = "__o2_snapshot__"
_META_KEY = "__snapshot_meta__"
_SNAPSHOT_FORMAT_VERSION = 1


def _npz_path(path: PathLike) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _resolve_snapshot_path(path: PathLike) -> Path:
    """An existing snapshot file for ``path``, trying known suffixes.

    ``save`` appends ``.npz`` / ``.arena`` to suffixless paths, so
    ``load`` mirrors that: the literal path wins, then the suffixed
    variants.  Missing files resolve to the ``.npz`` spelling so the
    caller sees the same ``FileNotFoundError`` as before.
    """
    path = Path(path)
    if path.exists():
        return path
    for suffixed in (_npz_path(path), path.with_name(path.name + ".arena")):
        if suffixed.exists():
            return suffixed
    return _npz_path(path)


class ModelSnapshot:
    """Query-independent state of a trained model, frozen for serving.

    Parameters are plain numpy arrays -- no autograd graph is ever built,
    and nothing here is mutated after construction, so a snapshot can be
    shared freely across serving threads.
    """

    def __init__(
        self,
        *,
        h: np.ndarray,  # (P, nS, d2) per-period store-region embeddings
        q: np.ndarray,  # (P, T, d2) per-period store-type embeddings
        pair_commercial: np.ndarray,  # (nS, T, 2)
        store_regions: np.ndarray,  # (nS,) region id of each store node
        type_names: Sequence[str],
        target_scale: float,
        product_channel: bool,
        commercial_in_predictor: bool,
        time_attention: bool,
        time_heads: int,
        time_key_weight: Optional[np.ndarray],  # (D, D) or None
        time_query_weight: Optional[np.ndarray],  # (D, D) or None
        predictor_weights: Sequence[Tuple[np.ndarray, np.ndarray]],
        meta: Optional[dict] = None,
        snapshot_id: Optional[str] = None,
        index=None,
    ) -> None:
        self.h = np.ascontiguousarray(h, dtype=np.float64)
        self.q = np.ascontiguousarray(q, dtype=np.float64)
        self.pair_commercial = np.asarray(pair_commercial, dtype=np.float64)
        self.store_regions = np.asarray(store_regions, dtype=np.int64)
        self.type_names: List[str] = list(type_names)
        self.target_scale = float(target_scale)
        self.product_channel = bool(product_channel)
        self.commercial_in_predictor = bool(commercial_in_predictor)
        self.time_attention = bool(time_attention)
        self.time_heads = int(time_heads)
        self.time_key_weight = (
            None if time_key_weight is None
            else np.asarray(time_key_weight, dtype=np.float64)
        )
        self.time_query_weight = (
            None if time_query_weight is None
            else np.asarray(time_query_weight, dtype=np.float64)
        )
        self.predictor_weights = [
            (np.asarray(w, dtype=np.float64), np.asarray(b, dtype=np.float64))
            for w, b in predictor_weights
        ]
        self.meta = dict(meta or {})
        # Optional retrieval index (repro.serve.index.VectorIndex): the
        # coarse stage of retrieve-then-rank serving.  Not part of the
        # fingerprint -- it is derived state, rebuildable from the arrays
        # above, so indexed and plain copies of one model share an id.
        self.index = index

        self._store_index = {
            int(r): i for i, r in enumerate(self.store_regions)
        }
        # A precomputed id (from an arena header) skips hashing every
        # parameter byte -- the point of the O(ms) mmap open path.
        self.snapshot_id = snapshot_id or self._fingerprint()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_periods(self) -> int:
        return self.h.shape[0]

    @property
    def num_store_nodes(self) -> int:
        return self.h.shape[1]

    @property
    def num_types(self) -> int:
        return self.q.shape[1]

    @property
    def embedding_dim(self) -> int:
        return self.h.shape[2]

    @property
    def pair_dim(self) -> int:
        return (3 if self.product_channel else 2) * self.embedding_dim

    def candidate_regions(self) -> np.ndarray:
        """All servable regions (the model's store-node set)."""
        return self.store_regions.copy()

    def type_index(self, name_or_index: Union[str, int]) -> int:
        """Resolve a store type given a name or an integer index."""
        if isinstance(name_or_index, str):
            try:
                return self.type_names.index(name_or_index)
            except ValueError:
                raise KeyError(
                    f"unknown store type {name_or_index!r}"
                ) from None
        index = int(name_or_index)
        if not 0 <= index < self.num_types:
            raise KeyError(f"store type index {index} out of range")
        return index

    def _fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.h.tobytes())
        digest.update(self.q.tobytes())
        if self.time_key_weight is not None:
            digest.update(self.time_key_weight.tobytes())
            digest.update(self.time_query_weight.tobytes())
        for w, b in self.predictor_weights:
            digest.update(w.tobytes())
            digest.update(b.tobytes())
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls,
        model,
        meta: Optional[dict] = None,
        shard_tiles: Optional[int] = None,
    ) -> "ModelSnapshot":
        """Freeze a live :class:`~repro.core.O2SiteRec` for serving.

        ``shard_tiles`` pins the grid-tile count of the embedding export's
        propagation (:mod:`repro.core.shard`): the snapshot is assembled
        from per-tile partial aggregations instead of one monolithic
        sweep, which is how metropolis-scale snapshots stay inside the
        build host's cache/memory budget.  ``None`` defers to the usual
        ``O2_SHARD_TILES``/auto-threshold gate; the stitched embeddings
        are bit-identical either way, so the snapshot fingerprint does not
        depend on the build topology.  The effective tile count is
        recorded under ``meta["shard_tiles"]``.
        """
        from ..core.shard import (
            shard_gate_reason,
            shard_tiles_for,
            use_shard_tiles,
        )
        from ..data.periods import TimePeriod

        with use_shard_tiles(shard_tiles):
            per_period = model.export_embeddings()
            was_training = model.training
            model.eval()
            try:
                effective_tiles = shard_tiles_for(model.recommender)
                gate_reason = shard_gate_reason()
            finally:
                if was_training:
                    model.train()
        meta = dict(meta or {})
        meta.setdefault("shard_tiles", int(effective_tiles))
        meta.setdefault("shard_gate_reason", gate_reason)
        h = np.stack([per_period[p][0] for p in TimePeriod], axis=0)
        q = np.stack([per_period[p][1] for p in TimePeriod], axis=0)

        rec = model.recommender
        cfg = model.config
        if cfg.time_attention:
            attn = rec.time_attention
            time_heads = attn.num_heads
            key_w = attn.key_proj.weight.data.copy()
            query_w = attn.query_proj.weight.data.copy()
        else:
            time_heads, key_w, query_w = 1, None, None

        predictor_weights = [
            (layer.weight.data.copy(), layer.bias.data.copy())
            for layer in rec.predictor.layers
        ]

        return cls(
            h=h,
            q=q,
            pair_commercial=rec._pair_commercial.copy(),
            store_regions=model.hetero_graph.store_regions.copy(),
            type_names=list(model.dataset.type_names),
            target_scale=model.dataset.target_scale,
            product_channel=cfg.product_channel,
            commercial_in_predictor=cfg.commercial_in_predictor,
            time_attention=cfg.time_attention,
            time_heads=time_heads,
            time_key_weight=key_w,
            time_query_weight=query_w,
            predictor_weights=predictor_weights,
            meta=meta,
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: PathLike,
        dataset,
        split=None,
        meta: Optional[dict] = None,
    ) -> "ModelSnapshot":
        """Load a ``save_model`` checkpoint and freeze it in one step."""
        from ..core.serialize import load_model

        model = load_model(path, dataset, split)
        merged = {"source": str(path)}
        merged.update(meta or {})
        return cls.from_model(model, meta=merged)

    # ------------------------------------------------------------------
    # Retrieval index
    # ------------------------------------------------------------------
    def build_index(self, **kwargs):
        """Train and attach a retrieval index over the candidate regions.

        Keyword arguments go to :meth:`repro.serve.index.VectorIndex.build`
        (``kind``, ``partitions``, ``retrieve_m``, ``nprobe``, ``seed``).
        The index serialises with the snapshot in both file formats and is
        the only post-construction mutation a snapshot allows.
        """
        from .index import VectorIndex

        self.index = VectorIndex.build(self, **kwargs)
        return self.index

    # ------------------------------------------------------------------
    # Scoring (mirrors HeteroRecommender.forward bit-for-bit)
    # ------------------------------------------------------------------
    def _pair_indices(self, pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        pairs = np.asarray(pairs, dtype=np.int64)
        try:
            s_idx = np.array([self._store_index[int(r)] for r in pairs[:, 0]])
        except KeyError as exc:
            raise KeyError(f"region {exc} is not a store region") from None
        return s_idx, pairs[:, 1]

    def _score_nodes(self, s_idx: np.ndarray, types: np.ndarray) -> np.ndarray:
        periods, _, d2 = self.h.shape
        per_period = []
        for p in range(periods):
            h_pairs = self.h[p][s_idx]
            q_pairs = self.q[p][types]
            blocks = [h_pairs, q_pairs]
            if self.product_channel:
                blocks.append(h_pairs * q_pairs)
            per_period.append(np.concatenate(blocks, axis=1))
        stacked = np.stack(per_period, axis=0)  # (P, K, D)

        if self.time_attention:
            k = stacked.shape[1]
            dim = stacked.shape[2]
            head_dim = dim // self.time_heads
            flat = stacked.reshape(periods * k, dim)
            keys = (flat @ self.time_key_weight).reshape(
                periods, k, self.time_heads, head_dim
            )
            queries = (flat @ self.time_query_weight).reshape(
                periods, k, self.time_heads, head_dim
            )
            scale = 1.0 / np.sqrt(head_dim)
            # Same einsum contractions as repro.tensor.period_attention --
            # the bit-for-bit serving guarantee needs identical expressions.
            scores = np.einsum("pkhd,pkhd->pkh", keys, queries) * scale
            shifted = scores - scores.max(axis=0, keepdims=True)
            exp = np.exp(shifted)
            weights = exp / exp.sum(axis=0, keepdims=True)
            mixed = np.einsum("pkhd,pkh->khd", keys, weights)  # (K, H, hd)
            fused = mixed.reshape(k, dim)
            fused = fused * (fused > 0)  # relu, as Tensor.relu computes it
        else:
            fused = stacked.sum(axis=0) * (1.0 / periods)  # Tensor.mean

        if self.commercial_in_predictor:
            commercial = self.pair_commercial[s_idx, types]
            fused = np.concatenate([fused, commercial], axis=1)

        x = fused
        n = len(self.predictor_weights)
        for i, (w, b) in enumerate(self.predictor_weights):
            x = x @ w + b
            if i < n - 1:
                x = x * (x > 0)
        return np.squeeze(x, axis=1)

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        """Scores for ``(K, 2)`` (region, type) pairs.

        Drop-in for ``O2SiteRec.predict`` -- works with
        :func:`repro.core.recommend_sites` and ``evaluate_model``.
        """
        s_idx, types = self._pair_indices(pairs)
        return self._score_nodes(s_idx, types)

    def score_candidates(
        self, store_type: Union[str, int], candidate_regions: Sequence[int]
    ) -> np.ndarray:
        """Scores for one type over a candidate region list."""
        a = self.type_index(store_type)
        candidates = np.asarray(list(candidate_regions), dtype=np.int64)
        pairs = np.stack(
            [candidates, np.full(len(candidates), a, dtype=np.int64)], axis=1
        )
        return self.predict(pairs)

    # ------------------------------------------------------------------
    # Persistence (dataset-free, unlike model checkpoints)
    # ------------------------------------------------------------------
    def _meta_payload(self) -> dict:
        """The JSON-serialisable metadata both file formats store."""
        return {
            "format_version": _SNAPSHOT_FORMAT_VERSION,
            "type_names": self.type_names,
            "target_scale": self.target_scale,
            "product_channel": self.product_channel,
            "commercial_in_predictor": self.commercial_in_predictor,
            "time_attention": self.time_attention,
            "time_heads": self.time_heads,
            "num_predictor_layers": len(self.predictor_weights),
            "extra": self.meta,
            # Optional retrieval-index metadata; readers that predate the
            # index (or files that predate it) simply see no "index" key.
            "index": None if self.index is None else self.index.meta_payload(),
        }

    def _array_payload(self) -> Dict[str, np.ndarray]:
        """Named parameter arrays, in a fixed serialisation order."""
        arrays = {
            "h": self.h,
            "q": self.q,
            "pair_commercial": self.pair_commercial,
            "store_regions": self.store_regions,
        }
        if self.time_attention:
            arrays["time_key_weight"] = self.time_key_weight
            arrays["time_query_weight"] = self.time_query_weight
        for i, (w, b) in enumerate(self.predictor_weights):
            arrays[f"predictor_w_{i}"] = w
            arrays[f"predictor_b_{i}"] = b
        if self.index is not None:
            arrays.update(self.index.array_payload())
        return arrays

    @classmethod
    def _from_payload(
        cls, meta: dict, arrays, snapshot_id: Optional[str] = None
    ) -> "ModelSnapshot":
        """Rebuild from a (meta, name->array mapping) pair."""
        version = int(meta["format_version"])
        if version != _SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"snapshot format {version} not supported "
                f"(expected {_SNAPSHOT_FORMAT_VERSION})"
            )
        time_attention = bool(meta["time_attention"])
        index_meta = meta.get("index")
        index = None
        if index_meta is not None:
            from .index import VectorIndex

            index = VectorIndex.from_payload(index_meta, arrays)
        return cls(
            h=arrays["h"],
            q=arrays["q"],
            pair_commercial=arrays["pair_commercial"],
            store_regions=arrays["store_regions"],
            type_names=meta["type_names"],
            target_scale=meta["target_scale"],
            product_channel=meta["product_channel"],
            commercial_in_predictor=meta["commercial_in_predictor"],
            time_attention=time_attention,
            time_heads=meta["time_heads"],
            time_key_weight=(
                arrays["time_key_weight"] if time_attention else None
            ),
            time_query_weight=(
                arrays["time_query_weight"] if time_attention else None
            ),
            predictor_weights=[
                (arrays[f"predictor_w_{i}"], arrays[f"predictor_b_{i}"])
                for i in range(int(meta["num_predictor_layers"]))
            ],
            meta=meta.get("extra"),
            snapshot_id=snapshot_id,
            index=index,
        )

    def save(self, path: PathLike, format: str = "npz") -> Path:
        """Write the snapshot to ``path``; returns the (suffixed) path.

        ``format="npz"`` is the portable archive; ``format="arena"`` is
        the single-file mmap container (:mod:`repro.serve.arena`) whose
        open cost is O(milliseconds) regardless of size.
        """
        if format == "arena":
            from .arena import save_arena

            return save_arena(self, path)
        if format != "npz":
            raise ValueError(f"unknown snapshot format {format!r}")
        path = _npz_path(path)
        np.savez(
            path,
            **self._array_payload(),
            **{
                _MARKER_KEY: np.array(_SNAPSHOT_FORMAT_VERSION),
                _META_KEY: np.array(json.dumps(self._meta_payload())),
            },
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ModelSnapshot":
        """Read a snapshot written by :meth:`save` (either format).

        The format is sniffed from the file's magic bytes, so a serving
        host can be pointed at an ``.npz`` or an ``.arena`` file (with or
        without the suffix) interchangeably.
        """
        from .arena import is_arena_file, open_arena

        path = _resolve_snapshot_path(path)
        if is_arena_file(path):
            return open_arena(path)
        with np.load(path, allow_pickle=False) as archive:
            if _MARKER_KEY not in archive:
                raise ValueError(f"{path} is not an O2-SiteRec serving snapshot")
            meta = json.loads(str(archive[_META_KEY]))
            return cls._from_payload(meta, archive)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ModelSnapshot(id={self.snapshot_id}, periods={self.num_periods}, "
            f"store_nodes={self.num_store_nodes}, types={self.num_types}, "
            f"d2={self.embedding_dim})"
        )
