"""Command-line serving entry point.

Serve a dataset-free snapshot over stdin/stdout (line protocol):

    python -m repro.serve --snapshot snap.npz

Serve over HTTP, scaled out across pre-forked worker processes (also
settable via ``O2_SERVE_PROCS``; snapshots in the zero-copy ``.arena``
format are shared between workers through the OS page cache):

    python -m repro.serve --snapshot snap.arena --http 8080 --procs 4

Export a snapshot from a training checkpoint (rebuilds the dataset from a
city preset; the preset/seed/split-seed must match training):

    python -m repro.serve --checkpoint ckpt.npz --preset tiny \
        --export-snapshot snap.arena --snapshot-format arena

Convert an existing ``.npz`` snapshot to the mmap arena format:

    python -m repro.serve convert snap.npz

Attach a retrieval index (retrieve-then-rank serving) to a snapshot; the
index rides inside the same file as extra arena segments:

    python -m repro.serve build-index snap.arena --retrieve-m 64

Run one command and exit (useful for scripting/smoke tests):

    python -m repro.serve --snapshot snap.npz --once "QUERY 2 K=3"
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..parallel import num_serve_procs
from .arena import convert_snapshot, is_arena_file
from .protocol import handle_line, serve_http, serve_lines
from .service import RecommendationService
from .snapshot import ModelSnapshot
from .workers import WorkerPool


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve O2-SiteRec store-site recommendations online.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--snapshot", type=Path, help="dataset-free ModelSnapshot .npz"
    )
    source.add_argument(
        "--checkpoint", type=Path, help="save_model checkpoint .npz"
    )
    parser.add_argument(
        "--preset",
        choices=["tiny", "real", "sim"],
        default="tiny",
        help="city preset used to rebuild the checkpoint's dataset",
    )
    parser.add_argument("--seed", type=int, default=3, help="preset seed")
    parser.add_argument("--scale", type=float, default=1.0, help="preset scale")
    parser.add_argument(
        "--split-seed", type=int, default=0, help="interaction split seed"
    )
    parser.add_argument(
        "--export-snapshot",
        type=Path,
        default=None,
        help="freeze the checkpoint to this snapshot file and exit",
    )
    parser.add_argument(
        "--snapshot-format",
        choices=["npz", "arena"],
        default="npz",
        help="--export-snapshot container: portable .npz or zero-copy "
        "mmap .arena (O(ms) open, shared across serving workers)",
    )
    parser.add_argument("--http", type=int, default=None, metavar="PORT")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="pre-forked HTTP worker processes (default: O2_SERVE_PROCS "
        "or 1); values > 1 require --http",
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        help="deploy-manifest path for fleet-wide hot swap (multi-process "
        "serving); bump it with repro.serve.workers.write_manifest",
    )
    parser.add_argument("--once", default=None, metavar="COMMAND")
    parser.add_argument("--default-k", type=int, default=3)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-entries", type=int, default=512)
    parser.add_argument("--cache-ttl-s", type=float, default=300.0)
    parser.add_argument(
        "--index",
        choices=["auto", "on", "off"],
        default="auto",
        help="retrieve-then-rank: auto uses the snapshot's index when "
        "present, on requires it, off forces the exact full scan "
        "(overrides O2_SERVE_INDEX)",
    )
    parser.add_argument(
        "--retrieve-m",
        type=int,
        default=None,
        help="override the index's stored retrieval depth (top-M "
        "survivors re-ranked exactly)",
    )
    parser.add_argument(
        "--nprobe",
        type=int,
        default=None,
        help="override the index's stored IVF probe count",
    )
    return parser


def _index_kwargs(args: argparse.Namespace) -> dict:
    use_index = {"auto": None, "on": True, "off": False}[args.index]
    return {
        "use_index": use_index,
        "retrieve_m": args.retrieve_m,
        "nprobe": args.nprobe,
    }


def _load_snapshot(args: argparse.Namespace) -> ModelSnapshot:
    if args.snapshot is not None:
        return ModelSnapshot.load(args.snapshot)

    from ..city import real_world_dataset, simulation_dataset, tiny_dataset
    from ..data import SiteRecDataset

    if args.preset == "tiny":
        sim = tiny_dataset(seed=args.seed)
    elif args.preset == "real":
        sim = real_world_dataset(seed=args.seed, scale=args.scale)
    else:
        sim = simulation_dataset(seed=args.seed, scale=args.scale)
    dataset = SiteRecDataset.from_simulation(sim)
    split = dataset.split(seed=args.split_seed)
    return ModelSnapshot.from_checkpoint(args.checkpoint, dataset, split)


def build_convert_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve convert",
        description="Convert a .npz snapshot to the zero-copy .arena format.",
    )
    parser.add_argument("source", type=Path, help="source snapshot (.npz)")
    parser.add_argument(
        "dest",
        type=Path,
        nargs="?",
        default=None,
        help="destination .arena (default: source with .arena suffix)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip re-opening the arena to check the fingerprint",
    )
    return parser


def _convert_main(argv) -> int:
    args = build_convert_parser().parse_args(argv)
    path = convert_snapshot(args.source, args.dest, verify=not args.no_verify)
    print(f"wrote arena {path}")
    return 0


def build_index_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve build-index",
        description="Attach a retrieval index to a snapshot "
        "(retrieve-then-rank serving).",
    )
    parser.add_argument("source", type=Path, help="snapshot (.npz or .arena)")
    parser.add_argument(
        "dest",
        type=Path,
        nargs="?",
        default=None,
        help="output snapshot+index (default: rewrite source in place)",
    )
    parser.add_argument(
        "--kind",
        choices=["ivf", "flat"],
        default="ivf",
        help="ivf = partitioned (nprobe knob), flat = exhaustive baseline",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="IVF partition count (default: ~sqrt(num regions))",
    )
    parser.add_argument(
        "--retrieve-m",
        type=int,
        default=64,
        help="default retrieval depth stored with the index",
    )
    parser.add_argument(
        "--nprobe",
        type=int,
        default=None,
        help="default probe count stored with the index "
        "(default: partitions // 4)",
    )
    parser.add_argument("--seed", type=int, default=0, help="k-means seed")
    parser.add_argument(
        "--iters", type=int, default=15, help="k-means Lloyd iterations"
    )
    return parser


def _build_index_main(argv) -> int:
    args = build_index_parser().parse_args(argv)
    snapshot = ModelSnapshot.load(args.source)
    index = snapshot.build_index(
        kind=args.kind,
        partitions=args.partitions,
        retrieve_m=args.retrieve_m,
        nprobe=args.nprobe,
        seed=args.seed,
        iters=args.iters,
    )
    dest = args.source if args.dest is None else args.dest
    fmt = (
        "arena"
        if dest.suffix == ".arena"
        or (args.dest is None and is_arena_file(args.source))
        else "npz"
    )
    path = snapshot.save(dest, format=fmt)
    info = index.describe()
    print(
        f"wrote {info['kind']} index ({info['partitions']} partitions, "
        f"retrieve_m={info['retrieve_m']}, nprobe={info['nprobe']}, "
        f"{info['bytes'] / 1e6:.2f} MB) into {path}"
    )
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommand dispatch before the flag parser: `convert` and
    # `build-index` have their own positional grammar, everything else
    # keeps the original flags.
    if argv and argv[0] == "convert":
        return _convert_main(argv[1:])
    if argv and argv[0] == "build-index":
        return _build_index_main(argv[1:])
    args = build_parser().parse_args(argv)
    procs = args.procs if args.procs is not None else num_serve_procs()
    if procs < 1:
        build_parser().error("--procs must be >= 1")

    if procs > 1 and args.export_snapshot is None:
        # The worker pool loads the snapshot per process from a path; the
        # line protocol is single-process by nature.
        if args.http is None:
            build_parser().error("--procs > 1 requires --http")
        if args.snapshot is None:
            build_parser().error(
                "--procs > 1 requires --snapshot (export the checkpoint "
                "with --export-snapshot first)"
            )
        pool = WorkerPool(
            args.snapshot,
            host=args.host,
            port=args.http,
            procs=procs,
            manifest_path=args.manifest,
            service_kwargs={
                "default_k": args.default_k,
                "max_batch_size": args.max_batch_size,
                "batch_window_ms": args.batch_window_ms,
                "num_workers": args.workers,
                "cache_entries": args.cache_entries,
                "cache_ttl_s": args.cache_ttl_s,
                **_index_kwargs(args),
            },
        )
        with pool:
            print(
                f"serving {args.snapshot} with {procs} workers "
                f"on http://{args.host}:{pool.port}"
            )
            import signal
            import time

            # Treat SIGTERM like Ctrl-C so process managers get the same
            # orderly drain (stop event -> worker join) as interactive use.
            signal.signal(signal.SIGTERM, signal.default_int_handler)
            try:
                while True:  # workers carry the traffic; just sit here
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
        return 0

    snapshot = _load_snapshot(args)

    if args.export_snapshot is not None:
        path = snapshot.save(args.export_snapshot, format=args.snapshot_format)
        print(f"wrote snapshot {snapshot.snapshot_id} to {path}")
        return 0

    if args.index == "on" and snapshot.index is None:
        build_parser().error(
            "--index on requires an indexed snapshot (run "
            "`python -m repro.serve build-index` first)"
        )
    service = RecommendationService(
        snapshot,
        default_k=args.default_k,
        max_batch_size=args.max_batch_size,
        batch_window_ms=args.batch_window_ms,
        num_workers=args.workers,
        cache_entries=args.cache_entries,
        cache_ttl_s=args.cache_ttl_s,
        **_index_kwargs(args),
    )
    try:
        if args.once is not None:
            response, _ = handle_line(service, args.once)
            print(response)
            return 0 if not response.startswith("ERR") else 1
        if args.http is not None:
            server = serve_http(service, host=args.host, port=args.http)
            print(
                f"serving snapshot {snapshot.snapshot_id} "
                f"on http://{args.host}:{args.http}"
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                pass
            finally:
                server.server_close()
            return 0
        print(
            f"serving snapshot {snapshot.snapshot_id} on stdin "
            "(PING / TYPES / QUERY / STATS / RELOAD / QUIT)",
            file=sys.stderr,
        )
        serve_lines(service, sys.stdin, sys.stdout)
        return 0
    finally:
        service.close()


if __name__ == "__main__":
    raise SystemExit(main())
