"""Online serving for O2-SiteRec: precomputed embeddings, micro-batching,
hot-swappable snapshots, and a scale-out multi-process plane.

The training-side model re-runs the full multi-graph propagation on every
``predict`` call; this package separates the expensive, query-independent
representation building from the cheap per-request scoring:

* :class:`ModelSnapshot` -- runs propagation once and freezes per-period
  embeddings + head weights; scoring is a gather + small matmuls and is
  bit-for-bit identical to ``O2SiteRec.predict``.
* :mod:`~repro.serve.arena` -- a zero-copy single-file snapshot container
  opened via ``np.memmap``: O(ms) loads regardless of size, and N worker
  processes share one physical copy through the OS page cache.
* :class:`~repro.serve.index.VectorIndex` -- a dependency-free IVF/flat
  retrieval index over the snapshot's region embeddings: the coarse
  stage of retrieve-then-rank serving, serialized as extra 64B-aligned
  arena segments (``python -m repro.serve build-index``).
* :class:`RecommendationService` -- top-k query API with candidate
  filters, retrieve-then-rank when the snapshot carries an index
  (``O2_SERVE_INDEX`` / ``--index``), an LRU+TTL score cache, a
  micro-batching request queue and atomic snapshot hot swap
  (``service.reload``).
* :class:`~repro.serve.workers.WorkerPool` -- pre-forked multi-process
  HTTP serving (``O2_SERVE_PROCS``): ``SO_REUSEPORT`` load balancing with
  a fail-soft inherited-socket fallback, shared-memory fleet metrics, and
  manifest-driven fleet-wide hot swap.
* ``python -m repro.serve`` -- loads a checkpoint or snapshot and serves
  a line-protocol loop or the HTTP API (``--procs N`` scales out);
  ``python -m repro.serve convert`` rewrites ``.npz`` snapshots as arenas.
"""

from .arena import (
    arena_segments,
    convert_snapshot,
    is_arena_file,
    open_arena,
    save_arena,
)
from .batching import MicroBatcher
from .cache import ScoreCache, candidate_digest
from .index import VectorIndex
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import handle_line, make_http_handler, serve_http, serve_lines
from .service import RecommendationService
from .snapshot import ModelSnapshot
from .workers import SharedServiceStats, WorkerPool, read_manifest, write_manifest

__all__ = [
    "ModelSnapshot",
    "RecommendationService",
    "VectorIndex",
    "MicroBatcher",
    "ScoreCache",
    "candidate_digest",
    "ServiceMetrics",
    "LatencyHistogram",
    "handle_line",
    "serve_lines",
    "serve_http",
    "make_http_handler",
    "save_arena",
    "open_arena",
    "is_arena_file",
    "arena_segments",
    "convert_snapshot",
    "WorkerPool",
    "SharedServiceStats",
    "read_manifest",
    "write_manifest",
]
