"""Online serving for O2-SiteRec: precomputed embeddings, micro-batching,
hot-swappable snapshots.

The training-side model re-runs the full multi-graph propagation on every
``predict`` call; this package separates the expensive, query-independent
representation building from the cheap per-request scoring:

* :class:`ModelSnapshot` -- runs propagation once and freezes per-period
  embeddings + head weights; scoring is a gather + small matmuls and is
  bit-for-bit identical to ``O2SiteRec.predict``.
* :class:`RecommendationService` -- top-k query API with candidate
  filters, an LRU+TTL score cache, a micro-batching request queue and
  atomic snapshot hot swap (``service.reload``).
* ``python -m repro.serve`` -- loads a checkpoint or snapshot and serves
  a line-protocol loop or a small HTTP API.
"""

from .batching import MicroBatcher
from .cache import ScoreCache, candidate_digest
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import handle_line, make_http_handler, serve_http, serve_lines
from .service import RecommendationService
from .snapshot import ModelSnapshot

__all__ = [
    "ModelSnapshot",
    "RecommendationService",
    "MicroBatcher",
    "ScoreCache",
    "candidate_digest",
    "ServiceMetrics",
    "LatencyHistogram",
    "handle_line",
    "serve_lines",
    "serve_http",
    "make_http_handler",
]
