"""Micro-batching request queue for the recommendation service.

Concurrent callers submit (region, type) pair blocks and receive futures.
Worker threads drain the queue: the first request opens a batch, then the
worker keeps collecting until either ``max_batch_size`` requests are in
hand or ``batch_window_s`` has elapsed, concatenates everything into one
pair array, runs a single vectorised scoring pass, and splits the scores
back out to each caller's future.  Under concurrent load this turns N
per-request scoring passes into one, which is where the throughput of
``repro.serve`` comes from (numpy also releases the GIL inside the large
matmuls, so workers overlap with callers).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional

import numpy as np

_SENTINEL = object()


class _Request:
    __slots__ = ("pairs", "future", "enqueued_at")

    def __init__(self, pairs: np.ndarray, enqueued_at: float) -> None:
        self.pairs = pairs
        self.future: "Future[np.ndarray]" = Future()
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Batches concurrent scoring requests into shared vectorised passes.

    ``score_fn`` maps a ``(K, 2)`` pair array to ``(K,)`` scores.  Metrics
    (optional) receive per-stage latencies (``queue``, ``score``) and the
    counters ``batches`` / ``batched_requests`` / ``batched_pairs``.
    """

    def __init__(
        self,
        score_fn: Callable[[np.ndarray], np.ndarray],
        *,
        max_batch_size: int = 32,
        batch_window_s: float = 0.002,
        num_workers: int = 1,
        metrics=None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._score_fn = score_fn
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self._metrics = metrics
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._run, name=f"repro-serve-worker-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    def submit(self, pairs: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue a pair block; the future resolves to its score vector."""
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        request = _Request(
            np.asarray(pairs, dtype=np.int64), time.monotonic()
        )
        self._queue.put(request)
        return request.future

    def score(self, pairs: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(pairs).result(timeout=timeout)

    def close(self) -> None:
        """Stop the workers after the queue drains."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _collect(self, first: "_Request") -> List["_Request"]:
        """Gather a batch starting from ``first`` (window + size caps)."""
        batch = [first]
        deadline = time.monotonic() + self.batch_window_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                # Not ours to consume mid-batch: hand it back for the
                # outer loop (possibly of another worker).
                self._queue.put(_SENTINEL)
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            batch = self._collect(item)
            started = time.monotonic()
            if self._metrics is not None:
                for request in batch:
                    self._metrics.observe(
                        "queue", started - request.enqueued_at
                    )
            pairs = (
                batch[0].pairs
                if len(batch) == 1
                else np.concatenate([r.pairs for r in batch], axis=0)
            )
            try:
                scores = np.asarray(self._score_fn(pairs))
            except Exception as exc:  # propagate to every caller
                for request in batch:
                    request.future.set_exception(exc)
                continue
            elapsed = time.monotonic() - started
            if self._metrics is not None:
                self._metrics.observe("score", elapsed)
                self._metrics.increment("batches")
                self._metrics.increment("batched_requests", len(batch))
                self._metrics.increment("batched_pairs", len(pairs))
            offset = 0
            for request in batch:
                n = len(request.pairs)
                request.future.set_result(scores[offset:offset + n])
                offset += n
