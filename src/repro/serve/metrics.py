"""Serving instrumentation: latency histograms, counters, QPS.

Everything is thread-safe (one lock per object) and allocation-light so it
can sit on the hot path.  Histograms use fixed log-spaced buckets from 1 µs
to 10 s -- percentile queries return the upper bound of the bucket the
requested rank falls in, the usual monitoring-system semantics.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

# 4 buckets per decade, 1e-6 s .. 10 s (then +inf).  Shared-memory
# histograms in repro.serve.workers mirror exactly these bounds so
# per-worker and fleet-aggregated percentiles are comparable.
BUCKET_BOUNDS = tuple(
    10.0 ** (-6 + i / 4.0) for i in range(4 * 7 + 1)
)
_BUCKET_BOUNDS = BUCKET_BOUNDS


class LatencyHistogram:
    """Fixed-bucket latency histogram over seconds."""

    def __init__(self) -> None:
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        idx = bisect.bisect_left(_BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds

    def percentile(self, p: float) -> float:
        """Latency (seconds) at percentile ``p`` in [0, 100]."""
        with self._lock:
            if not self.count:
                return 0.0
            rank = p / 100.0 * self.count
            cumulative = 0
            for i, n in enumerate(self._counts):
                cumulative += n
                if cumulative >= rank and n:
                    if i < len(_BUCKET_BOUNDS):
                        return _BUCKET_BOUNDS[i]
                    return self.max
            return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "max_ms": self.max * 1e3,
        }


class ServiceMetrics:
    """Counters + per-stage latency histograms + a sliding QPS window."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        qps_window_s: float = 60.0,
        sink=None,
    ) -> None:
        # ``sink`` (anything with increment/observe, e.g. the shared-
        # memory SharedServiceStats of repro.serve.workers) receives a
        # mirror of every recording, so a worker process can keep cheap
        # local histograms while the fleet aggregates across processes.
        self._sink = sink
        self._clock = clock or time.monotonic
        self._qps_window_s = qps_window_s
        self._started = self._clock()
        self._request_times: deque = deque()
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        self.histogram(stage).observe(seconds)
        if self._sink is not None:
            self._sink.observe(stage, seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount
        if self._sink is not None:
            self._sink.increment(name, amount)

    def mark_request(self) -> None:
        now = self._clock()
        with self._lock:
            self._request_times.append(now)
            cutoff = now - self._qps_window_s
            while self._request_times and self._request_times[0] < cutoff:
                self._request_times.popleft()

    # -- reading --------------------------------------------------------
    def histogram(self, stage: str) -> LatencyHistogram:
        with self._lock:
            hist = self._histograms.get(stage)
            if hist is None:
                hist = self._histograms[stage] = LatencyHistogram()
            return hist

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def qps(self) -> float:
        """Requests per second over the sliding window."""
        now = self._clock()
        with self._lock:
            cutoff = now - self._qps_window_s
            while self._request_times and self._request_times[0] < cutoff:
                self._request_times.popleft()
            if not self._request_times:
                return 0.0
            span = now - self._request_times[0]
            if span <= 0.0:
                return float(len(self._request_times))
            return len(self._request_times) / span

    def uptime_s(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> Dict[str, object]:
        """A point-in-time view of everything, for ``service.stats()``."""
        with self._lock:
            counters = dict(self._counters)
            stages = list(self._histograms.items())
        return {
            "uptime_s": self.uptime_s(),
            "qps": self.qps(),
            "counters": counters,
            "latency": {stage: hist.summary() for stage, hist in stages},
        }
