"""LRU + TTL cache for candidate-set score vectors.

Keys are ``(snapshot_id, store_type, candidate-set digest)`` -- including
the snapshot id means entries computed against an old model can never be
served after a hot swap, even if the service forgot to clear the cache.
Values are the raw score vectors (numpy arrays) aligned with the candidate
order, so any ``k`` can be answered from one cached entry.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np


def candidate_digest(candidates: np.ndarray) -> str:
    """Stable digest of a candidate-region array (order-sensitive)."""
    data = np.ascontiguousarray(candidates, dtype=np.int64)
    return hashlib.sha1(data.tobytes()).hexdigest()[:16]


class ScoreCache:
    """Thread-safe LRU cache whose entries also expire after ``ttl_s``.

    ``max_entries=0`` disables storage entirely (every ``get`` misses),
    which benchmarks use to measure the uncached path.
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_s: float = 300.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._clock = clock or time.monotonic
        self._data: "OrderedDict[Hashable, Tuple[float, np.ndarray]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires_at, value = entry
            if self._clock() >= expires_at:
                del self._data[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: np.ndarray) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._data[key] = (self._clock() + self.ttl_s, value)
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
