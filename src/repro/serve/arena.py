"""Zero-copy snapshot arena: a single-file mmap container for serving.

``ModelSnapshot.save(..., format="npz")`` writes a zip archive that a
loader must decompress, copy into fresh buffers and re-fingerprint -- cost
proportional to the snapshot size, paid again in *every* worker process.
The arena is the deployment-grade alternative: one flat file holding

* an 8-byte magic + fixed little-endian header length,
* a JSON header (snapshot metadata, the precomputed fingerprint, and an
  array table of ``name -> dtype/shape/offset/nbytes``), and
* the raw C-contiguous bytes of every parameter array, each segment
  aligned to 64 bytes.

Retrieval-index state (:mod:`repro.serve.index`) rides in the same
container as additional ``index__``-prefixed segments plus an ``index``
key in the header metadata -- an indexed arena opens exactly like a plain
one (zero copies, ~zero extra open cost) and hot-swaps with its snapshot
as one atomic unit.  :func:`arena_segments` lists the table for
inspection.

:func:`open_arena` memory-maps the file read-only and hands
:class:`~repro.serve.snapshot.ModelSnapshot` views straight into the map:
no bytes are copied, no hash is recomputed (the fingerprint rides in the
header), so opening is O(milliseconds) regardless of snapshot size --
and when N pre-forked workers open the same arena, the OS page cache
backs all of them with **one** physical copy of the embeddings.

Scores from an arena-backed snapshot are bit-for-bit identical to the
``.npz`` path: the arrays hold the same bytes and the scoring code never
branches on the backing store (``tests/test_serve_scale.py`` pins this).

Writes publish atomically (temp file + ``os.replace``) so a snapshot
being exported can never be observed half-written by a worker fleet.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from .snapshot import ModelSnapshot, PathLike

ARENA_MAGIC = b"O2ARENA\x01"
_ALIGN = 64
_LEN_STRUCT = struct.Struct("<Q")


def _arena_path(path: PathLike) -> Path:
    path = Path(path)
    if path.suffix != ".arena":
        path = path.with_name(path.name + ".arena")
    return path


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def is_arena_file(path: PathLike) -> bool:
    """True when ``path`` exists and starts with the arena magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(ARENA_MAGIC)) == ARENA_MAGIC
    except OSError:
        return False


def save_raw_arena(
    arrays: Dict[str, np.ndarray],
    meta: dict,
    path: PathLike,
    *,
    extra_header: Union[dict, None] = None,
    durable: bool = True,
) -> Path:
    """Write named arrays + JSON-able metadata as one arena file.

    The generic writer under :func:`save_arena`, also used directly by the
    sharded-propagation executor (:mod:`repro.core.shard`) to publish
    read-only feature tables that forked workers ``mmap`` instead of
    unpickling.  ``extra_header`` entries are merged into the top-level
    JSON header (the snapshot path stores ``snapshot_id`` there).  The
    write is atomic (temp file + ``os.replace``); ``durable=False`` skips
    the ``fsync`` for scratch arenas whose lifetime is one propagate call
    -- crash consistency is irrelevant there and the sync would stall the
    round on metropolis-sized tables.
    """
    path = Path(path)
    arrays = {
        name: np.ascontiguousarray(array) for name, array in arrays.items()
    }
    table: Dict[str, dict] = {}
    offset = 0  # relative to the (aligned) start of the data section
    for name, array in arrays.items():
        offset = _align(offset)
        table[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
        }
        offset += array.nbytes
    payload = {"meta": meta, "arrays": table}
    if extra_header:
        payload.update(extra_header)
    header = json.dumps(payload).encode("utf-8")
    data_start = _align(len(ARENA_MAGIC) + _LEN_STRUCT.size + len(header))

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as out:
            out.write(ARENA_MAGIC)
            out.write(_LEN_STRUCT.pack(len(header)))
            out.write(header)
            for name, array in arrays.items():
                out.seek(data_start + table[name]["offset"])
                out.write(array.tobytes())
            # Zero-byte segments (e.g. a flat index's empty inverted
            # lists) can leave their offsets past EOF -- a seek with no
            # write does not extend the file.  Truncate up so every table
            # entry is in bounds.
            out.truncate(data_start + offset)
            out.flush()
            if durable:
                os.fsync(out.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def save_arena(snapshot: ModelSnapshot, path: PathLike) -> Path:
    """Write ``snapshot`` as an arena file; returns the (suffixed) path."""
    return save_raw_arena(
        snapshot._array_payload(),
        snapshot._meta_payload(),
        _arena_path(path),
        extra_header={"snapshot_id": snapshot.snapshot_id},
    )


def read_arena_header(path: PathLike) -> Tuple[dict, int]:
    """The parsed JSON header and the data-section start offset."""
    with open(path, "rb") as handle:
        magic = handle.read(len(ARENA_MAGIC))
        if magic != ARENA_MAGIC:
            raise ValueError(f"{path} is not an O2-SiteRec snapshot arena")
        (header_len,) = _LEN_STRUCT.unpack(handle.read(_LEN_STRUCT.size))
        header = json.loads(handle.read(header_len).decode("utf-8"))
    data_start = _align(len(ARENA_MAGIC) + _LEN_STRUCT.size + header_len)
    return header, data_start


def arena_segments(path: PathLike) -> Dict[str, dict]:
    """The arena's array table: ``name -> dtype/shape/offset/nbytes``.

    Pure header read (no data pages touched).  Index segments are the
    entries whose name starts with ``index__``; summing their ``nbytes``
    gives the on-disk cost of the retrieval stage.
    """
    header, _ = read_arena_header(path)
    return dict(header["arrays"])


def open_raw_arena(path: PathLike) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Open an arena as ``(header, arrays)`` views into one shared mmap.

    The generic reader under :func:`open_arena`; nothing is copied, and
    when N forked workers open the same file the OS page cache backs them
    all with one physical copy of the data.
    """
    path = Path(path)
    header, data_start = read_arena_header(path)
    buffer = np.memmap(path, dtype=np.uint8, mode="r")
    arrays: Dict[str, np.ndarray] = {}
    for name, entry in header["arrays"].items():
        start = data_start + int(entry["offset"])
        end = start + int(entry["nbytes"])
        if end > buffer.shape[0]:
            raise ValueError(f"{path}: truncated arena (array {name!r})")
        arrays[name] = (
            buffer[start:end]
            .view(np.dtype(entry["dtype"]))
            .reshape(entry["shape"])
        )
    return header, arrays


def open_arena(
    path: PathLike, *, verify: bool = False
) -> ModelSnapshot:
    """Open an arena as a :class:`ModelSnapshot` backed by one mmap.

    The returned snapshot's arrays are read-only views into a shared
    memory map; nothing is copied and (unless ``verify``) nothing beyond
    the header is even paged in until scoring touches it.  ``verify``
    recomputes the parameter fingerprint and fails loudly on mismatch --
    useful after transfering an arena between hosts.
    """
    header, arrays = open_raw_arena(path)
    snapshot = ModelSnapshot._from_payload(
        header["meta"], arrays, snapshot_id=header["snapshot_id"]
    )
    if verify and snapshot._fingerprint() != header["snapshot_id"]:
        raise ValueError(f"{path}: fingerprint mismatch (corrupt arena?)")
    return snapshot


def convert_snapshot(
    source: PathLike, dest: Union[PathLike, None] = None, *, verify: bool = True
) -> Path:
    """Migrate a snapshot file to the arena format (``convert`` CLI).

    ``dest`` defaults to the source path with an ``.arena`` suffix.  The
    write is atomic, and by default the fresh arena is re-opened and
    fingerprint-verified before returning.
    """
    snapshot = ModelSnapshot.load(source)
    if dest is None:
        source_path = Path(source)
        stem = (
            source_path.with_suffix("")
            if source_path.suffix == ".npz"
            else source_path
        )
        dest = stem.with_name(stem.name + ".arena")
    written = save_arena(snapshot, dest)
    if verify:
        open_arena(written, verify=True)
    return written
