"""The online recommendation service: cache + micro-batching + hot swap.

``RecommendationService`` owns a :class:`~repro.serve.snapshot.ModelSnapshot`
and answers top-k site queries:

* scores come from an LRU+TTL :class:`~repro.serve.cache.ScoreCache` when a
  (snapshot, type, candidate-set) combination repeats, otherwise from the
  :class:`~repro.serve.batching.MicroBatcher`, which merges concurrent
  callers into one vectorised scoring pass;
* :meth:`reload` atomically swaps in a new snapshot -- queries already in
  flight finish against whichever snapshot the scoring pass picked up, new
  queries see the new one, and cache keys include the snapshot id so stale
  scores can never be served;
* :meth:`stats` exposes per-stage latency histograms, QPS and cache/batch
  counters for operations.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.ranking import Recommendation
from ..topk import top_k_indices
from .batching import MicroBatcher
from .cache import ScoreCache, candidate_digest
from .metrics import ServiceMetrics
from .snapshot import ModelSnapshot, PathLike


class RecommendationService:
    """Serve top-k store-site recommendations from a frozen snapshot."""

    def __init__(
        self,
        snapshot: ModelSnapshot,
        *,
        default_k: int = 3,
        per_type_k: Optional[Dict[int, int]] = None,
        max_batch_size: int = 32,
        batch_window_ms: float = 2.0,
        num_workers: int = 2,
        cache_entries: int = 512,
        cache_ttl_s: float = 300.0,
        query_timeout_s: float = 30.0,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if default_k < 1:
            raise ValueError("default_k must be >= 1")
        self._snapshot = snapshot
        self.default_k = default_k
        self.per_type_k = dict(per_type_k or {})
        self.query_timeout_s = query_timeout_s
        self._reload_lock = threading.Lock()
        # Worker processes pass metrics wired to shared-memory counters so
        # the parent can aggregate fleet-wide stats (repro.serve.workers).
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache = ScoreCache(max_entries=cache_entries, ttl_s=cache_ttl_s)
        self._batcher = MicroBatcher(
            self._score_batch,
            max_batch_size=max_batch_size,
            batch_window_s=batch_window_ms / 1e3,
            num_workers=num_workers,
            metrics=self.metrics,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls, path: PathLike, dataset, split=None, **kwargs
    ) -> "RecommendationService":
        """Build a service straight from a ``save_model`` checkpoint."""
        return cls(ModelSnapshot.from_checkpoint(path, dataset, split), **kwargs)

    @classmethod
    def from_snapshot_file(cls, path: PathLike, **kwargs) -> "RecommendationService":
        """Build a service from a dataset-free ``ModelSnapshot.save`` file."""
        return cls(ModelSnapshot.load(path), **kwargs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> ModelSnapshot:
        """The currently deployed snapshot."""
        return self._snapshot

    def _score_batch(self, pairs: np.ndarray) -> np.ndarray:
        # One reference read: every pair in this batch scores against the
        # same snapshot even if a reload lands mid-pass.
        return self._snapshot.predict(pairs)

    def _resolve_candidates(
        self,
        snapshot: ModelSnapshot,
        candidate_regions: Optional[Sequence[int]],
        exclude_regions: Optional[Sequence[int]],
    ) -> np.ndarray:
        if candidate_regions is None:
            candidates = snapshot.candidate_regions()
        else:
            candidates = np.asarray(list(candidate_regions), dtype=np.int64)
        if exclude_regions is not None:
            dropped = set(int(r) for r in exclude_regions)
            candidates = np.asarray(
                [r for r in candidates if int(r) not in dropped], dtype=np.int64
            )
        if len(candidates) == 0:
            raise ValueError("no candidate regions to rank")
        return candidates

    def scores(
        self,
        store_type: Union[str, int],
        candidate_regions: Optional[Sequence[int]] = None,
        *,
        exclude_regions: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Raw score vector for one type over the candidate regions.

        Cached on (snapshot id, type, candidate digest); misses go through
        the micro-batcher.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        snapshot = self._snapshot
        store_type_idx = snapshot.type_index(store_type)
        candidates = self._resolve_candidates(
            snapshot, candidate_regions, exclude_regions
        )
        key = (snapshot.snapshot_id, store_type_idx, candidate_digest(candidates))
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            return cached
        self.metrics.increment("cache_misses")
        pairs = np.stack(
            [
                candidates,
                np.full(len(candidates), store_type_idx, dtype=np.int64),
            ],
            axis=1,
        )
        scores = self._batcher.score(pairs, timeout=self.query_timeout_s)
        self.cache.put(key, scores)
        return scores

    def query(
        self,
        store_type: Union[str, int],
        candidate_regions: Optional[Sequence[int]] = None,
        k: Optional[int] = None,
        *,
        exclude_regions: Optional[Sequence[int]] = None,
        min_score: Optional[float] = None,
    ) -> List[Recommendation]:
        """Top-k site recommendations for ``store_type``.

        ``candidate_regions`` defaults to every servable region;
        ``exclude_regions`` filters candidates (e.g. regions with an
        existing franchise); ``k`` falls back to the per-type default and
        then to ``default_k``; ``min_score`` drops candidates below a
        score floor.
        """
        started = time.monotonic()
        snapshot = self._snapshot
        store_type_idx = snapshot.type_index(store_type)
        if k is None:
            k = self.per_type_k.get(store_type_idx, self.default_k)
        if k < 1:
            raise ValueError("k must be >= 1")
        candidates = self._resolve_candidates(
            snapshot, candidate_regions, exclude_regions
        )
        scores = self.scores(store_type_idx, candidates)
        # Partial sort: only the k winners are ordered (identical to the
        # stable full argsort, duplicate-score tie-break included).
        order = top_k_indices(scores, min(k, len(candidates)))
        results: List[Recommendation] = []
        for i in order:
            score = float(scores[i])
            if min_score is not None and score < min_score:
                break  # scores are sorted descending
            results.append(
                Recommendation(
                    region=int(candidates[i]),
                    store_type=store_type_idx,
                    predicted_orders=score * snapshot.target_scale,
                    score=score,
                )
            )
            if len(results) == k:
                break
        self.metrics.mark_request()
        self.metrics.increment("queries")
        self.metrics.observe("total", time.monotonic() - started)
        return results

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def reload(
        self, source: Union[ModelSnapshot, PathLike]
    ) -> ModelSnapshot:
        """Atomically deploy a new snapshot (instance or ``.npz`` file).

        In-flight queries keep the snapshot their scoring pass captured;
        the swap itself is a single reference assignment, so no query ever
        observes a half-loaded model.  Returns the deployed snapshot.
        """
        if isinstance(source, ModelSnapshot):
            snapshot = source
        else:
            snapshot = ModelSnapshot.load(source)
        with self._reload_lock:
            self._snapshot = snapshot
            # Keys embed the snapshot id, so old entries could never hit;
            # clearing just releases their memory promptly.
            self.cache.clear()
            self.metrics.increment("reloads")
        return snapshot

    def reload_checkpoint(
        self, path: PathLike, dataset, split=None
    ) -> ModelSnapshot:
        """Hot-swap from a model checkpoint (needs the training dataset)."""
        return self.reload(ModelSnapshot.from_checkpoint(path, dataset, split))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Point-in-time service health: latency, QPS, cache, snapshot."""
        report = self.metrics.snapshot()
        report["pid"] = os.getpid()
        report["cache"] = self.cache.stats()
        report["snapshot"] = {
            "id": self._snapshot.snapshot_id,
            "store_nodes": self._snapshot.num_store_nodes,
            "types": self._snapshot.num_types,
            "periods": self._snapshot.num_periods,
            "embedding_dim": self._snapshot.embedding_dim,
        }
        report["batching"] = {
            "max_batch_size": self._batcher.max_batch_size,
            "batch_window_ms": self._batcher.batch_window_s * 1e3,
        }
        return report

    def close(self) -> None:
        """Drain and stop the worker threads."""
        if not self._closed:
            self._closed = True
            self._batcher.close()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
