"""The online recommendation service: retrieval + cache + batching + hot swap.

``RecommendationService`` owns a :class:`~repro.serve.snapshot.ModelSnapshot`
and answers top-k site queries:

* when the snapshot carries a retrieval index (:mod:`repro.serve.index`)
  and the query ranks the default candidate set, a **retrieve-then-rank**
  pass runs first: the index pulls the top-M candidate positions in
  sub-millisecond time and only the survivors reach the exact scorer
  (``O2_SERVE_INDEX=0`` or ``use_index=False`` forces the full scan;
  explicitly supplied candidates always take the exact path);
* scores come from an LRU+TTL :class:`~repro.serve.cache.ScoreCache` when a
  (snapshot, type, candidate-set) combination repeats, otherwise from the
  :class:`~repro.serve.batching.MicroBatcher`, which merges concurrent
  callers into one vectorised scoring pass;
* :meth:`reload` atomically swaps in a new snapshot -- the swap is one
  reference assignment, a query whose scoring pass straddles it retries
  against the new generation (so every response ranks with ONE
  snapshot's candidates, index and scores -- never a torn mix), and
  cache keys include the snapshot id so stale scores can never be
  served;
* :meth:`stats` exposes per-stage latency histograms, QPS, cache/batch and
  retrieval counters for operations.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.ranking import Recommendation
from ..runtime import env_str
from ..topk import top_k_indices
from .batching import MicroBatcher
from .cache import ScoreCache, candidate_digest
from .index import MIN_RERANK
from .metrics import ServiceMetrics
from .snapshot import ModelSnapshot, PathLike


def _env_use_index() -> Optional[bool]:
    """The ``O2_SERVE_INDEX`` toggle: 0/off -> False, 1/on -> True,
    auto/unset -> None (use the index whenever the snapshot has one)."""
    raw = env_str("O2_SERVE_INDEX", "auto")
    if raw in ("0", "off", "false", "no"):
        return False
    if raw in ("1", "on", "true", "yes"):
        return True
    return None


class _CandidateResolver:
    """Per-snapshot-generation candidate machinery, built once per deploy.

    The pre-index service rebuilt the dropped-region filter with a python
    loop on *every* request; this precomputes, per snapshot generation,
    the base candidate array and a dense region-id -> position lookup so
    ``exclude_regions`` becomes a vectorised mask build -- shared by the
    no-index full scan and the retrieval path (which needs positions, not
    ids).  Holding the snapshot reference here keeps a query's snapshot,
    candidates and index coherent across a concurrent hot swap: readers
    grab one resolver reference and never mix generations.
    """

    __slots__ = ("snapshot", "base", "_lookup")

    def __init__(self, snapshot: ModelSnapshot) -> None:
        self.snapshot = snapshot
        self.base = snapshot.candidate_regions()  # one copy per generation
        self._lookup: Optional[np.ndarray] = None
        if self.base.size:
            span = int(self.base.max()) + 1
            # Region ids are grid indices in practice; only fall back to
            # np.isin when the id space is far sparser than the set.
            if 0 <= span <= max(4 * self.base.size, 1024):
                lookup = np.full(span, -1, dtype=np.int64)
                lookup[self.base] = np.arange(self.base.size, dtype=np.int64)
                self._lookup = lookup

    def keep_mask(
        self, exclude_regions: Optional[Sequence[int]]
    ) -> Optional[np.ndarray]:
        """Boolean keep-mask over base positions, or None for keep-all."""
        if exclude_regions is None:
            return None
        exclude = np.asarray(list(exclude_regions), dtype=np.int64)
        mask = np.ones(self.base.size, dtype=bool)
        if exclude.size == 0:
            return mask
        if self._lookup is not None:
            exclude = exclude[(exclude >= 0) & (exclude < self._lookup.size)]
            positions = self._lookup[exclude]
            mask[positions[positions >= 0]] = False
        else:
            mask[np.isin(self.base, exclude)] = False
        return mask


class RecommendationService:
    """Serve top-k store-site recommendations from a frozen snapshot."""

    def __init__(
        self,
        snapshot: ModelSnapshot,
        *,
        default_k: int = 3,
        per_type_k: Optional[Dict[int, int]] = None,
        max_batch_size: int = 32,
        batch_window_ms: float = 2.0,
        num_workers: int = 2,
        cache_entries: int = 512,
        cache_ttl_s: float = 300.0,
        query_timeout_s: float = 30.0,
        metrics: Optional[ServiceMetrics] = None,
        use_index: Optional[bool] = None,
        retrieve_m: Optional[int] = None,
        nprobe: Optional[int] = None,
    ) -> None:
        if default_k < 1:
            raise ValueError("default_k must be >= 1")
        self.default_k = default_k
        self.per_type_k = dict(per_type_k or {})
        self.query_timeout_s = query_timeout_s
        # None -> O2_SERVE_INDEX env, which itself defaults to "auto"
        # (retrieve whenever the deployed snapshot carries an index).
        self.use_index = _env_use_index() if use_index is None else use_index
        self.retrieve_m = retrieve_m
        self.nprobe = nprobe
        self._resolver = _CandidateResolver(snapshot)
        self._reload_lock = threading.Lock()
        # Worker processes pass metrics wired to shared-memory counters so
        # the parent can aggregate fleet-wide stats (repro.serve.workers).
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache = ScoreCache(max_entries=cache_entries, ttl_s=cache_ttl_s)
        self._batcher = MicroBatcher(
            self._score_batch,
            max_batch_size=max_batch_size,
            batch_window_s=batch_window_ms / 1e3,
            num_workers=num_workers,
            metrics=self.metrics,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls, path: PathLike, dataset, split=None, **kwargs
    ) -> "RecommendationService":
        """Build a service straight from a ``save_model`` checkpoint."""
        return cls(ModelSnapshot.from_checkpoint(path, dataset, split), **kwargs)

    @classmethod
    def from_snapshot_file(cls, path: PathLike, **kwargs) -> "RecommendationService":
        """Build a service from a dataset-free ``ModelSnapshot.save`` file."""
        return cls(ModelSnapshot.load(path), **kwargs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> ModelSnapshot:
        """The currently deployed snapshot."""
        return self._resolver.snapshot

    def _score_batch(self, pairs: np.ndarray) -> np.ndarray:
        # One reference read: every pair in this batch scores against the
        # same snapshot even if a reload lands mid-pass.  A query whose
        # batch landed on the other side of a swap detects the generation
        # change and retries (see _stable_scores).
        return self._resolver.snapshot.predict(pairs)

    def _resolve_candidates(
        self,
        resolver: _CandidateResolver,
        candidate_regions: Optional[Sequence[int]],
        exclude_regions: Optional[Sequence[int]],
    ) -> np.ndarray:
        if candidate_regions is None:
            mask = resolver.keep_mask(exclude_regions)
            candidates = (
                resolver.base if mask is None else resolver.base[mask]
            )
        else:
            candidates = np.asarray(list(candidate_regions), dtype=np.int64)
            if exclude_regions is not None:
                exclude = np.asarray(list(exclude_regions), dtype=np.int64)
                if exclude.size:
                    candidates = candidates[~np.isin(candidates, exclude)]
        if len(candidates) == 0:
            raise ValueError("no candidate regions to rank")
        return candidates

    def _retrieve(
        self,
        resolver: _CandidateResolver,
        store_type_idx: int,
        exclude_regions: Optional[Sequence[int]],
        k: int,
    ) -> np.ndarray:
        """Retrieval stage: index top-M positions -> candidate region ids.

        The rerank batch is clamped to ``max(k, MIN_RERANK)`` rows: below
        ~8 rows BLAS switches kernels and subset scores stop being
        bitwise identical to the full-scan pass (see repro.serve.index).
        """
        index = resolver.snapshot.index
        keep = resolver.keep_mask(exclude_regions)
        if keep is not None and not keep.any():
            raise ValueError("no candidate regions to rank")
        m = index.retrieve_m if self.retrieve_m is None else self.retrieve_m
        m = max(int(m), k, MIN_RERANK)
        started = time.monotonic()
        positions = index.search(
            store_type_idx, m, nprobe=self.nprobe, keep=keep
        )
        self.metrics.observe("retrieve", time.monotonic() - started)
        self.metrics.increment("retrievals")
        return resolver.base[positions]

    def _scores_for(
        self,
        snapshot: ModelSnapshot,
        store_type_idx: int,
        candidates: np.ndarray,
    ) -> np.ndarray:
        key = (snapshot.snapshot_id, store_type_idx, candidate_digest(candidates))
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            return cached
        self.metrics.increment("cache_misses")
        pairs = np.stack(
            [
                candidates,
                np.full(len(candidates), store_type_idx, dtype=np.int64),
            ],
            axis=1,
        )
        scores = self._batcher.score(pairs, timeout=self.query_timeout_s)
        self.cache.put(key, scores)
        return scores

    def _stable_scores(self, store_type, resolve):
        """(resolver, type idx, candidates, scores) -- ONE generation.

        ``resolve`` maps (resolver, store_type_idx) to the candidate
        array.  The scoring batch reads the service's *current* snapshot,
        so a hot swap landing between candidate resolution and the
        scoring pass could mix generations (candidates picked by the old
        index, scores from the new model).  Rather than serve that torn
        ranking, detect the generation change after scoring and retry
        against the new resolver -- swaps are rare, so the loop almost
        always runs once.
        """
        while True:
            resolver = self._resolver
            snapshot = resolver.snapshot
            store_type_idx = snapshot.type_index(store_type)
            candidates = resolve(resolver, store_type_idx)
            scores = self._scores_for(snapshot, store_type_idx, candidates)
            if self._resolver is resolver:
                return resolver, store_type_idx, candidates, scores

    def scores(
        self,
        store_type: Union[str, int],
        candidate_regions: Optional[Sequence[int]] = None,
        *,
        exclude_regions: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Raw score vector for one type over the candidate regions.

        Always the exact full pass over the resolved candidates (no
        retrieval pruning).  Cached on (snapshot id, type, candidate
        digest); misses go through the micro-batcher.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        _, _, _, scores = self._stable_scores(
            store_type,
            lambda resolver, _idx: self._resolve_candidates(
                resolver, candidate_regions, exclude_regions
            ),
        )
        return scores

    def _index_active(self, snapshot: ModelSnapshot) -> bool:
        return snapshot.index is not None and self.use_index is not False

    def query(
        self,
        store_type: Union[str, int],
        candidate_regions: Optional[Sequence[int]] = None,
        k: Optional[int] = None,
        *,
        exclude_regions: Optional[Sequence[int]] = None,
        min_score: Optional[float] = None,
    ) -> List[Recommendation]:
        """Top-k site recommendations for ``store_type``.

        ``candidate_regions`` defaults to every servable region;
        ``exclude_regions`` filters candidates (e.g. regions with an
        existing franchise); ``k`` falls back to the per-type default and
        then to ``default_k``; ``min_score`` drops candidates below a
        score floor.

        When the snapshot carries a retrieval index and no explicit
        candidate list is given, the index prunes the candidate set to
        its top-M before the exact re-rank.  Explicit candidates always
        take the exact path (counted as ``retrieval_fallbacks``).
        """
        started = time.monotonic()
        if k is not None and k < 1:
            raise ValueError("k must be >= 1")

        def wanted_k(store_type_idx: int) -> int:
            if k is not None:
                return k
            got = self.per_type_k.get(store_type_idx, self.default_k)
            if got < 1:
                raise ValueError("k must be >= 1")
            return got

        def resolve(resolver: _CandidateResolver, store_type_idx: int):
            if self._index_active(resolver.snapshot):
                if candidate_regions is None:
                    return self._retrieve(
                        resolver,
                        store_type_idx,
                        exclude_regions,
                        wanted_k(store_type_idx),
                    )
                self.metrics.increment("retrieval_fallbacks")
            return self._resolve_candidates(
                resolver, candidate_regions, exclude_regions
            )

        resolver, store_type_idx, candidates, scores = self._stable_scores(
            store_type, resolve
        )
        snapshot = resolver.snapshot
        k = wanted_k(store_type_idx)
        # Partial sort: only the k winners are ordered (identical to the
        # stable full argsort, duplicate-score tie-break included).
        order = top_k_indices(scores, min(k, len(candidates)))
        results: List[Recommendation] = []
        for i in order:
            score = float(scores[i])
            if min_score is not None and score < min_score:
                break  # scores are sorted descending
            results.append(
                Recommendation(
                    region=int(candidates[i]),
                    store_type=store_type_idx,
                    predicted_orders=score * snapshot.target_scale,
                    score=score,
                )
            )
            if len(results) == k:
                break
        self.metrics.mark_request()
        self.metrics.increment("queries")
        self.metrics.observe("total", time.monotonic() - started)
        return results

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def reload(
        self, source: Union[ModelSnapshot, PathLike]
    ) -> ModelSnapshot:
        """Atomically deploy a new snapshot (instance or ``.npz`` file).

        In-flight queries keep the snapshot their scoring pass captured;
        the swap itself is a single reference assignment, so no query ever
        observes a half-loaded model.  Returns the deployed snapshot.
        """
        if isinstance(source, ModelSnapshot):
            snapshot = source
        else:
            snapshot = ModelSnapshot.load(source)
        # Built outside the lock (it scans the snapshot once).  The
        # resolver holds the snapshot, so publishing it is ONE reference
        # assignment -- readers grab a resolver and see a coherent
        # (snapshot, candidates, index) triple either side of the swap,
        # never a torn mix of generations.
        resolver = _CandidateResolver(snapshot)
        with self._reload_lock:
            self._resolver = resolver
            # Keys embed the snapshot id, so old entries could never hit;
            # clearing just releases their memory promptly.
            self.cache.clear()
            self.metrics.increment("reloads")
        return snapshot

    def reload_checkpoint(
        self, path: PathLike, dataset, split=None
    ) -> ModelSnapshot:
        """Hot-swap from a model checkpoint (needs the training dataset)."""
        return self.reload(ModelSnapshot.from_checkpoint(path, dataset, split))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Point-in-time service health: latency, QPS, cache, snapshot."""
        deployed = self._resolver.snapshot
        report = self.metrics.snapshot()
        report["pid"] = os.getpid()
        report["cache"] = self.cache.stats()
        report["snapshot"] = {
            "id": deployed.snapshot_id,
            "store_nodes": deployed.num_store_nodes,
            "types": deployed.num_types,
            "periods": deployed.num_periods,
            "embedding_dim": deployed.embedding_dim,
        }
        report["batching"] = {
            "max_batch_size": self._batcher.max_batch_size,
            "batch_window_ms": self._batcher.batch_window_s * 1e3,
        }
        # Why grid-tile sharding is (not) engaged in this process: surfaced
        # here so operators can tell a deliberate dense run from a silently
        # missed gate (e.g. reference kernels forced on, grid too small).
        from ..core.shard import shard_gate_reason, shard_train_gate_reason

        report["shard"] = {
            "gate_reason": shard_gate_reason(),
            "train_gate_reason": shard_train_gate_reason(),
        }
        index = deployed.index
        if index is None:
            report["index"] = {"present": False, "active": False}
        else:
            report["index"] = {
                "present": True,
                "active": self._index_active(deployed),
                **index.describe(),
            }
            if self.retrieve_m is not None:
                report["index"]["retrieve_m"] = int(self.retrieve_m)
            if self.nprobe is not None:
                report["index"]["nprobe"] = int(self.nprobe)
        return report

    def close(self) -> None:
        """Drain and stop the worker threads."""
        if not self._closed:
            self._closed = True
            self._batcher.close()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
