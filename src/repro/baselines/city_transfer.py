"""CityTransfer baseline [17] (matrix factorisation + feature regression).

CityTransfer recommends chain-store sites with an SVD-style factorisation of
the (region x type) rating matrix augmented by a linear regression on
context features.  Per the paper's setup we discard the inter-city transfer
module (single-city setting) and keep the core:

``score(s, a) = u_s . v_a + w . x_sa + b_s + b_a + mu``
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from ..nn import Embedding, Linear, Parameter, init
from ..tensor import Tensor, gather_rows
from .base import SiteRecBaseline


class CityTransfer(SiteRecBaseline):
    """MF over store regions x types with a context-feature regressor."""

    name = "CityTransfer"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
        latent_dim: int = 16,
    ) -> None:
        super().__init__(dataset, split, setting)
        num_regions = dataset.num_regions
        self.region_factors = Embedding(num_regions, latent_dim)
        self.type_factors = Embedding(dataset.num_types, latent_dim)
        self.region_bias = Embedding(num_regions, 1, std=0.01)
        self.type_bias = Embedding(dataset.num_types, 1, std=0.01)
        self.global_bias = Parameter(np.zeros(1), name="mu")
        self.feature_head = Linear(self.features.dim, 1, bias=False)

    def score(self, pairs: np.ndarray) -> Tensor:
        pairs = np.asarray(pairs, dtype=np.int64)
        regions, types = pairs[:, 0], pairs[:, 1]
        u = self.region_factors(regions)
        v = self.type_factors(types)
        interaction = (u * v).sum(axis=1)
        feats = self.feature_head(Tensor(self.features(pairs))).squeeze(1)
        bias = self.region_bias(regions).squeeze(1) + self.type_bias(types).squeeze(1)
        return interaction + feats + bias + self.global_bias
