"""Geo-spotting-style feature baseline [12] (extra, beyond Table III).

Karamshuk et al.'s Geo-spotting mines geographic and mobility features of
candidate locations and ranks them with supervised learners; the strongest
reported variant uses tree ensembles.  We reproduce that recipe with our
from-scratch gradient-boosted trees over the same per-pair feature vectors
the other baselines use -- a pure feature-based, graph-free reference
point.  Not part of the paper's Table III (kept in ``EXTRA_BASELINES``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from ..ml import GradientBoostedTrees
from ..tensor import Tensor
from .base import SiteRecBaseline


class GeoSpotting(SiteRecBaseline):
    """Gradient-boosted trees over per-pair context features."""

    name = "Geo-spotting"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
        n_estimators: int = 120,
        max_depth: int = 3,
        learning_rate: float = 0.08,
    ) -> None:
        super().__init__(dataset, split, setting)
        self.model = GradientBoostedTrees(
            n_estimators=n_estimators,
            max_depth=max_depth,
            learning_rate=learning_rate,
            subsample=0.8,
        )
        self._fitted = False

    # Tree models do not use the gradient Trainer: fit() is direct.
    def fit(self, pairs: np.ndarray, targets: np.ndarray) -> "GeoSpotting":
        features = self.features(np.asarray(pairs, dtype=np.int64))
        # One-hot the store type so trees can specialise per category.
        types = np.asarray(pairs, dtype=np.int64)[:, 1]
        onehot = np.eye(self.dataset.num_types)[types]
        self.model.fit(
            np.concatenate([features, onehot], axis=1),
            np.asarray(targets, dtype=np.float64),
        )
        self._fitted = True
        return self

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit before predict")
        pairs = np.asarray(pairs, dtype=np.int64)
        features = self.features(pairs)
        onehot = np.eye(self.dataset.num_types)[pairs[:, 1]]
        return self.model.predict(np.concatenate([features, onehot], axis=1))

    def score(self, pairs: np.ndarray) -> Tensor:  # pragma: no cover
        # Provided for interface completeness; trees are not differentiable.
        return Tensor(self.predict(pairs))
