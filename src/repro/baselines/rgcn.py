"""RGCN baseline [30] (relational graph convolutional network).

The first GNN to model multi-relational graphs: per relation ``r`` a
dedicated weight matrix transforms incoming messages, which are mean
normalised and summed over relations with a self-loop term:

``h_i^{l+1} = relu(W_0 h_i^l + sum_r (1/|N_i^r|) sum_{j in N_i^r} W_r h_j^l)``

Applied to the (period-merged) region-type heterogeneous graph with six
directed relations (S-U, U-S, U-A, A-U, S-A, A-S); a per-pair MLP decodes
(store-region, type) scores.  RGCN uses neither edge attributes nor
attention -- the gap the paper's comparison highlights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from ..nn import MLP, Embedding, Linear, Module, ModuleList
from ..tensor import Tensor, concat, gather_rows, segment_mean
from .base import MergedHeteroGraph, SiteRecBaseline

# (name, src kind, dst kind); kinds: s=store-region, u=customer-region, a=type
RELATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("u->s", "u", "s"),
    ("s->u", "s", "u"),
    ("a->u", "a", "u"),
    ("u->a", "u", "a"),
    ("s->a", "s", "a"),
    ("a->s", "a", "s"),
)


def relation_edges(graph: MergedHeteroGraph) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Edge index arrays (src, dst) for each directed relation."""
    return {
        "u->s": (graph.su_src_u, graph.su_dst_s),
        "s->u": (graph.su_dst_s, graph.su_src_u),
        "a->u": (graph.ua_src_a, graph.ua_dst_u),
        "u->a": (graph.ua_dst_u, graph.ua_src_a),
        "s->a": (graph.sa_src_s, graph.sa_dst_a),
        "a->s": (graph.sa_dst_a, graph.sa_src_s),
    }


class _RGCNLayer(Module):
    """One relational convolution over the three node kinds."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        self.rel_weights = {name: Linear(dim, dim, bias=False) for name, _, _ in RELATIONS}
        self.self_weights = {kind: Linear(dim, dim) for kind in ("s", "u", "a")}

    def forward(self, nodes: Dict[str, Tensor], edges) -> Dict[str, Tensor]:
        incoming: Dict[str, List[Tensor]] = {k: [] for k in nodes}
        for name, src_kind, dst_kind in RELATIONS:
            src_idx, dst_idx = edges[name]
            if len(src_idx) == 0:
                continue
            messages = self.rel_weights[name](gather_rows(nodes[src_kind], src_idx))
            agg = segment_mean(messages, dst_idx, nodes[dst_kind].shape[0])
            incoming[dst_kind].append(agg)
        out = {}
        for kind, h in nodes.items():
            total = self.self_weights[kind](h)
            for msg in incoming[kind]:
                total = total + msg
            out[kind] = total.relu()
        return out


class RGCN(SiteRecBaseline):
    """Relational GCN over the merged region-type heterogeneous graph."""

    name = "RGCN"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
        latent_dim: int = 24,
        num_layers: int = 2,
    ) -> None:
        super().__init__(dataset, split, setting)
        graph = self._merged_graph()
        self.graph = graph
        self._edges = relation_edges(graph)
        self._graph_store_index = {
            int(r): i for i, r in enumerate(graph.store_regions)
        }

        self.store_embedding = Embedding(graph.num_store_nodes, latent_dim)
        self.customer_embedding = Embedding(graph.num_customer_nodes, latent_dim)
        self.type_embedding = Embedding(dataset.num_types, latent_dim)
        if setting == "adaption":
            feat_dim = graph.store_features.shape[1]
            self.fuse_s: Optional[Linear] = Linear(latent_dim + feat_dim, latent_dim)
            self.fuse_u: Optional[Linear] = Linear(latent_dim + feat_dim, latent_dim)
        else:
            self.fuse_s = None
            self.fuse_u = None
        self.layers = ModuleList(_RGCNLayer(latent_dim) for _ in range(num_layers))
        decoder_in = 2 * latent_dim + (self.features.dim if setting == "adaption" else 0)
        self.decoder = MLP(decoder_in, [latent_dim], 1)

    def _node_embeddings(self):
        nodes = {
            "s": self.store_embedding(),
            "u": self.customer_embedding(),
            "a": self.type_embedding(),
        }
        if self.fuse_s is not None:
            nodes["s"] = self.fuse_s(
                concat([nodes["s"], Tensor(self.graph.store_features)], axis=1)
            ).relu()
            nodes["u"] = self.fuse_u(
                concat([nodes["u"], Tensor(self.graph.customer_features)], axis=1)
            ).relu()
        for layer in self.layers:
            nodes = layer(nodes, self._edges)
        return nodes

    def score(self, pairs: np.ndarray) -> Tensor:
        pairs = np.asarray(pairs, dtype=np.int64)
        nodes = self._node_embeddings()
        s_idx = np.array(
            [self._graph_store_index[int(r)] for r in pairs[:, 0]], dtype=np.int64
        )
        parts = [
            gather_rows(nodes["s"], s_idx),
            gather_rows(nodes["a"], pairs[:, 1]),
        ]
        if self.setting == "adaption":
            parts.append(Tensor(self.features(pairs)))
        return self.decoder(concat(parts, axis=1)).squeeze(1)
