"""BL-G-CoSVD baseline [15] (collective SVD for shop-type recommendation).

Yu et al. recommend shop types for a location by co-factorising the
(region x type) rating matrix together with a (region x feature) side
matrix, sharing the region factors:

``R ~ U V^T``  and  ``F ~ U W^T``,  loss = MSE(R) + lambda * MSE(F).

The shared reconstruction pushes context information into the region
factors, the defining mechanism of the method.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from ..nn import Embedding, Linear, Parameter
from ..optim import mse_loss
from ..tensor import Tensor, gather_rows
from .base import SiteRecBaseline


class BLGCoSVD(SiteRecBaseline):
    """Collective SVD with a feature co-reconstruction objective."""

    name = "BL-G-CoSVD"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
        latent_dim: int = 16,
        side_weight: float = 0.3,
    ) -> None:
        super().__init__(dataset, split, setting)
        self.side_weight = side_weight
        self.region_factors = Embedding(dataset.num_regions, latent_dim)
        self.type_factors = Embedding(dataset.num_types, latent_dim)
        self.region_bias = Embedding(dataset.num_regions, 1, std=0.01)
        self.type_bias = Embedding(dataset.num_types, 1, std=0.01)
        # Side matrix: region geographic features (plus adaption extras
        # folded in through the per-pair feature builder's region block).
        self._side_matrix = self._build_side_matrix()
        self.side_head = Linear(latent_dim, self._side_matrix.shape[1], bias=False)

    def _build_side_matrix(self) -> np.ndarray:
        ds = self.dataset
        blocks = [ds.region_features]
        if self.setting == "adaption":
            prefs = ds.preference_features
            blocks.append(prefs / max(prefs.max(), 1.0))
            blocks.append(ds.delivery_time_feature[:, None])
        return np.concatenate(blocks, axis=1)

    def score(self, pairs: np.ndarray) -> Tensor:
        pairs = np.asarray(pairs, dtype=np.int64)
        regions, types = pairs[:, 0], pairs[:, 1]
        u = self.region_factors(regions)
        v = self.type_factors(types)
        return (
            (u * v).sum(axis=1)
            + self.region_bias(regions).squeeze(1)
            + self.type_bias(types).squeeze(1)
        )

    def loss(self, pairs: np.ndarray, targets: np.ndarray):
        predictions = self.score(pairs)
        o2 = mse_loss(predictions, targets)
        # Co-reconstruction of the side matrix rows touched by this batch.
        regions = np.unique(np.asarray(pairs, dtype=np.int64)[:, 0])
        u = self.region_factors(regions)
        reconstructed = self.side_head(u)
        side = mse_loss(reconstructed, Tensor(self._side_matrix[regions]))
        total = o2 + side * self.side_weight
        return total, float(o2.data), float(side.data)
