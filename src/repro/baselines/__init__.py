"""Baseline models (Section IV-A5) with Original/Adaption settings."""

from typing import Callable, Dict

from .base import (
    MergedHeteroGraph,
    PairFeatureBuilder,
    SiteRecBaseline,
    merge_hetero_graph,
)
from .city_transfer import CityTransfer
from .cosvd import BLGCoSVD
from .gcmc import GCMC
from .geospotting import GeoSpotting
from .graphrec import GraphRec
from .hgt import HGT
from .rgcn import RGCN

# Factory registry in the paper's table order.
BASELINE_REGISTRY: Dict[str, Callable] = {
    "CityTransfer": CityTransfer,
    "BL-G-CoSVD": BLGCoSVD,
    "GC-MC": GCMC,
    "GraphRec": GraphRec,
    "RGCN": RGCN,
    "HGT": HGT,
}

# Additional reference models outside the paper's Table III.
EXTRA_BASELINES: Dict[str, Callable] = {
    "Geo-spotting": GeoSpotting,
}

__all__ = [
    "SiteRecBaseline",
    "PairFeatureBuilder",
    "MergedHeteroGraph",
    "merge_hetero_graph",
    "CityTransfer",
    "BLGCoSVD",
    "GCMC",
    "GraphRec",
    "RGCN",
    "HGT",
    "GeoSpotting",
    "BASELINE_REGISTRY",
    "EXTRA_BASELINES",
]
