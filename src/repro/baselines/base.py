"""Shared baseline infrastructure.

Every baseline implements ``fit``/``predict`` over (region, type) pairs and
supports the paper's two settings (Section IV-A5):

* **original** -- the features of the baseline's own paper: geographic and
  commercial context only;
* **adaption** -- plus O2O-specific features: the customer-preference vector
  of the 2 km neighbourhood, the region's average delivery time (courier
  capacity proxy) and location features.

Graph baselines operate on a period-merged ("flattened") view of the
region-type heterogeneous multi-graph: they have no notion of the
multi-graph's time semantics -- which is precisely the modelling gap the
paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.periods import TimePeriod
from ..data.split import InteractionSplit
from ..graphs.hetero import RegionTypeHeteroMultiGraph, build_hetero_multigraph
from ..nn import Module
from ..optim import mse_loss
from ..tensor import Tensor

SETTINGS = ("original", "adaption")


def validate_setting(setting: str) -> str:
    if setting not in SETTINGS:
        raise ValueError(f"setting must be one of {SETTINGS}, got {setting!r}")
    return setting


class PairFeatureBuilder:
    """Builds per-(region, type) feature vectors for a setting."""

    def __init__(self, dataset: SiteRecDataset, setting: str) -> None:
        self.dataset = dataset
        self.setting = validate_setting(setting)
        self._location = self._location_features(dataset)

    @staticmethod
    def _location_features(dataset: SiteRecDataset) -> np.ndarray:
        grid = dataset.grid
        rows, cols = np.divmod(np.arange(grid.num_regions), grid.cols)
        center_dist = np.array(
            [grid.distance_from_center(r) for r in range(grid.num_regions)]
        )
        peak = max(center_dist.max(), 1.0)
        return np.stack(
            [rows / max(grid.rows - 1, 1), cols / max(grid.cols - 1, 1), center_dist / peak],
            axis=1,
        )

    @property
    def dim(self) -> int:
        base = self.dataset.region_features.shape[1] + 2
        if self.setting == "adaption":
            base += 6
        return base

    def __call__(self, pairs: np.ndarray) -> np.ndarray:
        """Feature matrix ``(K, dim)`` for (region, type) pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        regions, types = pairs[:, 0], pairs[:, 1]
        ds = self.dataset
        blocks = [
            ds.region_features[regions],
            ds.commercial[regions, types],  # (K, 2)
        ]
        if self.setting == "adaption":
            prefs = ds.preference_features
            pref_sa = prefs[regions, types][:, None]
            pref_total = prefs[regions].sum(axis=1, keepdims=True)
            pref_total = pref_total / max(prefs.sum(axis=1).max(), 1.0)
            dt = ds.delivery_time_feature[regions][:, None]
            blocks += [pref_sa, pref_total, dt, self._location[regions]]
        return np.concatenate(blocks, axis=1)


@dataclass(frozen=True)
class MergedHeteroGraph:
    """Period-union of the hetero multi-graph (for single-graph baselines)."""

    store_regions: np.ndarray
    customer_regions: np.ndarray
    num_types: int
    store_features: np.ndarray
    customer_features: np.ndarray
    sa_src_s: np.ndarray
    sa_dst_a: np.ndarray
    sa_attr: np.ndarray
    su_src_u: np.ndarray
    su_dst_s: np.ndarray
    su_attr: np.ndarray  # (E, 2) mean distance, summed transactions
    ua_src_a: np.ndarray
    ua_dst_u: np.ndarray
    ua_attr: np.ndarray  # (E, 1) summed transactions

    @property
    def num_store_nodes(self) -> int:
        return len(self.store_regions)

    @property
    def num_customer_nodes(self) -> int:
        return len(self.customer_regions)


def merge_hetero_graph(multi: RegionTypeHeteroMultiGraph) -> MergedHeteroGraph:
    """Union the per-period subgraphs, aggregating duplicate edges."""
    su: Dict[Tuple[int, int], list] = {}
    ua: Dict[Tuple[int, int], float] = {}
    for period in TimePeriod:
        sg = multi.subgraph(period)
        for u, s, attr in zip(sg.su_src_u, sg.su_dst_s, sg.su_attr):
            key = (int(u), int(s))
            if key in su:
                su[key][0].append(attr[0])
                su[key][1] += attr[1]
            else:
                su[key] = [[attr[0]], attr[1]]
        for a, u, attr in zip(sg.ua_src_a, sg.ua_dst_u, sg.ua_attr):
            key = (int(a), int(u))
            ua[key] = ua.get(key, 0.0) + float(attr[0])

    su_items = sorted(su.items())
    ua_items = sorted(ua.items())
    su_src = np.array([k[0] for k, _ in su_items], dtype=np.int64)
    su_dst = np.array([k[1] for k, _ in su_items], dtype=np.int64)
    su_attr = np.array(
        [[float(np.mean(v[0])), float(v[1])] for _, v in su_items]
    ).reshape(-1, 2)
    ua_src = np.array([k[0] for k, _ in ua_items], dtype=np.int64)
    ua_dst = np.array([k[1] for k, _ in ua_items], dtype=np.int64)
    ua_attr = np.array([[v] for _, v in ua_items]).reshape(-1, 1)

    return MergedHeteroGraph(
        store_regions=multi.store_regions,
        customer_regions=multi.customer_regions,
        num_types=multi.num_types,
        store_features=multi.store_features,
        customer_features=multi.customer_features,
        sa_src_s=multi.sa_src_s,
        sa_dst_a=multi.sa_dst_a,
        sa_attr=multi.sa_attr,
        su_src_u=su_src,
        su_dst_s=su_dst,
        su_attr=su_attr,
        ua_src_a=ua_src,
        ua_dst_u=ua_dst,
        ua_attr=ua_attr,
    )


class SiteRecBaseline(Module):
    """Base class: pair-indexing, joint loss plumbing and prediction."""

    name = "baseline"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
    ) -> None:
        super().__init__()
        self.dataset = dataset
        self.split = split
        self.setting = validate_setting(setting)
        self.features = PairFeatureBuilder(dataset, setting)
        self._store_index = {int(r): i for i, r in enumerate(dataset.store_regions)}

    # -- shared helpers -----------------------------------------------------
    def _pair_indices(self, pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        pairs = np.asarray(pairs, dtype=np.int64)
        s_idx = np.array([self._store_index[int(r)] for r in pairs[:, 0]])
        return s_idx, pairs[:, 1]

    def _merged_graph(self) -> MergedHeteroGraph:
        multi = build_hetero_multigraph(self.dataset, split=self.split)
        return merge_hetero_graph(multi)

    # -- model protocol -------------------------------------------------------
    def score(self, pairs: np.ndarray) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def forward(self, pairs: np.ndarray) -> Tensor:
        return self.score(pairs)

    def loss(self, pairs: np.ndarray, targets: np.ndarray):
        predictions = self.score(pairs)
        o2 = mse_loss(predictions, targets)
        return o2, float(o2.data), 0.0

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        was_training = self.training
        self.eval()
        try:
            return self.score(pairs).numpy().copy()
        finally:
            if was_training:
                self.train()
