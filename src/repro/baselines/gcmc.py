"""GC-MC baseline [29] (graph convolutional matrix completion).

A bipartite graph between store regions and store types, with the observed
*training* interactions as edges (weighted by the observed order count).
One graph-convolution pass with symmetric degree normalisation produces
node embeddings; a dense layer and a bilinear decoder complete the model.
In the adaption setting, node inputs are fused with the O2O context
features.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from ..nn import Embedding, Linear, Parameter, init
from ..tensor import Tensor, concat, gather_rows, segment_sum
from .base import SiteRecBaseline


class GCMC(SiteRecBaseline):
    """Graph convolution over the observed (region, type) rating graph."""

    name = "GC-MC"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
        latent_dim: int = 24,
    ) -> None:
        super().__init__(dataset, split, setting)
        self.latent_dim = latent_dim
        num_regions = dataset.num_regions
        self.region_embedding = Embedding(num_regions, latent_dim)
        self.type_embedding = Embedding(dataset.num_types, latent_dim)
        if setting == "adaption":
            feat_dim = dataset.region_features.shape[1] + dataset.num_types + 1
            self.region_fuse: Optional[Linear] = Linear(
                latent_dim + feat_dim, latent_dim
            )
            self._region_feats = np.concatenate(
                [
                    dataset.region_features,
                    dataset.preference_features
                    / max(dataset.preference_features.max(), 1.0),
                    dataset.delivery_time_feature[:, None],
                ],
                axis=1,
            )
        else:
            self.region_fuse = None
            self._region_feats = None
        self.conv_region = Linear(latent_dim, latent_dim)
        self.conv_type = Linear(latent_dim, latent_dim)
        self.dense_region = Linear(2 * latent_dim, latent_dim)
        self.dense_type = Linear(2 * latent_dim, latent_dim)
        self.decoder = Parameter(
            np.eye(latent_dim) + init.normal((latent_dim, latent_dim), std=0.05),
            name="bilinear",
        )
        self._edges: Optional[tuple] = None

    # ------------------------------------------------------------------
    def set_training_edges(self, pairs: np.ndarray, targets: np.ndarray) -> None:
        """Register the observed rating edges (called by ``fit`` harness)."""
        pairs = np.asarray(pairs, dtype=np.int64)
        weights = np.asarray(targets, dtype=np.float64) + 0.05  # keep zeros alive
        regions, types = pairs[:, 0], pairs[:, 1]
        deg_r = np.bincount(regions, minlength=self.dataset.num_regions).astype(
            np.float64
        )
        deg_t = np.bincount(types, minlength=self.dataset.num_types).astype(
            np.float64
        )
        norm = 1.0 / np.sqrt(
            np.maximum(deg_r[regions], 1.0) * np.maximum(deg_t[types], 1.0)
        )
        self._edges = (regions, types, weights * norm)

    def _node_embeddings(self):
        h = self.region_embedding()
        if self.region_fuse is not None:
            h = self.region_fuse(concat([h, Tensor(self._region_feats)], axis=1)).relu()
        q = self.type_embedding()
        if self._edges is None:
            raise RuntimeError("call set_training_edges before scoring GC-MC")
        regions, types, weights = self._edges
        w = Tensor(weights[:, None])
        msg_to_region = segment_sum(
            gather_rows(q, types) * w, regions, self.dataset.num_regions
        )
        msg_to_type = segment_sum(
            gather_rows(h, regions) * w, types, self.dataset.num_types
        )
        h_conv = self.conv_region(msg_to_region).relu()
        q_conv = self.conv_type(msg_to_type).relu()
        h_out = self.dense_region(concat([h, h_conv], axis=1)).relu()
        q_out = self.dense_type(concat([q, q_conv], axis=1)).relu()
        return h_out, q_out

    def score(self, pairs: np.ndarray) -> Tensor:
        pairs = np.asarray(pairs, dtype=np.int64)
        h, q = self._node_embeddings()
        hs = gather_rows(h, pairs[:, 0])
        qa = gather_rows(q, pairs[:, 1])
        return ((hs @ self.decoder) * qa).sum(axis=1)

    def loss(self, pairs: np.ndarray, targets: np.ndarray):
        if self._edges is None:
            self.set_training_edges(pairs, targets)
        return super().loss(pairs, targets)
