"""HGT baseline [31] (heterogeneous graph transformer).

The paper's strongest baseline.  Per the HGT design, each node *type* gets
its own key/query/value projections and each *relation* gets attention and
message matrices plus a learned priority:

``att(j -> i) = softmax_j( (K(j) W_att^r Q(i)) * mu_r / sqrt(d) )``
``msg(j)      = V(j) W_msg^r``
``h_i'        = A_type( sum_j att * msg ) + h_i``

Multi-head, two layers, over the merged region-type heterogeneous graph.
HGT attends over node content but is blind to edge attributes and to the
multi-graph's time structure -- the two gaps O2-SiteRec targets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from ..nn import MLP, Embedding, Linear, Module, ModuleList, Parameter, init
from ..tensor import Tensor, concat, gather_rows, segment_softmax, segment_sum
from .base import SiteRecBaseline
from .rgcn import RELATIONS, relation_edges

NODE_KINDS = ("s", "u", "a")


class _HGTLayer(Module):
    """One heterogeneous graph transformer layer."""

    def __init__(self, dim: int, num_heads: int = 4) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by {num_heads} heads")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.dim = dim
        self.k_proj = {k: Linear(dim, dim, bias=False) for k in NODE_KINDS}
        self.q_proj = {k: Linear(dim, dim, bias=False) for k in NODE_KINDS}
        self.v_proj = {k: Linear(dim, dim, bias=False) for k in NODE_KINDS}
        self.a_proj = {k: Linear(dim, dim) for k in NODE_KINDS}
        self.w_att = {
            name: Parameter(
                np.eye(self.head_dim) + init.normal((self.head_dim, self.head_dim), 0.05),
                name=f"w_att_{name}",
            )
            for name, _, _ in RELATIONS
        }
        self.w_msg = {
            name: Parameter(
                np.eye(self.head_dim) + init.normal((self.head_dim, self.head_dim), 0.05),
                name=f"w_msg_{name}",
            )
            for name, _, _ in RELATIONS
        }
        self.priority = {
            name: Parameter(np.ones(1), name=f"mu_{name}") for name, _, _ in RELATIONS
        }
        self.scale = 1.0 / np.sqrt(self.head_dim)

    def forward(self, nodes: Dict[str, Tensor], edges) -> Dict[str, Tensor]:
        keys = {k: self._split(self.k_proj[k](h)) for k, h in nodes.items()}
        queries = {k: self._split(self.q_proj[k](h)) for k, h in nodes.items()}
        values = {k: self._split(self.v_proj[k](h)) for k, h in nodes.items()}

        incoming: Dict[str, List[Tensor]] = {k: [] for k in nodes}
        for name, src_kind, dst_kind in RELATIONS:
            src_idx, dst_idx = edges[name]
            num_edges = len(src_idx)
            if num_edges == 0:
                continue
            num_dst = nodes[dst_kind].shape[0]
            k_e = gather_rows(keys[src_kind], src_idx)  # (E, H, hd)
            q_e = gather_rows(queries[dst_kind], dst_idx)
            v_e = gather_rows(values[src_kind], src_idx)

            k_att = (
                k_e.reshape(num_edges * self.num_heads, self.head_dim)
                @ self.w_att[name]
            ).reshape(num_edges, self.num_heads, self.head_dim)
            scores = (k_att * q_e).sum(axis=2) * self.scale
            scores = scores * self.priority[name]
            alpha = segment_softmax(scores, dst_idx, num_dst)

            msg = (
                v_e.reshape(num_edges * self.num_heads, self.head_dim)
                @ self.w_msg[name]
            ).reshape(num_edges, self.num_heads, self.head_dim)
            weighted = (msg * alpha.expand_dims(2)).reshape(num_edges, self.dim)
            incoming[dst_kind].append(segment_sum(weighted, dst_idx, num_dst))

        out = {}
        for kind, h in nodes.items():
            if incoming[kind]:
                total = incoming[kind][0]
                for msg in incoming[kind][1:]:
                    total = total + msg
                out[kind] = self.a_proj[kind](total.relu()).relu() + h
            else:
                out[kind] = h
        return out

    def _split(self, t: Tensor) -> Tensor:
        n = t.shape[0]
        return t.reshape(n, self.num_heads, self.head_dim)


class HGT(SiteRecBaseline):
    """Heterogeneous graph transformer over the merged hetero graph."""

    name = "HGT"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
        latent_dim: int = 24,
        num_layers: int = 2,
        num_heads: int = 4,
    ) -> None:
        super().__init__(dataset, split, setting)
        graph = self._merged_graph()
        self.graph = graph
        self._edges = relation_edges(graph)
        self._graph_store_index = {
            int(r): i for i, r in enumerate(graph.store_regions)
        }

        self.store_embedding = Embedding(graph.num_store_nodes, latent_dim)
        self.customer_embedding = Embedding(graph.num_customer_nodes, latent_dim)
        self.type_embedding = Embedding(dataset.num_types, latent_dim)
        if setting == "adaption":
            feat_dim = graph.store_features.shape[1]
            self.fuse_s: Optional[Linear] = Linear(latent_dim + feat_dim, latent_dim)
            self.fuse_u: Optional[Linear] = Linear(latent_dim + feat_dim, latent_dim)
        else:
            self.fuse_s = None
            self.fuse_u = None
        self.layers = ModuleList(
            _HGTLayer(latent_dim, num_heads) for _ in range(num_layers)
        )
        decoder_in = 2 * latent_dim + (self.features.dim if setting == "adaption" else 0)
        self.decoder = MLP(decoder_in, [latent_dim], 1)

    def _node_embeddings(self):
        nodes = {
            "s": self.store_embedding(),
            "u": self.customer_embedding(),
            "a": self.type_embedding(),
        }
        if self.fuse_s is not None:
            nodes["s"] = self.fuse_s(
                concat([nodes["s"], Tensor(self.graph.store_features)], axis=1)
            ).relu()
            nodes["u"] = self.fuse_u(
                concat([nodes["u"], Tensor(self.graph.customer_features)], axis=1)
            ).relu()
        for layer in self.layers:
            nodes = layer(nodes, self._edges)
        return nodes

    def score(self, pairs: np.ndarray) -> Tensor:
        pairs = np.asarray(pairs, dtype=np.int64)
        nodes = self._node_embeddings()
        s_idx = np.array(
            [self._graph_store_index[int(r)] for r in pairs[:, 0]], dtype=np.int64
        )
        parts = [
            gather_rows(nodes["s"], s_idx),
            gather_rows(nodes["a"], pairs[:, 1]),
        ]
        if self.setting == "adaption":
            parts.append(Tensor(self.features(pairs)))
        return self.decoder(concat(parts, axis=1)).squeeze(1)
