"""GraphRec baseline [28] (graph neural network for social recommendation).

GraphRec models users from two spaces -- an *item space* (attention over
the user's rated items with opinion embeddings) and a *social space*
(attention over the user's friends) -- and models items from their
interacting users.  Following the paper's adaptation, the social graph is
replaced by the store-region / customer-region bipartite subgraph of the
region-type heterogeneous graph:

* "users"   = store regions, "items" = store types;
* item-space aggregation over the observed *training* (s, a) interactions,
  with the order count as the opinion;
* social-space aggregation over S-U edges, where each customer-region
  neighbour is itself embedded from its U-A preferences.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from ..nn import MLP, Embedding, Linear, Module
from ..tensor import Tensor, concat, gather_rows, segment_softmax, segment_sum
from .base import SiteRecBaseline


class _AttentionAggregate(Module):
    """GraphRec-style attention: a two-layer MLP scores each neighbour."""

    def __init__(self, src_dim: int, dst_dim: int, out_dim: int) -> None:
        super().__init__()
        self.score_mlp = MLP(src_dim + dst_dim, [out_dim], 1)
        self.transform = Linear(src_dim, out_dim)

    def forward(self, target: Tensor, source: Tensor, src_idx, dst_idx) -> Tensor:
        num_targets = target.shape[0]
        if len(src_idx) == 0:
            return Tensor(np.zeros((num_targets, self.transform.out_features)))
        src = gather_rows(source, src_idx)
        dst = gather_rows(target, dst_idx)
        scores = self.score_mlp(concat([src, dst], axis=1)).squeeze(1)
        alpha = segment_softmax(scores, dst_idx, num_targets)
        messages = self.transform(src).relu() * alpha.expand_dims(1)
        return segment_sum(messages, dst_idx, num_targets)


class GraphRec(SiteRecBaseline):
    """Item-space + social-space attention aggregation with MLP decoder."""

    name = "GraphRec"

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        setting: str = "original",
        latent_dim: int = 24,
    ) -> None:
        super().__init__(dataset, split, setting)
        self.latent_dim = latent_dim
        graph = self._merged_graph()
        self.graph = graph

        self.store_embedding = Embedding(graph.num_store_nodes, latent_dim)
        self.customer_embedding = Embedding(graph.num_customer_nodes, latent_dim)
        self.type_embedding = Embedding(dataset.num_types, latent_dim)
        self.opinion = Linear(1, latent_dim)

        # Customer (friend) modelling from U-A preferences.
        self.friend_agg = _AttentionAggregate(latent_dim, latent_dim, latent_dim)
        # Store-region item space (types it hosts) and social space (S-U).
        self.item_agg = _AttentionAggregate(2 * latent_dim, latent_dim, latent_dim)
        self.social_agg = _AttentionAggregate(latent_dim, latent_dim, latent_dim)
        self.user_fuse = Linear(2 * latent_dim, latent_dim)
        # Item modelling: types from interacting store regions.
        self.type_agg = _AttentionAggregate(latent_dim, latent_dim, latent_dim)

        decoder_in = 2 * latent_dim + (self.features.dim if setting == "adaption" else 0)
        self.decoder = MLP(decoder_in, [latent_dim], 1)
        self._interactions: Optional[tuple] = None
        self._graph_store_index = {
            int(r): i for i, r in enumerate(graph.store_regions)
        }

    # ------------------------------------------------------------------
    def set_training_edges(self, pairs: np.ndarray, targets: np.ndarray) -> None:
        pairs = np.asarray(pairs, dtype=np.int64)
        s_idx = np.array(
            [self._graph_store_index[int(r)] for r in pairs[:, 0]], dtype=np.int64
        )
        self._interactions = (
            s_idx,
            pairs[:, 1].copy(),
            np.asarray(targets, dtype=np.float64)[:, None],
        )

    def _node_embeddings(self):
        graph = self.graph
        if self._interactions is None:
            raise RuntimeError("call set_training_edges before scoring GraphRec")
        s_idx, a_idx, ratings = self._interactions

        h0 = self.store_embedding()
        z0 = self.customer_embedding()
        q0 = self.type_embedding()

        # Friend (customer-region) embeddings from their type preferences.
        z = (
            self.friend_agg(z0, q0, graph.ua_src_a, graph.ua_dst_u) + z0
        ).relu()

        # Item-space user modelling: types + opinions over train interactions.
        opinions = self.opinion(Tensor(ratings)).relu()
        item_msgs = concat([gather_rows(q0, a_idx), opinions], axis=1)
        h_item = self.item_agg(h0, item_msgs, np.arange(len(s_idx)), s_idx)

        # Social-space user modelling over S-U edges.
        h_social = self.social_agg(h0, z, graph.su_src_u, graph.su_dst_s)
        h = self.user_fuse(concat([h_item, h_social], axis=1)).relu() + h0

        # Item modelling: types aggregate their interacting store regions.
        q = (self.type_agg(q0, h0, s_idx, a_idx) + q0).relu()
        return h, q

    def score(self, pairs: np.ndarray) -> Tensor:
        pairs = np.asarray(pairs, dtype=np.int64)
        h, q = self._node_embeddings()
        s_idx = np.array(
            [self._graph_store_index[int(r)] for r in pairs[:, 0]], dtype=np.int64
        )
        parts = [gather_rows(h, s_idx), gather_rows(q, pairs[:, 1])]
        if self.setting == "adaption":
            parts.append(Tensor(self.features(pairs)))
        return self.decoder(concat(parts, axis=1)).squeeze(1)

    def loss(self, pairs: np.ndarray, targets: np.ndarray):
        if self._interactions is None:
            self.set_training_edges(pairs, targets)
        return super().loss(pairs, targets)
