"""Grid-tile sharded propagation for metropolis-scale graphs.

At paper scale (a 14x14 region grid) one process propagates all periods in
well under a second; at metropolis scale (10k+ regions, millions of S-U
edges) the edge-sized attention kernels dominate wall-clock and run on one
core.  This module fans the node-level aggregation out over row-band tiles
of the region grid (:class:`repro.graphs.partition.GridTilePartition`) and
a :func:`repro.parallel.process_map` worker pool, while keeping the result
**bit-identical** to the single-process per-period path.

How the work is split
---------------------
Regions are laid out row-major and the store/customer node lists are sorted
by region id, so a partition into horizontal row bands makes every tile's
node set a *contiguous index range* -- and because the hetero graph builder
emits edges grouped by destination (S-U sorted by store node, U-A by
customer node, S-A by store node), each tile's owned edge set is a
contiguous slice found with two ``searchsorted`` calls.  A worker task is
one ``(tile, period)`` pair: it computes the store band's S-A and S-U
attention rows and the customer band's U-A rows, reading every operand from
two read-only mmap arenas (:func:`repro.serve.arena.save_raw_arena`):

* the **static arena**, written once per propagate call: edge endpoint and
  attribute arrays, per-layer fusion/key weights, and the (table-sized)
  capacity projections;
* the **round arena**, written once per layer: the source-side projections
  ``pre`` and the bilinear-folded queries ``q_we`` for every period --
  node-table matmuls stay on the master, whose full-matrix results are
  bitwise reproducible by construction.

Workers are forked, so the arenas cost no serialization: the OS page cache
backs every worker with one physical copy of the features.

Why the bytes match
-------------------
Edge-sized matmuls (the edge-attribute projection and the key projection)
are evaluated with :func:`repro.tensor.ops.matmul_blocked` in *both* the
unsharded path and the workers: fixed 4096-row blocks anchored at absolute
edge offsets, so a worker recomputing the covering blocks of its edge range
reproduces the master's bytes exactly (BLAS results vary bitwise with the
row count, so naive subset matmuls would not).  Segment reductions use the
same :class:`~repro.tensor.segment.SegmentPlan` kernels, which reduce
run-locally per segment -- a band's segments see the same edges in the same
order as the full run.  Everything node-sized (``pre``, queries, the
type-hub S-A aggregation and the per-layer state updates) runs on the
master as full-matrix operations, mirroring the autograd ops expression by
expression.

Scope: sharding is **evaluation-only** (gradients never cross process
boundaries) and engages only on the fast-kernel attention path; the
reference path, mean-aggregation ablations and dense capacity attributes
fall back to the unsharded code, as does any call inside a worker process.
:func:`shard_tiles_for` centralises the gate; ``O2_SHARD_TILES`` /
:func:`set_shard_tiles` force it (or disable it with ``0``), and past
``O2_SHARD_MIN_REGIONS`` regions (default 4096) it engages automatically.
Without a worker pool the tile tasks run as an in-process band sweep --
no arena files, no forks -- which is already markedly faster than the
monolithic path on one core: every band's edge intermediates fit in cache
instead of streaming hundreds of MB through DRAM, and the peak footprint
drops by the tile count.  ``O2_NUM_PROCS``/:func:`set_num_procs` layer
true process parallelism on top on multi-core machines.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..data.periods import TimePeriod
from ..graphs.partition import GridTilePartition, band_node_splits
from ..parallel import in_process_worker, num_procs, num_threads, process_map
from ..runtime import env_int, env_str
from ..serve.arena import open_raw_arena, save_raw_arena
from ..tensor import Tensor, fast_kernels_enabled
from ..tensor import cnative as _cnative
from ..tensor import pool as _pool
from ..tensor.ops import MATMUL_BLOCK, edge_message_value, matmul_blocked
from ..tensor.segment import get_plan

__all__ = [
    "DEFAULT_SHARD_TILES",
    "propagate_periods_sharded",
    "resolve_shard_tiles",
    "set_shard_tiles",
    "set_shard_train",
    "shard_gate_reason",
    "shard_tiles_for",
    "shard_train_enabled",
    "shard_train_gate_reason",
    "shard_train_tiles_for",
    "use_shard_tiles",
    "use_shard_train",
]

DEFAULT_SHARD_TILES = 8
_AUTO_MIN_REGIONS = 4096
_NEGATIVE_SLOPE = 0.2

_tile_override: Optional[int] = None

# Why the last shard_tiles_for / shard_train_tiles_for call said no (or
# yes): one short string each, surfaced by O2_MEM_PROFILE reports and the
# serving stats endpoint so "running dense" is always explained.
_gate_reason = "not evaluated yet"
_train_gate_reason = "not evaluated yet"


def shard_gate_reason() -> str:
    """Why the last :func:`shard_tiles_for` call engaged (or declined)."""
    return _gate_reason


def shard_train_gate_reason() -> str:
    """Why the last :func:`shard_train_tiles_for` call engaged (or declined)."""
    return _train_gate_reason


def set_shard_tiles(tiles: Optional[int]) -> Optional[int]:
    """Force the shard tile count (``<=1`` disables, ``None`` = env/auto).

    Returns the previous override.  Mirrors ``O2_SHARD_TILES``, with the
    override taking precedence.
    """
    global _tile_override
    previous = _tile_override
    _tile_override = None if tiles is None else int(tiles)
    return previous


@contextmanager
def use_shard_tiles(tiles: Optional[int]) -> Iterator[None]:
    """Scoped :func:`set_shard_tiles` (no-op when ``tiles`` is ``None``)."""
    if tiles is None:
        yield
        return
    previous = set_shard_tiles(tiles)
    try:
        yield
    finally:
        set_shard_tiles(previous)


def resolve_shard_tiles(num_regions: int) -> int:
    """Requested tile count for a ``num_regions`` grid (0 = sharding off).

    Priority: :func:`set_shard_tiles` override, then ``O2_SHARD_TILES``
    (an explicit ``0``/``off`` disables, unset defers), then the automatic
    threshold -- :data:`DEFAULT_SHARD_TILES` tiles once the grid reaches
    ``O2_SHARD_MIN_REGIONS`` regions.  The automatic path engages even
    without a worker pool: band-local evaluation keeps every intermediate
    cache-resident, which already beats the monolithic sweep on one core
    (see ``BENCH_shard.json``); a pool adds process parallelism on top.
    """
    if _tile_override is not None:
        tiles = _tile_override
    else:
        raw = env_str("O2_SHARD_TILES", "")
        if raw in ("0", "off"):
            return 0
        tiles = int(raw) if raw else 0
        if tiles <= 0:
            threshold = env_int("O2_SHARD_MIN_REGIONS", _AUTO_MIN_REGIONS)
            if num_regions >= threshold:
                tiles = DEFAULT_SHARD_TILES
    return tiles if tiles > 1 else 0


def _aggregator_gate_reason(recommender, capacity_su) -> Optional[str]:
    """Shared model-shape preconditions; ``None`` when they hold."""
    from ..nn.attention import MultiHeadSegmentAttention

    for layer in recommender.layers:
        for agg in (layer.su, layer.sa_to_s, layer.ua, layer.sa_to_a):
            if not isinstance(agg, MultiHeadSegmentAttention):
                return "non-attention aggregator (mean ablation)"
    if capacity_su is not None:
        from .recommender import CapacityEdgeFactors

        if not all(
            isinstance(cap, CapacityEdgeFactors) for cap in capacity_su.values()
        ):
            return "dense capacity edge attributes"
    return None


def _resolve_gate_tiles(grid_shape) -> Tuple[int, str]:
    rows, cols = grid_shape
    tiles = resolve_shard_tiles(rows * cols)
    if tiles:
        tiles = min(tiles, rows)
    if tiles > 1:
        return tiles, f"engaged: {tiles} row bands over a {rows}x{cols} grid"
    return 0, (
        f"grid below O2_SHARD_MIN_REGIONS ({rows * cols} regions) "
        "and no tile override"
    )


def shard_tiles_for(recommender, capacity_su=None) -> int:
    """Row-band count sharded propagation will use for this call (0 = off).

    The gate in one place: sharding needs a grid shape (attached by
    :class:`repro.core.model.O2SiteRec`), evaluation mode, the fast-kernel
    attention path, attention aggregators on every relation, factored (or
    absent) capacity edge attributes, and a process that is not itself a
    fan-out worker.  The tile count is clamped to the grid's row count so
    every band owns at least one region row.  Every exit records why in
    :func:`shard_gate_reason`.
    """
    global _gate_reason
    grid_shape = getattr(recommender, "grid_shape", None)
    if grid_shape is None:
        _gate_reason = "no grid shape attached to the recommender"
        return 0
    if recommender.training:
        _gate_reason = "training mode (eval sharding is value-only)"
        return 0
    if not fast_kernels_enabled():
        _gate_reason = "reference kernels (fast attention path off)"
        return 0
    if in_process_worker():
        _gate_reason = "inside a process_map worker (no nested fan-out)"
        return 0
    reason = _aggregator_gate_reason(recommender, capacity_su)
    if reason is not None:
        _gate_reason = reason
        return 0
    tiles, _gate_reason = _resolve_gate_tiles(grid_shape)
    return tiles


# ---------------------------------------------------------------------------
# Training gate (``O2_SHARD_TRAIN`` / ``TrainConfig.shard_train``): banded
# sharded training targets the period-batched fast path -- the repo's
# default single-process training configuration -- so it additionally
# requires that path's own preconditions (serial threads, batching on).
# ---------------------------------------------------------------------------

_train_override: Optional[bool] = None


def set_shard_train(enabled: Optional[bool]) -> Optional[bool]:
    """Force sharded training on/off (``None`` defers to ``O2_SHARD_TRAIN``).

    Returns the previous override.
    """
    global _train_override
    previous = _train_override
    _train_override = None if enabled is None else bool(enabled)
    return previous


@contextmanager
def use_shard_train(enabled: Optional[bool]) -> Iterator[None]:
    """Scoped :func:`set_shard_train` (no-op when ``enabled`` is ``None``)."""
    if enabled is None:
        yield
        return
    previous = set_shard_train(enabled)
    try:
        yield
    finally:
        set_shard_train(previous)


def shard_train_enabled() -> bool:
    """Whether banded training may engage (default on; gate still applies)."""
    if _train_override is not None:
        return _train_override
    return env_str("O2_SHARD_TRAIN", "1") not in ("0", "off")


def shard_train_tiles_for(recommender, capacity_su=None) -> int:
    """Row-band count the banded *training* step will use (0 = dense).

    Mirrors :func:`shard_tiles_for` for the training direction: the model
    must be in training mode with banded training enabled, on the
    fast-kernel path, outside any worker, with attention aggregators and
    factored (or absent) capacity attributes -- plus the period-batched
    branch conditions (``batch_periods_enabled`` and a serial thread
    count), because the banded step reproduces exactly that reference op
    sequence.  Every exit records why in :func:`shard_train_gate_reason`.
    """
    global _train_gate_reason
    if recommender is None:
        # Baseline models carry no recommender; nothing to band.
        _train_gate_reason = "no recommender (baseline model)"
        return 0
    if not recommender.training:
        _train_gate_reason = "evaluation mode (training gate)"
        return 0
    if not shard_train_enabled():
        _train_gate_reason = (
            "disabled (O2_SHARD_TRAIN=0 / TrainConfig.shard_train=False)"
        )
        return 0
    grid_shape = getattr(recommender, "grid_shape", None)
    if grid_shape is None:
        _train_gate_reason = "no grid shape attached to the recommender"
        return 0
    if not fast_kernels_enabled():
        _train_gate_reason = "reference kernels (fast attention path off)"
        return 0
    if in_process_worker():
        _train_gate_reason = "inside a process_map worker (no nested fan-out)"
        return 0
    from .recommender import batch_periods_enabled

    if not batch_periods_enabled():
        _train_gate_reason = (
            "period batching off (banded training targets the batched path)"
        )
        return 0
    if num_threads(len(TimePeriod)) > 1:
        _train_gate_reason = (
            "threaded per-period path (banded training targets the "
            "batched path)"
        )
        return 0
    reason = _aggregator_gate_reason(recommender, capacity_su)
    if reason is not None:
        _train_gate_reason = reason
        return 0
    tiles, _train_gate_reason = _resolve_gate_tiles(grid_shape)
    return tiles


# ---------------------------------------------------------------------------
# Value-level kernels (no autograd), mirroring repro.tensor.ops expression by
# expression -- any edit there that changes forward bytes must land here too.
# ---------------------------------------------------------------------------


def _attention_value(
    keys: np.ndarray,
    q_we: np.ndarray,
    ids: np.ndarray,
    num_segments: int,
    scale: float,
    att_state: Optional[dict] = None,
) -> np.ndarray:
    """Forward of :func:`repro.tensor.ops.segment_attention`, values only.

    ``att_state`` optionally receives the compiled kernel's attention
    ``weights``/``leaky`` intermediates: banded training stashes them per
    band so its backward can skip the softmax recompute (the stash holds
    the exact bytes the recompute would produce).  The stash buffers are
    caller-owned allocations so the scratch pool never recycles them.
    """
    num_edges, num_heads, head_dim = keys.shape
    out_dim = num_heads * head_dim
    plan = get_plan(ids, num_segments)
    if _cnative.available():
        q_c = np.ascontiguousarray(q_we)
        if att_state is not None:
            weights_c = np.empty((num_edges, num_heads))
            leaky_c = np.empty((num_edges, num_heads))
            agg = _pool.zeros((num_segments, out_dim), tag="c-att-agg")
            _cnative.seg_att_fwd(
                keys, q_c, plan, scale, _NEGATIVE_SLOPE,
                out=(weights_c, leaky_c, agg),
            )
            att_state["weights"] = weights_c
            att_state["leaky"] = leaky_c
        else:
            _, _, agg = _cnative.seg_att_fwd(
                keys, q_c, plan, scale, _NEGATIVE_SLOPE
            )
        return np.multiply(agg, agg > 0)
    q_edge = q_we[ids]
    scores = np.einsum("ehd,ehd->eh", keys, q_edge)
    scores = np.multiply(scores, scale)
    leaky = np.where(scores > 0, 1.0, _NEGATIVE_SLOPE)
    act = np.multiply(scores, leaky)
    sorted_scores = plan.sort(act)
    seg_max = plan.max_sorted(sorted_scores)
    spread_max = plan.spread_runs(seg_max)
    shifted = np.subtract(sorted_scores, spread_max)
    exp = np.exp(shifted)
    seg_sum = plan.sum_sorted(exp)
    spread_sum = plan.spread_runs(seg_sum)
    weights = plan.unsort(np.divide(exp, spread_sum))
    weighted = np.multiply(keys, weights[:, :, None])
    agg = plan.sum(weighted.reshape(num_edges, out_dim))
    return np.multiply(agg, agg > 0)


def _band_aggregate(
    dst: np.ndarray,
    src: np.ndarray,
    attr: np.ndarray,
    w_edge: np.ndarray,
    pre: np.ndarray,
    bias: np.ndarray,
    key_w: np.ndarray,
    q_we: np.ndarray,
    extras,
    lo: int,
    n_band: int,
    num_heads: int,
    head_dim: int,
    scale: float,
    edge_range: Optional[Tuple[int, int]] = None,
    ids: Optional[np.ndarray] = None,
    att_state: Optional[dict] = None,
) -> np.ndarray:
    """One relation's attention rows for targets ``[lo, lo + n_band)``.

    ``dst`` must be sorted ascending unless ``edge_range`` pins the edge
    window explicitly (the master passes the full range for the unsorted
    S-A type-hub direction).  The edge-attribute and key projections run
    over the *block cover* of the window -- the smallest span of absolute
    :data:`~repro.tensor.ops.MATMUL_BLOCK` blocks containing it -- so their
    bytes match the unsharded ``matmul_blocked`` output row for row.
    ``ids`` may pass the band-local segment ids (``dst[e0:e1] - lo``)
    precomputed -- banded training caches them per fit so the
    ``SegmentPlan`` identity cache hits on every step.
    """
    out_dim = num_heads * head_dim
    if n_band <= 0:
        return np.zeros((0, out_dim))
    num_edges = dst.shape[0]
    if num_edges == 0:
        return np.zeros((n_band, out_dim))
    if edge_range is None:
        e0, e1 = np.searchsorted(dst, (lo, lo + n_band))
        e0, e1 = int(e0), int(e1)
    else:
        e0, e1 = edge_range
    if e1 <= e0:
        return np.zeros((n_band, out_dim))
    b0 = (e0 // MATMUL_BLOCK) * MATMUL_BLOCK
    b1 = min(-(-e1 // MATMUL_BLOCK) * MATMUL_BLOCK, num_edges)
    eproj = matmul_blocked(attr[b0:b1], w_edge)
    idx = np.asarray(src[b0:b1], dtype=np.int64)
    extras_loc = [
        (values, np.asarray(index[b0:b1], dtype=np.int64))
        for values, index in extras
    ]
    fused = edge_message_value(pre, eproj, bias, idx, extras_loc)
    keys_flat = matmul_blocked(fused, key_w)
    keys = keys_flat[e0 - b0 : e1 - b0].reshape(e1 - e0, num_heads, head_dim)
    if ids is None:
        ids = np.asarray(dst[e0:e1], dtype=np.int64) - lo
    return _attention_value(
        keys, q_we[lo : lo + n_band], ids, n_band, scale, att_state=att_state
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

# Opened arenas keyed by path; workers are forked fresh per round, so this
# mainly amortises the open across the ~tasks/worker of one round.
_WORKER_ARENAS: Dict[str, Tuple[dict, Dict[str, np.ndarray]]] = {}

# Serial execution (no worker pool) skips the file round-trip entirely:
# the "arena" is published here and tasks read the arrays in place.  Keys
# are per-call tokens, dropped in the propagate's ``finally``.
_INPROC_ARENAS: Dict[str, Tuple[dict, Dict[str, np.ndarray]]] = {}
_inproc_serial = 0


def _worker_arena(path: str) -> Tuple[dict, Dict[str, np.ndarray]]:
    entry = _INPROC_ARENAS.get(path)
    if entry is not None:
        return entry
    entry = _WORKER_ARENAS.get(path)
    if entry is None:
        if len(_WORKER_ARENAS) >= 8:
            _WORKER_ARENAS.clear()
        entry = open_raw_arena(path)
        _WORKER_ARENAS[path] = entry
    return entry


def _publish_arena(
    arrays: Dict[str, np.ndarray], meta: dict, path: str, fanout: bool
) -> None:
    """File arena for a worker pool, in-process registry otherwise.

    Values (and therefore results) are identical either way -- the file
    round-trip only changes the memory backing the same bytes -- so the
    serial path keeps bit-identity while skipping ~hundreds of MB of
    ``write``/``mmap`` traffic per propagate at metropolis scale.
    """
    if fanout:
        save_raw_arena(arrays, meta, path, durable=False)
    else:
        _INPROC_ARENAS[path] = ({"meta": meta}, arrays)


def _shard_task(task: Tuple[str, str, int, int]):
    """One (tile, period) unit: the tile's aggregation bands for one layer."""
    static_path, round_path, tile, pi = task
    sheader, stat = _worker_arena(static_path)
    rheader, rnd = _worker_arena(round_path)
    meta = sheader["meta"]
    want_c = bool(meta["c_kernels"])
    _cnative.set_c_kernels(want_c)
    if want_c != _cnative.available():
        raise RuntimeError(
            "shard worker cannot match the master's kernel dispatch "
            "(compiled kernels unavailable in the worker process)"
        )
    num_heads = int(meta["num_heads"])
    head_dim = int(meta["head_dim"])
    scale = float(meta["scale"])
    layer = int(rheader["meta"]["layer"])
    store_splits = stat["store_splits"]
    cust_splits = stat["cust_splits"]
    s_lo, s_hi = int(store_splits[tile]), int(store_splits[tile + 1])
    u_lo, u_hi = int(cust_splits[tile]), int(cust_splits[tile + 1])

    agg_s = _band_aggregate(
        dst=stat["sa_store"],
        src=stat["sa_type"],
        attr=stat["sa_attr"],
        w_edge=stat[f"wedge_sas_{layer}"],
        pre=rnd[f"pre_sas_{pi}"],
        bias=stat[f"bias_sas_{layer}"],
        key_w=stat[f"keyw_sas_{layer}"],
        q_we=rnd[f"qwe_sas_{pi}"],
        extras=(),
        lo=s_lo,
        n_band=s_hi - s_lo,
        num_heads=num_heads,
        head_dim=head_dim,
        scale=scale,
    )
    agg_u = None
    if bool(meta["use_preferences"]):
        extras = ()
        if bool(meta["capacity_factored"]):
            extras = (
                (stat[f"capd_{layer}_{pi}"], stat[f"capdix_{pi}"]),
                (stat[f"caps_{layer}_{pi}"], stat[f"capsix_{pi}"]),
            )
        su_band = _band_aggregate(
            dst=stat[f"su_dst_{pi}"],
            src=stat[f"su_src_{pi}"],
            attr=stat[f"su_attr_{pi}"],
            w_edge=stat[f"wedge_su_{layer}"],
            pre=rnd[f"pre_su_{pi}"],
            bias=stat[f"bias_su_{layer}"],
            key_w=stat[f"keyw_su_{layer}"],
            q_we=rnd[f"qwe_su_{pi}"],
            extras=extras,
            lo=s_lo,
            n_band=s_hi - s_lo,
            num_heads=num_heads,
            head_dim=head_dim,
            scale=scale,
        )
        # Same accumulation order as the layer: sa_to_s + su.
        agg_s = np.add(agg_s, su_band)
        agg_u = _band_aggregate(
            dst=stat[f"ua_dst_{pi}"],
            src=stat[f"ua_src_{pi}"],
            attr=stat[f"ua_attr_{pi}"],
            w_edge=stat[f"wedge_ua_{layer}"],
            pre=rnd[f"pre_ua_{pi}"],
            bias=stat[f"bias_ua_{layer}"],
            key_w=stat[f"keyw_ua_{layer}"],
            q_we=rnd[f"qwe_ua_{pi}"],
            extras=(),
            lo=u_lo,
            n_band=u_hi - u_lo,
            num_heads=num_heads,
            head_dim=head_dim,
            scale=scale,
        )
    return tile, pi, agg_s, agg_u


# ---------------------------------------------------------------------------
# Master side
# ---------------------------------------------------------------------------


def _q_we_value(state: np.ndarray, agg) -> np.ndarray:
    """Bilinear-folded queries, mirroring the aggregator's fast path."""
    n = state.shape[0]
    queries = np.matmul(state, agg.query_proj.weight.data)
    flat = queries.reshape(n * agg.num_heads, agg.head_dim)
    q_we = np.matmul(flat, agg.edge_type_weight.data.T)
    return q_we.reshape(n, agg.num_heads, agg.head_dim)


def _linear_relu(x: np.ndarray, linear) -> np.ndarray:
    """``relu(x @ W + b)`` mirroring ``Linear`` + ``Tensor.relu``."""
    y = np.matmul(x, linear.weight.data)
    y = np.add(y, linear.bias.data)
    return np.multiply(y, np.greater(y, 0))


def propagate_periods_sharded(
    recommender,
    capacity_su,
    tiles: int,
    procs: Optional[int] = None,
) -> Dict[TimePeriod, Tuple[Tensor, Tensor]]:
    """Sharded evaluation of ``HeteroRecommender.propagate_periods``.

    Bit-identical to the unsharded fast per-period path (the caller routes
    here only when :func:`shard_tiles_for` says the preconditions hold).
    One worker round per layer: every round writes the node-table
    projections for all periods into a round arena, fans ``tiles x periods``
    tasks over the process pool, stitches the returned bands, then applies
    the type-hub aggregation and the per-layer state updates on the master.
    """
    graph = recommender.graph
    periods = list(TimePeriod)
    rows, cols = recommender.grid_shape
    part = GridTilePartition(rows, cols, min(int(tiles), rows), 1)
    n_tiles = part.num_tiles
    region_cuts = part.row_splits * cols
    store_splits = band_node_splits(graph.store_regions, region_cuts, "store")
    cust_splits = band_node_splits(
        graph.customer_regions, region_cuts, "customer"
    )

    d2 = recommender._d2
    use_pref = recommender.use_preferences
    cap_factored = capacity_su is not None
    agg0 = recommender.layers[0].sa_to_s

    workers = num_procs() if procs is None else max(int(procs), 0)
    fanout = workers > 1 and not in_process_worker()
    global _inproc_serial
    if fanout:
        tmpdir = tempfile.mkdtemp(prefix="o2shard-")
    else:
        _inproc_serial += 1
        tmpdir = f"o2shard-inproc-{_inproc_serial}"
    try:
        static_path = os.path.join(tmpdir, "static.arena")
        arrays: Dict[str, np.ndarray] = {
            "store_splits": store_splits,
            "cust_splits": cust_splits,
            "sa_store": graph.sa_src_s,
            "sa_type": graph.sa_dst_a,
            "sa_attr": graph.sa_attr,
        }
        for pi, period in enumerate(periods):
            sub = graph.subgraph(period)
            if use_pref:
                arrays[f"su_src_{pi}"] = sub.su_src_u
                arrays[f"su_dst_{pi}"] = sub.su_dst_s
                arrays[f"su_attr_{pi}"] = sub.su_attr
                arrays[f"ua_src_{pi}"] = sub.ua_src_a
                arrays[f"ua_dst_{pi}"] = sub.ua_dst_u
                arrays[f"ua_attr_{pi}"] = sub.ua_attr
            if cap_factored and use_pref:
                cap = capacity_su[period]
                arrays[f"capdix_{pi}"] = cap.dst_regions
                arrays[f"capsix_{pi}"] = cap.src_regions
        for li, layer in enumerate(recommender.layers):
            w_sas = layer.sa_to_s.fuse.weight.data
            arrays[f"wedge_sas_{li}"] = w_sas[d2 : d2 + 3]
            arrays[f"bias_sas_{li}"] = layer.sa_to_s.fuse.bias.data
            arrays[f"keyw_sas_{li}"] = layer.sa_to_s.key_proj.weight.data
            if use_pref:
                w_su = layer.su.fuse.weight.data
                arrays[f"wedge_su_{li}"] = w_su[d2 : d2 + 2]
                arrays[f"bias_su_{li}"] = layer.su.fuse.bias.data
                arrays[f"keyw_su_{li}"] = layer.su.key_proj.weight.data
                w_ua = layer.ua.fuse.weight.data
                arrays[f"wedge_ua_{li}"] = w_ua[d2 : d2 + 1]
                arrays[f"bias_ua_{li}"] = layer.ua.fuse.bias.data
                arrays[f"keyw_ua_{li}"] = layer.ua.key_proj.weight.data
                if cap_factored:
                    # Factored capacity blocks: table-sized projections
                    # through the fusion weight's capacity columns, in the
                    # same (dst, src) block order as _period_edges.
                    off = d2 + 2
                    for pi, period in enumerate(periods):
                        values = capacity_su[period].values.data
                        d1 = values.shape[1]
                        arrays[f"capd_{li}_{pi}"] = np.matmul(
                            values, w_su[off : off + d1]
                        )
                        arrays[f"caps_{li}_{pi}"] = np.matmul(
                            values, w_su[off + d1 : off + 2 * d1]
                        )
        meta = {
            "num_heads": agg0.num_heads,
            "head_dim": agg0.head_dim,
            "scale": agg0.scale,
            "use_preferences": use_pref,
            "capacity_factored": cap_factored,
            "c_kernels": bool(_cnative.available()),
            "tiles": n_tiles,
            "periods": len(periods),
        }
        _publish_arena(arrays, meta, static_path, fanout)

        h0, z0, q0 = recommender._fuse_base()
        states: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
            (h0.data, z0.data, q0.data) for _ in periods
        ]
        num_sa_edges = len(graph.sa_dst_a)
        for li, layer in enumerate(recommender.layers):
            round_path = os.path.join(tmpdir, f"round{li}.arena")
            round_arrays: Dict[str, np.ndarray] = {}
            for pi, (h, z, q) in enumerate(states):
                round_arrays[f"pre_sas_{pi}"] = np.matmul(
                    q, layer.sa_to_s.fuse.weight.data[:d2]
                )
                round_arrays[f"qwe_sas_{pi}"] = _q_we_value(h, layer.sa_to_s)
                if use_pref:
                    round_arrays[f"pre_su_{pi}"] = np.matmul(
                        z, layer.su.fuse.weight.data[:d2]
                    )
                    round_arrays[f"qwe_su_{pi}"] = _q_we_value(h, layer.su)
                    round_arrays[f"pre_ua_{pi}"] = np.matmul(
                        q, layer.ua.fuse.weight.data[:d2]
                    )
                    round_arrays[f"qwe_ua_{pi}"] = _q_we_value(z, layer.ua)
            _publish_arena(round_arrays, {"layer": li}, round_path, fanout)

            tasks = [
                (static_path, round_path, tile, pi)
                for pi in range(len(periods))
                for tile in range(n_tiles)
            ]
            if fanout:
                results = process_map(
                    _shard_task, tasks, procs=workers, chunksize=1,
                    persistent=True,
                )
            else:
                results = [_shard_task(task) for task in tasks]

            out_dim = agg0.out_dim
            agg_s = [
                np.empty((graph.num_store_nodes, out_dim)) for _ in periods
            ]
            agg_u = (
                [np.empty((graph.num_customer_nodes, out_dim)) for _ in periods]
                if use_pref
                else None
            )
            for tile, pi, band_s, band_u in results:
                agg_s[pi][store_splits[tile] : store_splits[tile + 1]] = band_s
                if band_u is not None:
                    agg_u[pi][cust_splits[tile] : cust_splits[tile + 1]] = (
                        band_u
                    )

            new_states: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
            for pi, (h, z, q) in enumerate(states):
                sa_to_a = layer.sa_to_a
                agg_a = _band_aggregate(
                    dst=graph.sa_dst_a,
                    src=graph.sa_src_s,
                    attr=graph.sa_attr,
                    w_edge=sa_to_a.fuse.weight.data[d2 : d2 + 3],
                    pre=np.matmul(h, sa_to_a.fuse.weight.data[:d2]),
                    bias=sa_to_a.fuse.bias.data,
                    key_w=sa_to_a.key_proj.weight.data,
                    q_we=_q_we_value(q, sa_to_a),
                    extras=(),
                    lo=0,
                    n_band=q.shape[0],
                    num_heads=sa_to_a.num_heads,
                    head_dim=sa_to_a.head_dim,
                    scale=sa_to_a.scale,
                    edge_range=(0, num_sa_edges),
                )
                h_new = _linear_relu(np.add(agg_s[pi], h), layer.w_s)
                if use_pref:
                    z_new = _linear_relu(np.add(agg_u[pi], z), layer.w_u)
                else:
                    z_new = _linear_relu(z, layer.w_u)
                q_new = _linear_relu(np.add(agg_a, q), layer.w_a)
                new_states.append((h_new, z_new, q_new))
            states = new_states
    finally:
        if fanout:
            shutil.rmtree(tmpdir, ignore_errors=True)
        else:
            for token in list(_INPROC_ARENAS):
                if token.startswith(tmpdir):
                    del _INPROC_ARENAS[token]

    return {
        period: (Tensor(states[pi][0]), Tensor(states[pi][2]))
        for pi, period in enumerate(periods)
    }
