"""Top-k site recommendation on top of a trained model.

After training, for a given target store type the model predicts order
counts for all candidate store-regions and returns the top-ranked regions
(Section III-A, Problem Formulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..topk import top_k_indices


@dataclass(frozen=True)
class Recommendation:
    """One recommended site."""

    region: int
    store_type: int
    predicted_orders: float  # denormalised (expected monthly orders)
    score: float  # normalised model output


def recommend_sites(
    model,
    store_type: int,
    candidate_regions: Sequence[int],
    k: int = 3,
    target_scale: float = 1.0,
) -> List[Recommendation]:
    """Rank ``candidate_regions`` for ``store_type`` and return the top k.

    ``model`` is anything with ``predict(pairs) -> np.ndarray`` over
    (region, type) pairs (an :class:`~repro.core.model.O2SiteRec` or a
    baseline).  ``target_scale`` denormalises scores back to order counts.
    """
    candidates = np.asarray(list(candidate_regions), dtype=np.int64)
    if len(candidates) == 0:
        raise ValueError("candidate_regions is empty")
    if k < 1:
        raise ValueError("k must be >= 1")
    pairs = np.stack(
        [candidates, np.full(len(candidates), store_type, dtype=np.int64)], axis=1
    )
    scores = np.asarray(model.predict(pairs), dtype=np.float64)
    order = top_k_indices(scores, min(k, len(candidates)))
    return [
        Recommendation(
            region=int(candidates[i]),
            store_type=int(store_type),
            predicted_orders=float(scores[i] * target_scale),
            score=float(scores[i]),
        )
        for i in order
    ]
