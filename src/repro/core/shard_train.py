"""Banded sharded *training*: the full step, bit-identical to the reference.

:mod:`repro.core.shard` fans evaluation out over grid row bands;
this module extends the same banding to the training step -- forward
*recording* per-band autograd state and a halo-synchronised banded
backward -- while reproducing the default period-batched training path
(:meth:`HeteroRecommender._propagate_batched`) byte for byte.

What is banded
--------------
The batched forward stacks all periods into one block-diagonal graph whose
destination-sorted edge arrays stay *globally* sorted under the period
offsets, so the eval row-band partition extends to ``periods x tiles``
bands (:func:`repro.graphs.partition.stacked_band_cuts`).  For each layer,
the three destination-sorted relations -- type->store (``sa_to_s``),
customer->store (``su``) and type->customer (``ua``) -- run as **one
autograd node per relation** that sweeps its bands instead of the
reference's three-node chain (edge projection -> fused message -> segment
attention) over the full edge set:

* **forward**: each band recomputes its block-cover edge projection, fused
  messages and keys (:func:`repro.core.shard._band_aggregate` -- the very
  kernels sharded eval runs), and only the stitched ``(N, H*hd)`` value
  plus its relu sign mask are recorded.  The reference path pins the
  ``(E, F)`` relu mask and the ``(E, H)`` attention weights/leaky slopes
  of every relation of every layer until backward; the banded tape pins
  none of that -- the peak-RSS reduction measured in
  ``BENCH_shard_train.json``.
* **backward**: the fused messages are rebuilt once full-range (the same
  checkpoint expressions the reference backward replays), then each band
  recomputes its keys from the block cover -- the halo ring: cover rows
  beyond the owned edge window, counted by the memprof halo counters --
  and its attention weights, and runs the segment-local attention backward
  into its slice of the edge-gradient buffer.  Parameter gradients are
  then reduced master-side with the block-deterministic
  :func:`~repro.tensor.ops.matmul_grad_blocked` /
  :func:`~repro.tensor.ops.matmul_blocked` pair, in ascending band (block)
  order -- so every byte matches the reference step, per band count,
  worker count and kernel backend.

The unsorted store->type hub direction (``sa_to_a``) keeps the reference
autograd call: its destination order admits no contiguous banding, and it
is a factor ``P * tiles`` smaller than the banded relations.

Execution modes
---------------
Serial (default): the band sweep runs in-process, cache-tiled -- band
intermediates stay resident instead of streaming full ``(E, F)`` blocks
through DRAM per kernel.  With ``O2_NUM_PROCS`` set, forward values and
backward band gradients fan out over the persistent
:func:`repro.parallel.process_map` pool: workers read everything from two
read-only mmap arenas (a per-fit static arena of edge arrays, a per-layer
round arena of projections and weights), recompute their covers locally,
and ship only band-sized gradients back -- the boundary-gradient exchange
accounted by :func:`shard_train_stats`.

Compiled-step interplay: a banded step builds data-dependent band closures
a replay plan cannot pin, so an active capture is *poisoned* on entry
(never a silent double-path) and the step runs eager; the decision is
counted on the memprof ``plan:`` line as ``shard_fallbacks``.
"""

from __future__ import annotations

import atexit
import os
import resource
import shutil
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.periods import TimePeriod
from ..graphs.partition import (
    GridTilePartition,
    band_node_splits,
    stacked_band_cuts,
)
from ..parallel import in_process_worker, num_procs, process_map
from ..tensor import Tensor
from ..tensor import cnative as _cnative
from ..tensor import plan as _plan
from ..tensor import pool as _pool
from ..tensor.ops import (
    MATMUL_BLOCK,
    edge_message_value,
    matmul_blocked,
    matmul_grad_blocked,
)
from ..tensor.segment import get_plan
from .shard import _NEGATIVE_SLOPE, _band_aggregate, _worker_arena

__all__ = [
    "apply_layers_banded",
    "reset_shard_train_stats",
    "shard_train_stats",
]


# ---------------------------------------------------------------------------
# Counters (consumed by repro.tensor.memprof and tests).
# ---------------------------------------------------------------------------

_stats = {
    "steps": 0,
    "nodes": 0,
    "bands": 0,
    "halo_rows": 0,
    "halo_bytes": 0,
    "exchange_bytes": 0,
    "fanout_tasks": 0,
    "worker_peak_rss_mb": 0.0,
}


def shard_train_stats() -> dict:
    """Banded-training counters since the last reset.

    ``halo_rows``/``halo_bytes`` count block-cover rows recomputed beyond
    the owned edge windows (the halo rings crossed by the banded backward);
    ``exchange_bytes`` the boundary gradients and band values shipped
    through the fan-out pickle channel (0 in serial mode);
    ``worker_peak_rss_mb`` the largest per-worker peak RSS reported back.
    """
    return dict(_stats)


def reset_shard_train_stats() -> None:
    for key in _stats:
        _stats[key] = 0.0 if key == "worker_peak_rss_mb" else 0


# ---------------------------------------------------------------------------
# Band tables: per destination array, the (lo, hi, e0, e1, ids) window of
# every band.  Keyed by array identity (stacked edge arrays are built once
# per fit) with a strong reference, so the band-local ``ids`` arrays -- and
# therefore their cached SegmentPlans -- are stable across training steps.
# ---------------------------------------------------------------------------

_BAND_TABLES: Dict[int, tuple] = {}


def _band_table(dst: np.ndarray, cuts: np.ndarray) -> List[tuple]:
    key = id(dst)
    cuts_key = tuple(int(c) for c in cuts)
    entry = _BAND_TABLES.get(key)
    if entry is not None and entry[0] is dst and entry[1] == cuts_key:
        return entry[2]
    bounds = np.searchsorted(dst, cuts)
    table = []
    for band in range(len(cuts) - 1):
        lo, hi = int(cuts[band]), int(cuts[band + 1])
        e0, e1 = int(bounds[band]), int(bounds[band + 1])
        ids = np.subtract(np.asarray(dst[e0:e1], dtype=np.int64), lo)
        table.append((lo, hi, e0, e1, ids))
    if len(_BAND_TABLES) >= 16:
        _BAND_TABLES.clear()
    _BAND_TABLES[key] = (dst, cuts_key, table)
    return table


# ---------------------------------------------------------------------------
# Band-local attention backward.  Mirrors both dispatch branches of
# repro.tensor.ops.segment_attention's backward expression by expression on
# the band's rows -- the attention softmax and its gradient are segment-
# local and bands never split a segment, so each band computes exactly its
# slice of the full-graph result.
# ---------------------------------------------------------------------------


def _band_att_backward(
    keys: np.ndarray,
    q_band: np.ndarray,
    gout_band: np.ndarray,
    ids: np.ndarray,
    n_band: int,
    scale: float,
    g_q_out: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients (d keys, d queries) of one band's segment attention.

    ``keys`` is the band's ``(E_b, H, hd)`` key slice (recomputed from the
    block cover), ``q_band`` the ``(n_band, H, hd)`` query window,
    ``gout_band`` the relu-masked output gradient rows.  The attention
    weights and leaky slopes are recomputed band-locally -- the banded tape
    does not pin them -- with the same kernels as the recorded forward.
    ``g_q_out`` optionally receives the query gradient in place (the
    numpy path's band-sliced ``SegmentPlan.sum(out=...)`` variant).
    """
    num_edges, num_heads, head_dim = keys.shape
    out_dim = num_heads * head_dim
    plan = get_plan(ids, n_band)
    if _cnative.available():
        q_c = np.ascontiguousarray(q_band)
        weights, leaky, _agg = _cnative.seg_att_fwd(
            keys, q_c, plan, scale, _NEGATIVE_SLOPE
        )
        g_keys, g_q = _cnative.seg_att_bwd(
            keys, q_c, weights, leaky, gout_band, plan, scale
        )
        if g_q_out is not None:
            np.copyto(g_q_out.reshape(g_q.shape), g_q)
            g_q = g_q_out
        return g_keys, g_q
    # Reference-kernel branch: recompute the softmax forward, then the
    # backward chain, exactly as ops.segment_attention writes them.
    q_edge = _pool.take_rows(q_band, ids, tag="segatt-qedge")
    scores = np.einsum("ehd,ehd->eh", keys, q_edge)
    scores = np.multiply(scores, scale)
    leaky = np.where(scores > 0, 1.0, _NEGATIVE_SLOPE)
    act = np.multiply(scores, leaky)
    sorted_scores = plan.sort(act)
    seg_max = plan.max_sorted(sorted_scores)
    spread_max = plan.spread_runs(seg_max)
    shifted = np.subtract(sorted_scores, spread_max)
    exp = np.exp(shifted)
    seg_sum = plan.sum_sorted(exp)
    spread_sum = plan.spread_runs(seg_sum)
    weights = plan.unsort(np.divide(exp, spread_sum))

    g = _pool.take_rows(gout_band, ids, tag="segatt-bwd").reshape(
        num_edges, num_heads, head_dim
    )
    g_w = np.einsum("ehd,ehd->eh", g, keys)
    g_keys = np.multiply(g, weights[:, :, None])
    wgw = np.multiply(weights, g_w)
    inner = plan.sum(wgw)
    inner_edge = _pool.take_rows(inner, ids, tag="segatt-bwd")
    g_s = np.subtract(g_w, inner_edge)
    g_s = np.multiply(weights, g_s)
    g_s *= leaky
    g_s *= scale
    qs = np.multiply(q_edge, g_s[:, :, None])
    g_keys += qs
    ks = np.multiply(keys, g_s[:, :, None])
    if g_q_out is not None:
        g_q = plan.sum(
            ks.reshape(num_edges, out_dim), out=g_q_out.reshape(n_band, out_dim)
        ).reshape(n_band, num_heads, head_dim)
    else:
        g_q = plan.sum(ks.reshape(num_edges, out_dim)).reshape(
            n_band, num_heads, head_dim
        )
    return g_keys, g_q


# Minimum owned edge rows per band before a relation's band count is
# reduced below the gate's tile count: each band pays up to one extra
# MATMUL_BLOCK of cover recompute at each end, so bands much smaller than
# a few blocks spend more time on halo rows than on their own edges.
_MIN_BAND_ROWS = 8 * MATMUL_BLOCK


def _cover(e0: int, e1: int, num_edges: int) -> Tuple[int, int]:
    """Block cover of an edge window (see ``matmul_blocked``)."""
    b0 = (e0 // MATMUL_BLOCK) * MATMUL_BLOCK
    b1 = min(-(-e1 // MATMUL_BLOCK) * MATMUL_BLOCK, num_edges)
    return b0, b1


# ---------------------------------------------------------------------------
# Fan-out worker tasks.  Everything round-varying travels through the two
# mmap arenas (static: per fit; round: per layer per step) plus the pickled
# band gradient slices, so the persistent pool's forked snapshot never goes
# stale.  Arena layout (per banded relation ``rel``):
#   static:  dst_<rel>, src_<rel>, attr_<rel>, cuts_<rel>,
#            x0ix/x1ix (factored capacity row maps)
#   round:   pre_<rel>, qwe_<rel>, we_<rel>, bias_<rel>, keyw_<rel>,
#            x0_<rel>/x1_<rel> (projected capacity tables)
# ---------------------------------------------------------------------------

def _worker_rel(stat, rnd, meta, rel):
    want_c = bool(meta["c_kernels"])
    _cnative.set_c_kernels(want_c)
    if want_c != _cnative.available():
        raise RuntimeError(
            "shard_train worker cannot match the master's kernel dispatch "
            "(compiled kernels unavailable in the worker process)"
        )
    extras = []
    for name in ("x0", "x1"):
        if f"{name}_{rel}" in rnd:
            extras.append((rnd[f"{name}_{rel}"], stat[f"{name}ix"]))
    return {
        "dst": stat[f"dst_{rel}"],
        "src": stat[f"src_{rel}"],
        "attr": stat[f"attr_{rel}"],
        "cuts": stat[f"cuts_{rel}"],
        "pre": rnd[f"pre_{rel}"],
        "qwe": rnd[f"qwe_{rel}"],
        "we": rnd[f"we_{rel}"],
        "bias": rnd[f"bias_{rel}"],
        "keyw": rnd[f"keyw_{rel}"],
        "extras": extras,
    }


def _worker_rss() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _fwd_task(task):
    """One band's forward values for one banded relation of one layer."""
    static_path, round_path, rel, band = task
    sheader, stat = _worker_arena(static_path)
    _rheader, rnd = _worker_arena(round_path)
    meta = sheader["meta"]
    r = _worker_rel(stat, rnd, meta, rel)
    lo = int(r["cuts"][band])
    hi = int(r["cuts"][band + 1])
    value = _band_aggregate(
        dst=r["dst"],
        src=r["src"],
        attr=r["attr"],
        w_edge=r["we"],
        pre=r["pre"],
        bias=r["bias"],
        key_w=r["keyw"],
        q_we=r["qwe"],
        extras=r["extras"],
        lo=lo,
        n_band=hi - lo,
        num_heads=int(meta["num_heads"]),
        head_dim=int(meta["head_dim"]),
        scale=float(meta["scale"]),
    )
    return rel, band, value, _worker_rss()


def _bwd_task(task):
    """One band's attention backward for one banded relation.

    Recomputes the band's cover of the fused messages and keys from the
    arenas (bit-identical to the master's full-range recompute: the cover
    starts on a block boundary), then runs the segment-local attention
    backward.  Returns the band's key-space and query-space gradients.
    """
    static_path, round_path, rel, band, gout_band = task
    sheader, stat = _worker_arena(static_path)
    _rheader, rnd = _worker_arena(round_path)
    meta = sheader["meta"]
    num_heads = int(meta["num_heads"])
    head_dim = int(meta["head_dim"])
    scale = float(meta["scale"])
    r = _worker_rel(stat, rnd, meta, rel)
    dst = r["dst"]
    num_edges = dst.shape[0]
    lo = int(r["cuts"][band])
    hi = int(r["cuts"][band + 1])
    e0, e1 = (int(x) for x in np.searchsorted(dst, (lo, hi)))
    if e1 <= e0:
        return rel, band, None, None, _worker_rss()
    b0, b1 = _cover(e0, e1, num_edges)
    eproj = matmul_blocked(r["attr"][b0:b1], r["we"])
    idx = np.asarray(r["src"][b0:b1], dtype=np.int64)
    extras_loc = [
        (values, np.asarray(index[b0:b1], dtype=np.int64))
        for values, index in r["extras"]
    ]
    fused = edge_message_value(r["pre"], eproj, r["bias"], idx, extras_loc)
    keys_flat = matmul_blocked(fused, r["keyw"])
    keys = keys_flat[e0 - b0 : e1 - b0].reshape(e1 - e0, num_heads, head_dim)
    ids = np.asarray(dst[e0:e1], dtype=np.int64) - lo
    g_keys, g_q = _band_att_backward(
        keys, r["qwe"][lo:hi], gout_band, ids, hi - lo, scale
    )
    return rel, band, g_keys.reshape(e1 - e0, num_heads * head_dim), g_q, (
        _worker_rss()
    )


# ---------------------------------------------------------------------------
# Arena lifecycle (fan-out mode only; the serial band sweep reads master
# arrays in place and never touches the filesystem).
# ---------------------------------------------------------------------------

_STATIC_ARENAS: Dict[tuple, str] = {}
_ROUND_DIRS: List[str] = []
_round_serial = 0


def _cleanup_arenas() -> None:
    for tmpdir in _ROUND_DIRS:
        shutil.rmtree(tmpdir, ignore_errors=True)
    _ROUND_DIRS.clear()
    for tmpdir in _STATIC_ARENAS.values():
        shutil.rmtree(tmpdir, ignore_errors=True)
    _STATIC_ARENAS.clear()


atexit.register(_cleanup_arenas)


def _static_arena_path(rels: dict, cuts: dict, meta_extra: dict) -> str:
    """The per-fit static arena, written once and cached by array identity.

    The stacked edge arrays are built once per fit (``_build_batched``
    caches them on the recommender), so their ids are a stable cache key;
    the kernel backend and the per-relation band cuts join it because
    workers read both from this arena's metadata.
    """
    from ..serve.arena import save_raw_arena

    key = tuple(
        [id(r["dst"]) for r in rels.values()]
        + [tuple(int(c) for c in cuts[rel]) for rel in sorted(cuts)]
        + [tuple(sorted(meta_extra.items()))]
    )
    path = _STATIC_ARENAS.get(key)
    if path is not None:
        return os.path.join(path, "static.arena")
    while len(_STATIC_ARENAS) >= 2:
        _, old = _STATIC_ARENAS.popitem()
        shutil.rmtree(old, ignore_errors=True)
    tmpdir = tempfile.mkdtemp(prefix="o2shardtrain-")
    arrays = {
        f"cuts_{rel}": np.asarray(c) for rel, c in cuts.items()
    }
    for rel, r in rels.items():
        arrays[f"dst_{rel}"] = r["dst"]
        arrays[f"src_{rel}"] = r["src"]
        arrays[f"attr_{rel}"] = r["attr"]
        for name, (_values, index) in zip(("x0", "x1"), r["extras_raw"]):
            arrays[f"{name}ix"] = np.asarray(index, dtype=np.int64)
    meta = {"relations": list(rels), **meta_extra}
    arena_path = os.path.join(tmpdir, "static.arena")
    save_raw_arena(arrays, meta, arena_path, durable=False)
    _STATIC_ARENAS[key] = tmpdir
    return arena_path


def _publish_round(arrays: Dict[str, np.ndarray]) -> str:
    from ..serve.arena import save_raw_arena

    global _round_serial
    _round_serial += 1
    tmpdir = tempfile.mkdtemp(prefix=f"o2shardtrain-r{_round_serial}-")
    path = os.path.join(tmpdir, "round.arena")
    save_raw_arena(arrays, {"round": _round_serial}, path, durable=False)
    _ROUND_DIRS.append(tmpdir)
    return path


def _drop_round_dirs() -> None:
    """Free the previous step's round arenas (its backward has run)."""
    for tmpdir in _ROUND_DIRS:
        shutil.rmtree(tmpdir, ignore_errors=True)
    _ROUND_DIRS.clear()


# ---------------------------------------------------------------------------
# The banded autograd node.
# ---------------------------------------------------------------------------


def _banded_attention(
    agg,
    target: Tensor,
    source: Tensor,
    edge_attr,
    dst: np.ndarray,
    src_index: np.ndarray,
    bands: List[tuple],
    fanout: Optional[dict],
    rel: str,
    prelude: dict,
    value: np.ndarray,
    att_stash: Optional[list] = None,
) -> Tensor:
    """One relation's aggregation as a single band-swept autograd node.

    Replaces the reference chain (``rows_matmul`` -> ``edge_message`` ->
    ``segment_attention``) for a destination-sorted relation.  ``prelude``
    carries the autograd prelude tensors built by :func:`_build_prelude`
    with the reference expressions (their graph edges are what routes
    gradients back into the parameters); ``value`` the stitched banded
    forward.  The parent order reproduces the reference graph's DFS visit
    sequence, so leaf gradients accumulate in the identical order.
    """
    pre = prelude["pre"]
    extras_t = prelude["extras_t"]
    w_e = prelude["w_e"]
    q_we = prelude["q_we"]
    bias = agg.fuse.bias
    key_w = agg.key_proj.weight
    num_heads, head_dim, scale = agg.num_heads, agg.head_dim, agg.scale
    out_dim = num_heads * head_dim
    attr_arr = prelude["attr_arr"]
    extras_data = [(t.data, i) for t, i in extras_t]
    idx64 = np.asarray(src_index, dtype=np.int64)
    num_sources = pre.shape[0]
    num_edges = dst.shape[0]
    fuse_dim = w_e.shape[1]

    pos = np.greater(value, 0)
    _stats["nodes"] += 1

    def _bwd_blockwise(gout: np.ndarray):
        """Band-local block-sweep backward (compiled-kernel path).

        No edge-count-sized buffer is ever materialised: each band's
        fused-message checkpoint is recomputed over its block cover in
        cache-resident scratch, the attention backward runs band-local,
        and the parameter-gradient reductions are flushed one
        :data:`MATMUL_BLOCK` run at a time.  Bitwise identity with the
        full-range reference masters holds because (a) the C
        ``edge_fuse_bwd`` kernel accumulates strictly sequentially in
        ascending edge order, so feeding it ascending edge slices
        through shared accumulators replays the identical FP op
        sequence, (b) every run starts at a block multiple (``done`` is
        only ever advanced to one), so ``matmul_blocked`` over a run
        reproduces the full-range block bytes, and (c) the ``d_kw`` /
        ``d_we`` per-block partials are accumulated in strictly
        ascending block order exactly as ``matmul_grad_blocked`` does.
        A <=one-block carry buffer holds gradient rows of bands that end
        mid-block until the next band completes their block.
        """
        B = MATMUL_BLOCK
        dt = w_e.data.dtype
        gpre = np.zeros((num_sources, fuse_dim), dtype=dt)
        gbias = np.zeros(fuse_dim, dtype=dt)
        gex_list = [
            np.zeros((t.shape[0], fuse_dim), dtype=dt) for t, _i in extras_t
        ]
        d_kw = None
        d_we = None
        g_q = np.zeros(q_we.shape)
        g_q2d = g_q.reshape(q_we.shape[0], out_dim)
        live = [
            (band, b) for band, b in enumerate(bands) if b[3] > b[2]
        ]
        if not live:
            return (
                gpre,
                gex_list,
                np.zeros((attr_arr.shape[1], fuse_dim), dtype=dt),
                gbias,
                np.zeros((fuse_dim, out_dim), dtype=dt),
                g_q,
            )
        max_cover = max(
            _cover(b[2], b[3], num_edges)[1] - _cover(b[2], b[3], num_edges)[0]
            for _band, b in live
        )
        def _scratch(shape, tag):
            # Sliced per band, so the pool-off ``None`` sentinel cannot be
            # forwarded to ``out=`` -- fall back to a plain allocation.
            buf = _pool.out_buffer(shape, dt, tag=tag)
            return np.empty(shape, dtype=dt) if buf is None else buf

        eproj_s = _scratch((max_cover, fuse_dim), "band-eproj")
        fd_s = _scratch((max_cover, fuse_dim), "band-fused")
        keys_s = _scratch((max_cover, out_dim), "band-keys")
        gk_run = _scratch((max_cover, out_dim), "band-gk-run")
        gf_s = _scratch((max_cover, fuse_dim), "band-gf")
        gm_s = _scratch((max_cover, fuse_dim), "band-gmask")
        pend = _scratch((B, out_dim), "band-gk-carry")
        by_band = {}
        if fanout is not None:
            tasks = [
                (
                    fanout["static_path"],
                    fanout["round_path"],
                    rel,
                    band,
                    gout[b[0] : b[1]],
                )
                for band, b in live
            ]
            _stats["fanout_tasks"] += len(tasks)
            _stats["exchange_bytes"] += sum(t[4].nbytes for t in tasks)
            results = process_map(
                _bwd_task,
                tasks,
                procs=fanout["workers"],
                chunksize=1,
                persistent=True,
            )
            by_band = {
                band: (g_keys, g_q_b, rss)
                for _rel, band, g_keys, g_q_b, rss in results
            }
        done = 0
        for band_i, (lo, hi, e0, e1, ids) in enumerate(bands):
            if e1 <= e0:
                continue  # empty band: no edge rows, g_q stays zero
            direct = False  # band gradient written in-run (stash path)
            b0, b1 = _cover(e0, e1, num_edges)
            ncov = b1 - b0
            # Cover recompute of the fused-message checkpoint, block-
            # anchored at b0 so every row matches the full-range bytes.
            ep = matmul_blocked(
                attr_arr[b0:b1], w_e.data, out=eproj_s[:ncov]
            )
            fdc = _cnative.edge_fuse_fwd(
                pre.data,
                idx64[b0:b1],
                [(v, i[b0:b1]) for v, i in extras_data],
                ep,
                bias.data,
                out=fd_s[:ncov],
            )
            if fanout is not None:
                g_keys, g_q_b, rss = by_band[band_i]
                if g_keys is None:
                    gk2d = np.zeros((e1 - e0, out_dim), dtype=dt)
                else:
                    gk2d = np.asarray(g_keys).reshape(e1 - e0, out_dim)
                    g_q[lo:hi] = g_q_b
                    _stats["exchange_bytes"] += gk2d.nbytes + g_q_b.nbytes
                    _stats["worker_peak_rss_mb"] = max(
                        _stats["worker_peak_rss_mb"], rss
                    )
            else:
                keys_c = matmul_blocked(fdc, key_w.data, out=keys_s[:ncov])
                k_band = keys_c[e0 - b0 : e1 - b0].reshape(
                    e1 - e0, num_heads, head_dim
                )
                stash_wl = (
                    att_stash[band_i] if att_stash is not None else None
                )
                if stash_wl is not None:
                    # The forward sweep stashed this band's attention
                    # weights/leaky -- the exact bytes the softmax
                    # recompute would produce -- so go straight to the
                    # attention backward kernel, writing the key gradient
                    # at its run offset (``done == b0``, so the band's
                    # rows land at ``[e0 - done, e1 - done)``).
                    weights_b, leaky_b = stash_wl
                    direct = True
                    _g_keys, g_q_b = _cnative.seg_att_bwd(
                        k_band,
                        np.ascontiguousarray(q_we.data[lo:hi]),
                        weights_b,
                        leaky_b,
                        gout[lo:hi],
                        get_plan(ids, hi - lo),
                        scale,
                        gkeys_out=gk_run[e0 - done : e1 - done].reshape(
                            e1 - e0, num_heads, head_dim
                        ),
                    )
                    gk2d = None
                    np.copyto(g_q2d[lo:hi].reshape(g_q_b.shape), g_q_b)
                    att_stash[band_i] = None  # consumed: free eagerly
                else:
                    g_keys, _g_q_b = _band_att_backward(
                        k_band,
                        q_we.data[lo:hi],
                        gout[lo:hi],
                        ids,
                        hi - lo,
                        scale,
                        g_q_out=g_q2d[lo:hi],
                    )
                    gk2d = g_keys.reshape(e1 - e0, out_dim)
            _stats["halo_rows"] += (e0 - b0) + (b1 - e1)
            _stats["halo_bytes"] += ((e0 - b0) + (b1 - e1)) * fuse_dim * 8
            _stats["bands"] += 1
            # Flush every block this band completes.  ``done`` (first
            # unreduced edge) is always a block multiple and equals b0,
            # so the carried rows' checkpoint lives in this band's cover.
            kE = num_edges if e1 == num_edges else (e1 // B) * B
            if kE > done:
                n_run = kE - done
                n_pend = e0 - done
                run = gk_run[:n_run]
                if n_pend:
                    run[:n_pend] = pend[:n_pend]
                if not direct:
                    run[n_pend:] = gk2d[: kE - e0]
                g_f = matmul_blocked(run, key_w.data.T, out=gf_s[:n_run])
                gm = gm_s[:n_run]
                _cnative.edge_fuse_bwd(
                    g_f,
                    fdc[done - b0 : kE - b0],
                    idx64[done:kE],
                    num_sources,
                    [(t.shape[0], i[done:kE]) for t, i in extras_t],
                    accum=(gm, gpre, gex_list, gbias),
                )
                for kb in range(done, kE, B):
                    ke = min(kb + B, kE)
                    pk = np.matmul(
                        fdc[kb - b0 : ke - b0].T, run[kb - done : ke - done]
                    )
                    d_kw = pk if d_kw is None else np.add(d_kw, pk, out=d_kw)
                    pw = np.matmul(
                        attr_arr[kb:ke].T, gm[kb - done : ke - done]
                    )
                    d_we = pw if d_we is None else np.add(d_we, pw, out=d_we)
                left = e1 - kE
                if left:
                    if direct:
                        pend[:left] = gk_run[kE - done : e1 - done]
                    else:
                        pend[:left] = gk2d[kE - e0 :]
                done = kE
            else:
                # No block completed: move this band's rows to the carry
                # (offsets relative to ``done`` are unchanged).
                if direct:
                    pend[e0 - done : e1 - done] = gk_run[e0 - done : e1 - done]
                else:
                    pend[e0 - done : e1 - done] = gk2d
        return gpre, gex_list, d_we, gbias, d_kw, g_q

    def _bwd_reference(gout: np.ndarray):
        """Full-range reference backward (numpy-kernel ablation path).

        The numpy segment plans reduce with ``np.add.reduceat`` whose
        pairwise summation tree depends on the full edge count, so the
        master reductions cannot be banded bitwise; they are kept
        full-range, matching the reference graph expression for
        expression.
        """
        # Full-range fused-message recompute: the same checkpoint
        # expressions the reference backward replays (attention.py's
        # ``recompute`` closure), feeding the master-side block-
        # deterministic parameter-gradient reductions below.
        eproj_r = matmul_blocked(
            attr_arr,
            w_e.data,
            out=_pool.out_buffer(
                (num_edges, fuse_dim), w_e.data.dtype, tag="edge-msg-ckpt"
            ),
        )
        fd = edge_message_value(
            pre.data, eproj_r, bias.data, idx64, extras_data
        )
        gk = np.empty((num_edges, out_dim))
        g_q = np.zeros(q_we.shape)
        g_q2d = g_q.reshape(q_we.shape[0], out_dim)
        if fanout is not None:
            tasks = [
                (
                    fanout["static_path"],
                    fanout["round_path"],
                    rel,
                    band,
                    gout[lo:hi],
                )
                for band, (lo, hi, e0, e1, _ids) in enumerate(bands)
                if e1 > e0
            ]
            _stats["fanout_tasks"] += len(tasks)
            _stats["exchange_bytes"] += sum(
                t[4].nbytes for t in tasks
            )
            results = process_map(
                _bwd_task,
                tasks,
                procs=fanout["workers"],
                chunksize=1,
                persistent=True,
            )
            for _rel, band, g_keys, g_q_b, rss in results:
                lo, hi, e0, e1, _ids = bands[band]
                if g_keys is None:
                    continue
                gk[e0:e1] = g_keys
                g_q[lo:hi] = g_q_b
                _stats["exchange_bytes"] += g_keys.nbytes + g_q_b.nbytes
                _stats["worker_peak_rss_mb"] = max(
                    _stats["worker_peak_rss_mb"], rss
                )
                b0, b1 = _cover(e0, e1, num_edges)
                _stats["halo_rows"] += (e0 - b0) + (b1 - e1)
                _stats["halo_bytes"] += ((e0 - b0) + (b1 - e1)) * fuse_dim * 8
                _stats["bands"] += 1
        else:
            for lo, hi, e0, e1, ids in bands:
                if e1 <= e0:
                    continue  # empty band: gk has no rows, g_q stays zero
                b0, b1 = _cover(e0, e1, num_edges)
                keys_c = matmul_blocked(fd[b0:b1], key_w.data)
                k_band = keys_c[e0 - b0 : e1 - b0].reshape(
                    e1 - e0, num_heads, head_dim
                )
                g_keys, _g_q_b = _band_att_backward(
                    k_band,
                    q_we.data[lo:hi],
                    gout[lo:hi],
                    ids,
                    hi - lo,
                    scale,
                    g_q_out=g_q2d[lo:hi],
                )
                gk[e0:e1] = g_keys.reshape(e1 - e0, out_dim)
                _stats["halo_rows"] += (e0 - b0) + (b1 - e1)
                _stats["halo_bytes"] += ((e0 - b0) + (b1 - e1)) * fuse_dim * 8
                _stats["bands"] += 1
        # Master-side reductions, all full-range and block-deterministic --
        # bit-identical to the reference backward's own expressions.
        g_f = matmul_blocked(
            gk,
            key_w.data.T,
            out=_pool.out_buffer(
                (num_edges, fuse_dim), fd.dtype, tag="segatt-gf"
            ),
        )
        d_kw = matmul_grad_blocked(fd, gk)
        if _cnative.available():
            gmask, gpre, gex, gbias = _cnative.edge_fuse_bwd(
                g_f,
                fd,  # read only through ``> 0``: identical to the relu mask
                idx64,
                num_sources,
                [(t.shape[0], i) for t, i in extras_t],
            )
        else:
            m = np.greater(fd, 0)
            gmask = np.multiply(
                g_f,
                m,
                out=_pool.out_buffer(g_f.shape, g_f.dtype, tag="edge-msg-bwd"),
            )
            gpre = get_plan(idx64, num_sources).sum(gmask)
            gex = [
                get_plan(i, t.shape[0]).sum(gmask) for t, i in extras_t
            ]
            gbias = gmask.sum(axis=0)
        d_we = matmul_grad_blocked(attr_arr, gmask)
        return gpre, gex, d_we, gbias, d_kw, g_q

    def backward(grad: np.ndarray):
        gout = np.multiply(
            grad,
            pos,
            out=_pool.out_buffer(grad.shape, grad.dtype, tag="segatt-gout"),
        )
        if _cnative.available():
            gpre, gex, d_we, gbias, d_kw, g_q = _bwd_blockwise(gout)
        else:
            gpre, gex, d_we, gbias, d_kw, g_q = _bwd_reference(gout)
        out = []
        if pre.requires_grad:
            out.append((pre, gpre))
        for (t, _i), g in zip(extras_t, gex):
            if t.requires_grad:
                out.append((t, g))
        if w_e.requires_grad:
            out.append((w_e, d_we))
        if bias.requires_grad:
            out.append((bias, gbias))
        if key_w.requires_grad:
            out.append((key_w, d_kw))
        if q_we.requires_grad:
            out.append((q_we, g_q))
        return out

    parents = [pre]
    parents.extend(t for t, _i in extras_t)
    parents.extend((w_e, bias, key_w, q_we))
    return Tensor(value, parents=tuple(parents), backward=backward)


def _build_prelude(agg, target: Tensor, source: Tensor, edge_attr) -> dict:
    """The node-table autograd prelude of one aggregator's fast path.

    The exact expressions of ``MultiHeadSegmentAttention.forward``'s fast
    path -- source projection through the fusion weight's source block,
    per-block capacity projections, the bilinear-folded queries -- so the
    graph upstream of the banded node is the reference graph.  Unlike the
    reference, the prelude values are *kept* (node-table sized): the banded
    backward reads them for its full-range fused recompute instead of
    re-deriving them through a checkpoint closure.
    """
    from ..nn.attention import FactoredEdgeAttr

    w = agg.fuse.weight
    source_dim = source.shape[1]
    pre = source @ w[:source_dim]
    extras_t: List[tuple] = []
    if isinstance(edge_attr, FactoredEdgeAttr):
        off = source_dim
        s = edge_attr.static.shape[1]
        w_e = w[off : off + s]
        off += s
        for values, index in edge_attr.blocks:
            d = values.shape[1]
            extras_t.append(
                (values @ w[off : off + d], np.asarray(index, dtype=np.int64))
            )
            off += d
        attr_arr = edge_attr.static.data
    else:
        w_e = w[source_dim:]
        attr_arr = edge_attr.data
    num_targets = target.shape[0]
    queries = agg.query_proj(target)
    q_we = (
        queries.reshape(num_targets * agg.num_heads, agg.head_dim)
        @ agg.edge_type_weight.T
    ).reshape(num_targets, agg.num_heads, agg.head_dim)
    return {
        "pre": pre,
        "extras_t": extras_t,
        "w_e": w_e,
        "q_we": q_we,
        "attr_arr": attr_arr,
    }


def _serial_values(
    rel_spec: dict,
    bands: List[tuple],
    agg,
    stash: Optional[list] = None,
) -> np.ndarray:
    """In-process band sweep of one relation's forward values.

    ``stash`` (one slot per band) receives each band's attention
    ``(weights, leaky)`` intermediates so the banded backward can skip
    the softmax recompute -- identical bytes, one kernel pass saved.
    """
    out_dim = agg.num_heads * agg.head_dim
    prelude = rel_spec["prelude"]
    value = np.empty((prelude["q_we"].shape[0], out_dim))
    extras_data = [(t.data, i) for t, i in prelude["extras_t"]]
    for band_i, (lo, hi, e0, e1, ids) in enumerate(bands):
        slot = {} if stash is not None else None
        value[lo:hi] = _band_aggregate(
            dst=rel_spec["dst"],
            src=rel_spec["src"],
            attr=prelude["attr_arr"],
            w_edge=prelude["w_e"].data,
            pre=prelude["pre"].data,
            bias=agg.fuse.bias.data,
            key_w=agg.key_proj.weight.data,
            q_we=prelude["q_we"].data,
            extras=extras_data,
            lo=lo,
            n_band=hi - lo,
            num_heads=agg.num_heads,
            head_dim=agg.head_dim,
            scale=agg.scale,
            edge_range=(e0, e1),
            ids=ids,
            att_state=slot,
        )
        if stash is not None and slot:
            stash[band_i] = (slot["weights"], slot["leaky"])
        _stats["bands"] += 1
        b0, b1 = _cover(e0, e1, rel_spec["dst"].shape[0]) if e1 > e0 else (
            e0,
            e1,
        )
        _stats["halo_rows"] += (e0 - b0) + (b1 - e1)
        _stats["halo_bytes"] += (
            ((e0 - b0) + (b1 - e1)) * prelude["w_e"].shape[1] * 8
        )
    return value


# ---------------------------------------------------------------------------
# Entry point: the banded replacement of _propagate_batched's layer loop.
# ---------------------------------------------------------------------------


def apply_layers_banded(
    recommender, edges, h: Tensor, z: Tensor, q: Tensor, tiles: int
) -> Tuple[Tensor, Tensor, Tensor]:
    """Run the node-level layers over row bands, recording banded backward.

    Drop-in replacement for the layer loop of
    :meth:`HeteroRecommender._propagate_batched` when
    :func:`repro.core.shard.shard_train_tiles_for` engages: identical
    inputs, bit-identical outputs, loss curves and parameter gradients.
    """
    if _plan.tracing():
        # Fail-soft compile_step interplay: the banded backward closes over
        # per-band state a replay plan cannot pin or refresh.  Poison the
        # capture (the step runs eager, never a silent double-path) and
        # count the decision for the memprof ``plan:`` line.
        _plan.poison("banded sharded training step is not capturable")
        _plan._bump("shard_fallbacks")
    graph = recommender.graph
    periods = len(TimePeriod)
    rows, cols = recommender.grid_shape
    use_pref = recommender.use_preferences

    def rel_cuts(num_edges: int, regions, num_nodes: int, kind: str):
        # Per-relation band count: the gate's tile count sizes the largest
        # relation; smaller relations drop to fewer row bands so the
        # 4096-row block covers (whole blocks recomputed around each band,
        # see _cover) stay a small fraction of their edge count instead of
        # nearly doubling it.
        rel_tiles = max(
            1,
            min(
                min(int(tiles), rows),
                num_edges // (periods * _MIN_BAND_ROWS) or 1,
            ),
        )
        part = GridTilePartition(rows, cols, rel_tiles, 1)
        splits = band_node_splits(regions, part.row_splits * cols, kind)
        return stacked_band_cuts(splits, num_nodes, periods)

    cuts = {
        "sas": rel_cuts(
            edges.sa_src_s.shape[0],
            graph.store_regions,
            graph.num_store_nodes,
            "store",
        )
    }
    bands_s = _band_table(edges.sa_src_s, cuts["sas"])
    bands_su = bands_u = None
    if use_pref:
        cuts["su"] = rel_cuts(
            edges.su_dst_s.shape[0],
            graph.store_regions,
            graph.num_store_nodes,
            "store",
        )
        cuts["ua"] = rel_cuts(
            edges.ua_dst_u.shape[0],
            graph.customer_regions,
            graph.num_customer_nodes,
            "customer",
        )
        bands_su = _band_table(edges.su_dst_s, cuts["su"])
        bands_u = _band_table(edges.ua_dst_u, cuts["ua"])
    _stats["steps"] += 1
    _drop_round_dirs()

    workers = num_procs()
    fanout = workers > 1 and not in_process_worker()
    agg0 = recommender.layers[0].sa_to_s
    fanout_ctx: Optional[dict] = None
    static_path = None
    if fanout:
        from ..nn.attention import FactoredEdgeAttr

        rels_static = {
            "sas": {
                "dst": edges.sa_src_s,
                "src": edges.sa_dst_a,
                "attr": edges.sa_attr.data,
                "extras_raw": (),
            }
        }
        if use_pref:
            su_attr = edges.su_attr
            factored = isinstance(su_attr, FactoredEdgeAttr)
            rels_static["su"] = {
                "dst": edges.su_dst_s,
                "src": edges.su_src_u,
                "attr": su_attr.static.data if factored else su_attr.data,
                "extras_raw": tuple(su_attr.blocks) if factored else (),
            }
            rels_static["ua"] = {
                "dst": edges.ua_dst_u,
                "src": edges.ua_src_a,
                "attr": edges.ua_attr.data,
                "extras_raw": (),
            }
        static_path = _static_arena_path(
            rels_static,
            cuts,
            {
                "num_heads": agg0.num_heads,
                "head_dim": agg0.head_dim,
                "scale": agg0.scale,
                "c_kernels": bool(_cnative.available()),
            },
        )

    for layer in recommender.layers:
        # Preludes first (node-table matmuls with the reference autograd
        # expressions), then the band values -- one fan-out round covers
        # all banded relations of the layer.
        p_sas = _build_prelude(layer.sa_to_s, h, q, edges.sa_attr)
        rel_specs = {
            "sas": {
                "agg": layer.sa_to_s,
                "target": h,
                "source": q,
                "edge_attr": edges.sa_attr,
                "dst": edges.sa_src_s,
                "src": edges.sa_dst_a,
                "bands": bands_s,
                "prelude": p_sas,
            }
        }
        if use_pref:
            rel_specs["su"] = {
                "agg": layer.su,
                "target": h,
                "source": z,
                "edge_attr": edges.su_attr,
                "dst": edges.su_dst_s,
                "src": edges.su_src_u,
                "bands": bands_su,
                "prelude": _build_prelude(layer.su, h, z, edges.su_attr),
            }
            rel_specs["ua"] = {
                "agg": layer.ua,
                "target": z,
                "source": q,
                "edge_attr": edges.ua_attr,
                "dst": edges.ua_dst_u,
                "src": edges.ua_src_a,
                "bands": bands_u,
                "prelude": _build_prelude(layer.ua, z, q, edges.ua_attr),
            }

        values: Dict[str, np.ndarray] = {}
        if fanout:
            round_arrays: Dict[str, np.ndarray] = {}
            for rel, spec in rel_specs.items():
                prelude = spec["prelude"]
                agg = spec["agg"]
                round_arrays[f"pre_{rel}"] = prelude["pre"].data
                round_arrays[f"qwe_{rel}"] = prelude["q_we"].data
                round_arrays[f"we_{rel}"] = prelude["w_e"].data
                round_arrays[f"bias_{rel}"] = agg.fuse.bias.data
                round_arrays[f"keyw_{rel}"] = agg.key_proj.weight.data
                for name, (t, _i) in zip(("x0", "x1"), prelude["extras_t"]):
                    round_arrays[f"{name}_{rel}"] = t.data
            round_path = _publish_round(round_arrays)
            fanout_ctx = {
                "static_path": static_path,
                "round_path": round_path,
                "workers": workers,
            }
            tasks = [
                (static_path, round_path, rel, band)
                for rel, spec in rel_specs.items()
                for band in range(len(spec["bands"]))
            ]
            _stats["fanout_tasks"] += len(tasks)
            results = process_map(
                _fwd_task, tasks, procs=workers, chunksize=1, persistent=True
            )
            out_dim = agg0.num_heads * agg0.head_dim
            for rel, spec in rel_specs.items():
                values[rel] = np.empty(
                    (spec["prelude"]["q_we"].shape[0], out_dim)
                )
            for rel, band, band_value, rss in results:
                _stats["worker_peak_rss_mb"] = max(
                    _stats["worker_peak_rss_mb"], rss
                )
                lo, hi, _e0, _e1, _ids = rel_specs[rel]["bands"][band]
                values[rel][lo:hi] = band_value
                _stats["exchange_bytes"] += band_value.nbytes
                _stats["bands"] += 1
        else:
            fanout_ctx = None
            for rel, spec in rel_specs.items():
                stash = (
                    [None] * len(spec["bands"])
                    if _cnative.available()
                    else None
                )
                values[rel] = _serial_values(
                    spec, spec["bands"], spec["agg"], stash=stash
                )
                spec["att_stash"] = stash

        def banded(rel: str) -> Tensor:
            spec = rel_specs[rel]
            return _banded_attention(
                spec["agg"],
                spec["target"],
                spec["source"],
                spec["edge_attr"],
                spec["dst"],
                spec["src"],
                spec["bands"],
                fanout_ctx,
                rel,
                spec["prelude"],
                values[rel],
                att_stash=spec.get("att_stash"),
            )

        # Combine exactly as _NodeLevelLayer.forward does (Eqs. 7-9), with
        # the banded nodes standing in for the three destination-sorted
        # aggregations and the type hub kept on the reference autograd op.
        agg_s = banded("sas")
        if use_pref:
            agg_s = agg_s + banded("su")
        h_new = layer.w_s(agg_s + h).relu()
        if use_pref:
            agg_u = banded("ua")
            z_new = layer.w_u(agg_u + z).relu()
        else:
            z_new = layer.w_u(z).relu()
        agg_a = layer.sa_to_a(q, h, edges.sa_src_s, edges.sa_dst_a, edges.sa_attr)
        q_new = layer.w_a(agg_a + q).relu()
        h, z, q = h_new, z_new, q_new
    return h, z, q
