"""Model persistence: save/load O2-SiteRec weights + configuration.

Weights go into a single ``.npz``; the model configuration is embedded as
JSON so a checkpoint is self-describing.  Loading requires the *same
dataset/split* (node sets and graph structure are data-dependent and are
not serialised -- rebuild them from the order log, which `repro.data.io`
persists).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.split import InteractionSplit
from .model import O2SiteRec, O2SiteRecConfig

PathLike = Union[str, Path]

_CONFIG_KEY = "__config_json__"
_VERSION_KEY = "__format_version__"
_FORMAT_VERSION = 1


def _npz_path(path: PathLike) -> Path:
    """Normalise a checkpoint path to carry the ``.npz`` suffix.

    ``np.savez`` silently appends ``.npz`` when the path lacks it, so
    without this, ``save_model(m, "ckpt")`` writes ``ckpt.npz`` while
    ``load_model("ckpt", ...)`` looks for ``ckpt`` and fails.  Both sides
    normalise through here instead.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_model(model: O2SiteRec, path: PathLike) -> None:
    """Write the model's parameters and config to ``path`` (.npz)."""
    path = _npz_path(path)
    state = model.state_dict()
    config_json = json.dumps(dataclasses.asdict(model.config))
    np.savez(
        path,
        **state,
        **{
            _CONFIG_KEY: np.array(config_json),
            _VERSION_KEY: np.array(_FORMAT_VERSION),
        },
    )


def load_config(path: PathLike) -> O2SiteRecConfig:
    """Read just the configuration out of a checkpoint."""
    with np.load(_npz_path(path), allow_pickle=False) as archive:
        if _CONFIG_KEY not in archive:
            raise ValueError(f"{path} is not an O2-SiteRec checkpoint")
        raw = json.loads(str(archive[_CONFIG_KEY]))
    return O2SiteRecConfig(**raw)


def load_model(
    path: PathLike,
    dataset: SiteRecDataset,
    split: Optional[InteractionSplit] = None,
) -> O2SiteRec:
    """Rebuild a model on ``dataset``/``split`` and restore its weights.

    The dataset and split must match the ones the checkpoint was trained
    with (same city, same fold); otherwise parameter shapes will not line
    up and a ``ValueError``/``KeyError`` is raised by the state loading.
    """
    path = _npz_path(path)
    config = load_config(path)
    model = O2SiteRec(dataset, split, config)
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive[_VERSION_KEY])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format {version} not supported "
                f"(expected {_FORMAT_VERSION})"
            )
        state = {
            name: archive[name]
            for name in archive.files
            if name not in (_CONFIG_KEY, _VERSION_KEY)
        }
    model.load_state_dict(state)
    return model
