"""The paper's contribution: O2-SiteRec and its components."""

from .capacity import CourierCapacityModel, geographic_weights
from .model import O2SiteRec, O2SiteRecConfig, paper_hyperparams
from .ranking import Recommendation, recommend_sites
from .recommender import HeteroRecommender
from .serialize import load_config, load_model, save_model
from .trainer import TrainConfig, Trainer, TrainResult, paper_train_config

__all__ = [
    "CourierCapacityModel",
    "geographic_weights",
    "HeteroRecommender",
    "O2SiteRec",
    "O2SiteRecConfig",
    "paper_hyperparams",
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "paper_train_config",
    "Recommendation",
    "recommend_sites",
    "save_model",
    "load_model",
    "load_config",
]
