"""Courier capacity model (Section III-D).

A multi-semantic relation graph attention network over region nodes:

1. *Geographic semantic aggregation* (Eqs. 2-3): neighbours from the region
   geographical graph, weighted by a distance softmax, with residual
   connections, for ``l`` layers.
2. *Mobility semantic aggregation* (Eq. 4): neighbours from one period's
   courier mobility subgraph, GAT-style weights from a parameterised
   attention vector ``psi`` over concatenated endpoint embeddings.
3. The two views are combined (Eq. 5), two region embeddings are
   concatenated into an *edge embedding*, and an MLP reconstructs the
   observed delivery time; the L1 reconstruction error is the auxiliary
   loss ``O1`` (Eq. 6).

The edge embedding -- which distils the region pair's courier capacity --
is exported to the recommendation model (Section III-E step 2).

Note on Eq. 2: the paper literally writes ``exp(dis(i,j))`` which weights
*farther* neighbours more; the default here is ``softmax(-dis/tau)``
(nearer neighbours weigh more), with ``geo_weight_mode="literal"``
available for the verbatim form.  See DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..graphs.geographic import RegionGeographicalGraph
from ..graphs.mobility import MobilitySubgraph
from ..nn import Embedding, Linear, Module, Parameter, init
from ..optim import l1_loss
from ..tensor import (
    Tensor,
    concat,
    fast_kernels_enabled,
    gather_rows,
    get_plan,
    segment_softmax,
    segment_sum,
)


def geographic_weights(
    graph: RegionGeographicalGraph,
    mode: str = "softmax_neg_distance",
    tau_m: float = 400.0,
) -> np.ndarray:
    """Per-edge aggregation weights alpha_geo (Eq. 2), softmaxed per target.

    ``mode="softmax_neg_distance"`` (default): nearer neighbours get more
    weight.  ``mode="literal"``: the verbatim paper formula (farther
    neighbours get more weight).
    """
    if graph.num_edges == 0:
        return np.zeros(0)
    if mode == "softmax_neg_distance":
        logits = -graph.distance / tau_m
    elif mode == "literal":
        logits = graph.distance / tau_m
    else:
        raise ValueError(f"unknown geo_weight_mode {mode!r}")
    # Segment softmax per destination region (numpy: weights are constant).
    n = graph.num_regions
    if fast_kernels_enabled():
        plan = get_plan(graph.dst, n)
        sorted_logits = plan.sort(logits)
        seg_max = plan.max_sorted(sorted_logits)
        exp = np.exp(sorted_logits - plan.spread_runs(seg_max))
        seg_sum = plan.sum_sorted(exp)
        return plan.unsort(exp / plan.spread_runs(seg_sum))
    seg_max = np.full(n, -np.inf)
    np.maximum.at(seg_max, graph.dst, logits)
    exp = np.exp(logits - seg_max[graph.dst])
    seg_sum = np.zeros(n)
    np.add.at(seg_sum, graph.dst, exp)
    return exp / seg_sum[graph.dst]


class CourierCapacityModel(Module):
    """Learns per-period region capacity embeddings and delivery times."""

    def __init__(
        self,
        geo_graph: RegionGeographicalGraph,
        embedding_dim: int = 16,
        num_layers: int = 2,
        geo_weight_mode: str = "softmax_neg_distance",
        geo_tau_m: float = 400.0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.geo_graph = geo_graph
        self.num_regions = geo_graph.num_regions
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers

        self.region_embedding = Embedding(self.num_regions, embedding_dim)
        # GAT attention vector psi over [b_i, b_j] (Eq. 4).
        self.attn_vector = Parameter(
            init.normal((2 * embedding_dim,), std=0.1), name="psi"
        )
        self.combine = Linear(2 * embedding_dim, embedding_dim)  # W_b (Eq. 5)
        self.time_head = Linear(2 * embedding_dim, 1)  # W_1
        # Mean normalised delivery time is around 0.3; a positive bias keeps
        # the ReLU head alive from the first step.
        self.time_head.bias.data[:] = 0.3

        self._geo_weights = Tensor(
            geographic_weights(geo_graph, geo_weight_mode, geo_tau_m)[:, None]
        )

    # ------------------------------------------------------------------
    def base_embeddings(self) -> Tuple[Tensor, Tensor]:
        """Period-invariant part of Eqs. 3-5: ``(b0, b_geo)``.

        The geographical graph does not change with the period, so one
        capacity pass over all periods only needs this computed once (the
        per-period mobility aggregation consumes it).
        """
        b0 = self.region_embedding()  # (N, d1)

        # Geographic semantic aggregation with residuals (Eq. 3).
        b_geo = b0
        if self.geo_graph.num_edges:
            for _ in range(self.num_layers):
                messages = gather_rows(b_geo, self.geo_graph.src) * self._geo_weights
                agg = segment_sum(messages, self.geo_graph.dst, self.num_regions)
                b_geo = agg.relu() + b_geo
        return b0, b_geo

    def region_embeddings(
        self,
        mobility: MobilitySubgraph,
        base: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tensor:
        """Final region embeddings ``b`` for one period (Eqs. 3-5).

        ``base`` lets callers that iterate over periods share one
        :meth:`base_embeddings` evaluation across all of them.
        """
        b0, b_geo = base if base is not None else self.base_embeddings()

        # Mobility semantic aggregation (Eq. 4), undirected neighbourhood.
        src, dst = mobility.undirected_neighbors()
        if len(src):
            b_dst = gather_rows(b0, dst)
            b_src = gather_rows(b0, src)
            scores = (concat([b_dst, b_src], axis=1) @ self.attn_vector).leaky_relu(
                0.2
            )
            # concat copied b_dst and its backward only splits the incoming
            # gradient, so the gathered rows are dead weight on the tape now
            # (b_src stays: the weighted sum below re-reads it in backward).
            b_dst.release_data()
            alpha = segment_softmax(scores, dst, self.num_regions)
            weighted = b_src * alpha.expand_dims(1)
            b_mob = segment_sum(weighted, dst, self.num_regions).relu() + b0
        else:
            b_mob = b0

        # Combine the two semantics (Eq. 5).
        return self.combine(concat([b_geo, b_mob], axis=1)).relu()

    def edge_embeddings(
        self, b: Tensor, src_regions: np.ndarray, dst_regions: np.ndarray
    ) -> Tensor:
        """Capacity edge embedding ``em_ij = [b_j, b_i]`` for region pairs."""
        g_dst = gather_rows(b, dst_regions)
        g_src = gather_rows(b, src_regions)
        em = concat([g_dst, g_src], axis=1)
        # The gathered copies were consumed by the concat above; concat's
        # backward splits the gradient and gather's scatters it, so neither
        # re-reads these (E, d1) values -- drop them mid-forward.
        g_dst.release_data()
        g_src.release_data()
        return em

    @property
    def edge_embedding_dim(self) -> int:
        return 2 * self.embedding_dim

    def predict_delivery_time(self, edge_emb: Tensor) -> Tensor:
        """Reconstruct (normalised) delivery times from edge embeddings."""
        return self.time_head(edge_emb).relu().squeeze(1)

    def reconstruction_loss(self, mobility: MobilitySubgraph) -> Tensor:
        """The auxiliary loss ``O1`` (Eq. 6) for one period's subgraph."""
        if mobility.num_edges == 0:
            return Tensor(0.0)
        b = self.region_embeddings(mobility)
        edge_emb = self.edge_embeddings(b, mobility.src, mobility.dst)
        predicted = self.predict_delivery_time(edge_emb)
        return l1_loss(predicted, mobility.delivery_time)
