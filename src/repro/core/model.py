"""The full O2-SiteRec model: capacity model + recommender + joint loss.

``O2SiteRec`` owns the three input graphs (Eq. 1:
``p_sa = F_theta(G_h, G_c, G_ge)``), runs the courier capacity model per
period to produce S-U capacity edge embeddings, feeds them into the
heterogeneous recommender, and optimises the joint objective
``Loss = O2 + beta * O1`` (Eq. 17).

All four paper ablations are configuration flags:

========================  =============================================
variant                    configuration
========================  =============================================
w/o Co                     ``use_capacity=False`` (also rebuilds S-U
                           edges without the capacity-aware scope rule)
w/o CoCu                   ``use_capacity=False, use_preferences=False``
w/o NA                     ``node_attention=False``
w/o SA                     ``time_attention=False``
========================  =============================================
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..data.dataset import SiteRecDataset
from ..data.periods import TimePeriod
from ..data.split import InteractionSplit
from ..graphs import (
    CourierMobilityMultiGraph,
    RegionGeographicalGraph,
    build_hetero_multigraph,
)
from ..nn import Module
from ..optim import mse_loss
from ..parallel import parallel_map
from ..tensor import Tensor, fast_kernels_enabled
from ..tensor import plan as _plan
from ..tensor.segment import invalidate_plans_for
from .capacity import CourierCapacityModel
from .recommender import CapacityEdgeFactors, HeteroRecommender


@dataclass(frozen=True)
class O2SiteRecConfig:
    """Hyper-parameters (scaled-down defaults; paper values below)."""

    capacity_dim: int = 12  # d1: courier mobility embedding size
    embedding_dim: int = 40  # d2: hetero-graph embedding size
    node_heads: int = 5  # heads in node-level aggregation
    time_heads: int = 2  # heads in time semantics-level aggregation
    num_layers: int = 2  # l
    dropout: float = 0.1
    beta: float = 0.2  # trade-off between O2 and O1 (Eq. 17)
    use_capacity: bool = True
    use_preferences: bool = True
    node_attention: bool = True
    time_attention: bool = True
    # Implementation choices beyond the paper's text (see DESIGN.md §2);
    # exposed as flags so their contribution can be measured.
    product_channel: bool = True  # H_sa includes h ⊙ q
    commercial_in_predictor: bool = True  # pair's S-A attrs at the head
    geo_weight_mode: str = "softmax_neg_distance"
    geo_threshold_m: float = 800.0
    mobility_min_count: int = 2

    def __post_init__(self) -> None:
        if self.embedding_dim % self.node_heads:
            raise ValueError("embedding_dim must be divisible by node_heads")
        pair_dim = (3 if self.product_channel else 2) * self.embedding_dim
        if pair_dim % self.time_heads:
            raise ValueError(
                "the pair embedding width must be divisible by time_heads"
            )
        if self.beta < 0:
            raise ValueError("beta must be non-negative")

    # -- ablation constructors -------------------------------------------
    def without_capacity(self) -> "O2SiteRecConfig":
        return replace(self, use_capacity=False)

    def without_capacity_and_preferences(self) -> "O2SiteRecConfig":
        return replace(self, use_capacity=False, use_preferences=False)

    def without_node_attention(self) -> "O2SiteRecConfig":
        return replace(self, node_attention=False)

    def without_time_attention(self) -> "O2SiteRecConfig":
        return replace(self, time_attention=False)


def paper_hyperparams() -> O2SiteRecConfig:
    """The paper's Section IV-A3 settings (d1=20, d2=90, heads 5/2, ...)."""
    return O2SiteRecConfig(capacity_dim=20, embedding_dim=90)


class O2SiteRec(Module):
    """End-to-end store site recommendation model."""

    def __init__(
        self,
        dataset: SiteRecDataset,
        split: Optional[InteractionSplit] = None,
        config: Optional[O2SiteRecConfig] = None,
    ) -> None:
        super().__init__()
        self.config = config or O2SiteRecConfig()
        self.dataset = dataset

        cfg = self.config
        self.geo_graph = RegionGeographicalGraph.from_grid(
            dataset.grid, threshold_m=cfg.geo_threshold_m
        )
        self.mobility_graph = CourierMobilityMultiGraph.from_aggregates(
            dataset.aggregates, min_count=cfg.mobility_min_count
        )
        self.hetero_graph = build_hetero_multigraph(
            dataset, split=split, capacity_aware=cfg.use_capacity
        )

        if cfg.use_capacity:
            self.capacity_model: Optional[CourierCapacityModel] = CourierCapacityModel(
                self.geo_graph,
                embedding_dim=cfg.capacity_dim,
                num_layers=cfg.num_layers,
                geo_weight_mode=cfg.geo_weight_mode,
            )
            capacity_edge_dim = self.capacity_model.edge_embedding_dim
        else:
            self.capacity_model = None
            capacity_edge_dim = 0

        self.recommender = HeteroRecommender(
            self.hetero_graph,
            d2=cfg.embedding_dim,
            node_heads=cfg.node_heads,
            time_heads=cfg.time_heads,
            num_layers=cfg.num_layers,
            capacity_edge_dim=capacity_edge_dim,
            dropout=cfg.dropout,
            node_attention=cfg.node_attention,
            time_attention=cfg.time_attention,
            use_preferences=cfg.use_preferences,
            product_channel=cfg.product_channel,
            commercial_in_predictor=cfg.commercial_in_predictor,
        )
        # Grid geometry enables grid-tile sharded eval (repro.core.shard).
        self.recommender.grid_shape = (dataset.grid.rows, dataset.grid.cols)

        self._store_index = {
            int(r): i for i, r in enumerate(self.hetero_graph.store_regions)
        }
        # Vectorised region -> store-node lookup table (-1 = not a store).
        store_regions = self.hetero_graph.store_regions
        lut_size = int(store_regions.max()) + 1 if len(store_regions) else 1
        self._store_lut = np.full(lut_size, -1, dtype=np.int64)
        self._store_lut[store_regions] = np.arange(len(store_regions))
        # Stable per-period S-U endpoint columns: slicing su_region_pairs on
        # every pass would allocate fresh arrays and defeat the identity-keyed
        # segment-plan cache behind gather_rows' backward.
        self._su_endpoints = {
            period: (
                np.ascontiguousarray(sub.su_region_pairs[:, 0]),
                np.ascontiguousarray(sub.su_region_pairs[:, 1]),
            )
            for period, sub in self.hetero_graph.subgraphs.items()
        }
        # (region, type) pair arrays -> (store-node, type) arrays, cached by
        # input-array identity (full-batch training reuses the same pairs).
        self._pair_cache: "OrderedDict[int, tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    def _pair_indices(self, pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map (region, type) pairs to (store-node index, type) arrays."""
        key = id(pairs)
        entry = self._pair_cache.get(key)
        if entry is not None and entry[0] is pairs:
            self._pair_cache.move_to_end(key)
            return entry[1], entry[2]
        pairs_in = pairs
        pairs = np.asarray(pairs, dtype=np.int64)
        regions = pairs[:, 0]
        if regions.size:
            bad = (regions < 0) | (regions >= len(self._store_lut))
            if not bad.any():
                s_idx = self._store_lut[regions]
                bad = s_idx < 0
            if bad.any():
                raise KeyError(
                    f"region {int(regions[np.flatnonzero(bad)[0]])} is not a "
                    f"store region"
                )
        else:
            s_idx = np.zeros(0, dtype=np.int64)
        types = np.ascontiguousarray(pairs[:, 1])
        if _plan.tracing():
            # Compiled-step bind hook: ``pairs`` is (a no-copy view of) the
            # plan's pinned batch buffer.  Per replay, re-derive the store
            # and type index arrays in place -- validation included, so a
            # bad region raises exactly like the eager path -- and drop any
            # segment plans cached over their old contents.
            lut = self._store_lut
            parr = pairs

            def _rebind_pair_indices() -> None:
                regions = parr[:, 0]
                if regions.size:
                    bad = (regions < 0) | (regions >= len(lut))
                    if not bad.any():
                        s_new = lut[regions]
                        bad = s_new < 0
                    if bad.any():
                        raise KeyError(
                            f"region {int(regions[np.flatnonzero(bad)[0]])} "
                            f"is not a store region"
                        )
                    np.copyto(s_idx, s_new)
                np.copyto(types, parr[:, 1])
                invalidate_plans_for(s_idx)
                invalidate_plans_for(types)

            _plan.record_bind(_rebind_pair_indices)
        self._pair_cache[key] = (pairs_in, s_idx, types)
        while len(self._pair_cache) > 8:
            self._pair_cache.popitem(last=False)
        return s_idx, types

    def _capacity_pass(
        self,
    ) -> Tuple[Optional[Dict[TimePeriod, Tensor]], Tensor]:
        """Run the capacity model for all periods.

        Returns the per-period S-U capacity edge embeddings and the summed
        auxiliary loss O1.
        """
        if self.capacity_model is None:
            return None, Tensor(0.0)

        # The geographic aggregation is period-invariant: on the fast path it
        # is evaluated once here and shared by all periods (the reference
        # path recomputes it per period, as the pre-optimisation code did).
        fast = fast_kernels_enabled()
        base = self.capacity_model.base_embeddings() if fast else None

        def run(period: TimePeriod):
            """One period's capacity embeddings + O1 term (RNG-free)."""
            mobility = self.mobility_graph.subgraph(period)
            b = self.capacity_model.region_embeddings(mobility, base=base)
            src_regions, dst_regions = self._su_endpoints[period]
            if fast:
                # Hand the region table to the recommender ungathered; the
                # aggregator projects it at table size (see
                # CapacityEdgeFactors / FactoredEdgeAttr).
                su = CapacityEdgeFactors(b, dst_regions, src_regions)
            else:
                su = self.capacity_model.edge_embeddings(b, src_regions, dst_regions)
            diff = None
            if mobility.num_edges:
                edge_emb = self.capacity_model.edge_embeddings(
                    b, mobility.src, mobility.dst
                )
                predicted = self.capacity_model.predict_delivery_time(edge_emb)
                diff = (predicted - Tensor(mobility.delivery_time)).abs().mean()
            return su, diff

        # The per-period passes share parameters but build independent
        # autograd subgraphs, so they fan out on the thread pool; O1 terms
        # are summed in period order afterwards, keeping the reduction
        # deterministic regardless of scheduling.
        results = parallel_map(run, list(TimePeriod))
        capacity_su = {p: su for p, (su, _) in zip(TimePeriod, results)}
        o1_total = None
        for _, diff in results:
            if diff is not None:
                o1_total = diff if o1_total is None else o1_total + diff
        o1 = o1_total if o1_total is not None else Tensor(0.0)
        return capacity_su, o1 * (1.0 / len(TimePeriod))

    def forward(self, pairs: np.ndarray) -> Tensor:
        """Predicted normalised order counts for (region, type) pairs."""
        s_idx, types = self._pair_indices(pairs)
        capacity_su, _ = self._capacity_pass()
        return self.recommender(s_idx, types, capacity_su)

    def loss(self, pairs: np.ndarray, targets: np.ndarray) -> Tuple[Tensor, float, float]:
        """Joint loss (Eq. 17).  Returns (loss, O2 value, O1 value)."""
        s_idx, types = self._pair_indices(pairs)
        capacity_su, o1 = self._capacity_pass()
        predictions = self.recommender(s_idx, types, capacity_su)
        o2 = mse_loss(predictions, targets)
        total = o2 + o1 * self.config.beta
        return total, float(o2.data), float(o1.data)

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        """Inference-mode predictions as a numpy array."""
        was_training = self.training
        self.eval()
        try:
            return self.forward(pairs).numpy().copy()
        finally:
            if was_training:
                self.train()

    def export_embeddings(self) -> Dict[TimePeriod, Tuple[np.ndarray, np.ndarray]]:
        """Frozen per-period propagation outputs ``{period: (h, q)}``.

        Runs the capacity pass and the full multi-graph propagation once in
        eval mode (dropout off) and returns plain numpy copies of the
        store-region and store-type embeddings for every period.  These are
        query-independent: scoring any (region, type) pair afterwards only
        needs a gather + time attention + the predictor MLP, which is what
        :class:`repro.serve.ModelSnapshot` exploits.
        """
        was_training = self.training
        self.eval()
        try:
            capacity_su, _ = self._capacity_pass()
            per_period = self.recommender.propagate_periods(capacity_su)
            return {
                period: (h.data.copy(), q.data.copy())
                for period, (h, q) in per_period.items()
            }
        finally:
            if was_training:
                self.train()

    def period_attention(self, pairs: np.ndarray) -> np.ndarray:
        """Attention over periods per pair, shape ``(K, P)``.

        Runs an inference pass and returns the time semantics-level
        attention distribution (averaged over heads) -- which periods the
        model weighs for each (region, type) pair.  Requires
        ``time_attention=True``.
        """
        if not self.config.time_attention:
            raise ValueError("period_attention requires time_attention=True")
        self.predict(pairs)
        weights = self.recommender.time_attention.last_weights  # (P, K, H)
        if weights is None:  # pragma: no cover - defensive
            raise RuntimeError("no forward pass recorded attention weights")
        return weights.mean(axis=2).T.copy()
