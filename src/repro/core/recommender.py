"""Heterogeneous multi-graph based recommendation model (Section III-E).

Five steps, mirroring Fig. 9:

1. *Node attributes fusion*: ID embeddings fused with geographic features
   (``h_s = sigma(W_S [h'_s, f_s])`` etc.).
2. *Edge attributes fusion*: S-U edge attributes concatenated with the
   courier capacity edge embedding from the capacity model.
3. *Node-level aggregation* (Eqs. 7-12): store-region, customer-region and
   store-type embeddings updated for ``l`` layers using the edge-type and
   edge-attribute aware multi-head attention ``Aggre``.
4. *Time semantics-level aggregation* (Eqs. 13-15): per-(s, a) embeddings
   from each period combined with multi-head attention over periods.
5. *Prediction* (Eq. 16): an MLP maps the fused embedding to the order
   count; the MSE is the main loss ``O2``.

Ablations: ``node_attention=False`` swaps ``Aggre`` for mean aggregation
(w/o NA); ``time_attention=False`` averages the periods (w/o SA);
``use_preferences=False`` drops the S-U and U-A edges (half of w/o CoCu).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.periods import TimePeriod
from ..graphs.hetero import RegionTypeHeteroMultiGraph
from ..nn import (
    MLP,
    Dropout,
    Embedding,
    FactoredEdgeAttr,
    Linear,
    MeanSegmentAggregation,
    Module,
    ModuleList,
    MultiHeadSegmentAttention,
)
from ..parallel import num_threads, parallel_map
from ..tensor import (
    Tensor,
    concat,
    fast_kernels_enabled,
    gather_rows,
    period_attention,
    softmax,
    stack,
)
from ..tensor import plan as _plan
from ..tensor.segment import invalidate_plans_for


from ..runtime import env_flag as _env_flag

_batch_periods = _env_flag("O2_BATCH_PERIODS", True)


def batch_periods_enabled() -> bool:
    """Whether the serial fast path stacks all periods into one graph."""
    return _batch_periods


def set_batch_periods(enabled: bool) -> bool:
    """Toggle batched-period propagation; returns the previous setting.

    The batched pass computes the same propagation with period-stacked
    arrays; predictions match the per-period path to ~1e-15 and gradients
    to ~1e-16 (summation order inside the taller matmuls differs).  Turning
    it off forces the per-period path even with one worker thread -- the
    serial reference for the bit-for-bit threaded-equivalence guarantee.
    """
    global _batch_periods
    previous = _batch_periods
    _batch_periods = bool(enabled)
    return previous


def _make_aggregator(
    node_attention: bool,
    query_dim: int,
    source_dim: int,
    edge_dim: int,
    num_heads: int,
    head_dim: int,
) -> Module:
    if node_attention:
        return MultiHeadSegmentAttention(
            query_dim=query_dim,
            source_dim=source_dim,
            edge_dim=edge_dim,
            num_heads=num_heads,
            head_dim=head_dim,
        )
    return MeanSegmentAggregation(source_dim, num_heads * head_dim)


class CapacityEdgeFactors:
    """Per-period capacity edge embeddings in factored form.

    The capacity model's S-U edge embedding is
    ``concat([b[dst_regions], b[src_regions]])`` for the period's region
    embedding table ``b`` (``num_regions`` rows).  The fast path hands the
    table and the endpoint index arrays to the aggregator ungathered (as a
    :class:`repro.nn.FactoredEdgeAttr`), so the fusion layer projects ``b``
    at table size instead of running an E-row matmul over gathered copies.
    """

    __slots__ = ("values", "dst_regions", "src_regions")

    def __init__(
        self, values: Tensor, dst_regions: np.ndarray, src_regions: np.ndarray
    ) -> None:
        self.values = values
        self.dst_regions = dst_regions
        self.src_regions = src_regions

    def dense(self) -> Tensor:
        """The equivalent gathered ``(E, 2 * d1)`` edge-embedding tensor."""
        return concat(
            [
                gather_rows(self.values, self.dst_regions),
                gather_rows(self.values, self.src_regions),
            ],
            axis=1,
        )


class _EdgeSet:
    """Edge endpoint arrays + attribute tensors for one propagation pass.

    A pass may cover a single period (reference / threaded per-period paths)
    or all periods stacked into one block-diagonal graph with node indices
    offset per period (the batched fast path) -- the node-level layer is
    agnostic to which.
    """

    __slots__ = (
        "sa_src_s",
        "sa_dst_a",
        "sa_attr",
        "su_src_u",
        "su_dst_s",
        "su_attr",
        "ua_src_a",
        "ua_dst_u",
        "ua_attr",
    )

    def __init__(
        self,
        sa_src_s: np.ndarray,
        sa_dst_a: np.ndarray,
        sa_attr: Tensor,
        su_src_u: np.ndarray,
        su_dst_s: np.ndarray,
        su_attr: Optional[Tensor],
        ua_src_a: np.ndarray,
        ua_dst_u: np.ndarray,
        ua_attr: Optional[Tensor],
    ) -> None:
        self.sa_src_s = sa_src_s
        self.sa_dst_a = sa_dst_a
        self.sa_attr = sa_attr
        self.su_src_u = su_src_u
        self.su_dst_s = su_dst_s
        self.su_attr = su_attr
        self.ua_src_a = ua_src_a
        self.ua_dst_u = ua_dst_u
        self.ua_attr = ua_attr

    def with_su_attr(self, su_attr: Tensor) -> "_EdgeSet":
        """A copy of this edge set with a different S-U attribute tensor."""
        return _EdgeSet(
            self.sa_src_s,
            self.sa_dst_a,
            self.sa_attr,
            self.su_src_u,
            self.su_dst_s,
            su_attr,
            self.ua_src_a,
            self.ua_dst_u,
            self.ua_attr,
        )


class _NodeLevelLayer(Module):
    """One round of node-level aggregation over all edge types (Eqs. 7-9)."""

    def __init__(
        self,
        d2: int,
        su_edge_dim: int,
        num_heads: int,
        node_attention: bool,
    ) -> None:
        super().__init__()
        if d2 % num_heads:
            raise ValueError(f"embedding size {d2} not divisible by {num_heads} heads")
        head_dim = d2 // num_heads
        make = lambda src_dim, edge_dim: _make_aggregator(  # noqa: E731
            node_attention, d2, src_dim, edge_dim, num_heads, head_dim
        )
        # One aggregator (and thus one W_e) per edge type/direction.
        self.su = make(d2, su_edge_dim)  # customer-region -> store-region
        self.sa_to_s = make(d2, 3)  # type -> store-region
        self.ua = make(d2, 1)  # type -> customer-region
        self.sa_to_a = make(d2, 3)  # store-region -> type
        self.w_s = Linear(d2, d2)
        self.w_u = Linear(d2, d2)
        self.w_a = Linear(d2, d2)

    def forward(
        self,
        h: Tensor,
        z: Tensor,
        q: Tensor,
        edges: _EdgeSet,
        use_preferences: bool,
    ):
        # Store-region update (Eq. 7): customers in scope + incident types.
        agg_s = self.sa_to_s(h, q, edges.sa_dst_a, edges.sa_src_s, edges.sa_attr)
        if use_preferences:
            agg_s = agg_s + self.su(
                h, z, edges.su_src_u, edges.su_dst_s, edges.su_attr
            )
        h_new = self.w_s(agg_s + h).relu()

        # Customer-region update (Eq. 8): preferred types.
        if use_preferences:
            agg_u = self.ua(z, q, edges.ua_src_a, edges.ua_dst_u, edges.ua_attr)
            z_new = self.w_u(agg_u + z).relu()
        else:
            z_new = self.w_u(z).relu()

        # Store-type update (Eq. 9): interacting store-regions.
        agg_a = self.sa_to_a(q, h, edges.sa_src_s, edges.sa_dst_a, edges.sa_attr)
        q_new = self.w_a(agg_a + q).relu()
        return h_new, z_new, q_new


class _TimeSemanticsAttention(Module):
    """Multi-head attention over periods (Eqs. 13-15).

    After each forward pass, :attr:`last_weights` holds the attention
    distribution over periods, shape ``(P, K, H)`` -- the interpretability
    signal behind the paper's claim that "various types of stores are
    sensitive to different periods".
    """

    def __init__(self, dim: int, num_heads: int) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by {num_heads} time heads")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.key_proj = Linear(dim, dim, bias=False)
        self.query_proj = Linear(dim, dim, bias=False)
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.last_weights: Optional[np.ndarray] = None

    def forward(self, stacked: Tensor) -> Tensor:
        """``stacked`` has shape (P, K, dim); returns (K, dim)."""
        periods, k, dim = stacked.shape
        flat = stacked.reshape(periods * k, dim)
        if fast_kernels_enabled():
            return self.attend_flat(flat, periods)
        keys = self.key_proj(flat).reshape(periods, k, self.num_heads, self.head_dim)
        queries = self.query_proj(flat).reshape(
            periods, k, self.num_heads, self.head_dim
        )
        scores = (keys * queries).sum(axis=3) * self.scale  # (P, K, H)
        weights = softmax(scores, axis=0)
        if not self.training:
            # The interpretability signal is only consumed by offline
            # analyses (period_attention); copying the (P, K, H) weights on
            # every training forward is pure allocation churn.
            self.last_weights = weights.data.copy()
        mixed = (keys * weights.expand_dims(3)).sum(axis=0)  # (K, H, hd)
        return mixed.reshape(k, dim).relu()

    def attend_flat(self, flat: Tensor, periods: int) -> Tensor:
        """Fused attention over a period-major ``(P*K, dim)`` tensor.

        One autograd node (see :func:`repro.tensor.period_attention`); the
        batched forward calls this directly to skip the stack/reshape.
        """
        out, weights = period_attention(
            flat,
            self.key_proj.weight,
            self.query_proj.weight,
            periods,
            self.num_heads,
            self.scale,
        )
        if not self.training:
            self.last_weights = weights
        return out


class HeteroRecommender(Module):
    """The demand-side model: multi-graph propagation + order prediction."""

    def __init__(
        self,
        graph: RegionTypeHeteroMultiGraph,
        d2: int = 40,
        node_heads: int = 5,
        time_heads: int = 2,
        num_layers: int = 2,
        capacity_edge_dim: int = 0,
        dropout: float = 0.1,
        node_attention: bool = True,
        time_attention: bool = True,
        use_preferences: bool = True,
        product_channel: bool = True,
        commercial_in_predictor: bool = True,
    ) -> None:
        super().__init__()
        self.graph = graph
        self.num_layers = num_layers
        self.use_preferences = use_preferences
        self.time_attention_enabled = time_attention
        feature_dim = graph.store_features.shape[1]

        self.store_embedding = Embedding(graph.num_store_nodes, d2)
        self.customer_embedding = Embedding(graph.num_customer_nodes, d2)
        self.type_embedding = Embedding(graph.num_types, d2)
        self.fuse_store = Linear(d2 + feature_dim, d2)  # W_S (fusion)
        self.fuse_customer = Linear(d2 + feature_dim, d2)  # W_U (fusion)
        self.dropout = Dropout(dropout)

        su_edge_dim = 2 + capacity_edge_dim  # [distance, transactions, em^c]
        self.layers = ModuleList(
            _NodeLevelLayer(d2, su_edge_dim, node_heads, node_attention)
            for _ in range(num_layers)
        )
        # H_sa,t = [h_s,t, q_a,t, h_s,t * q_a,t]: the elementwise product
        # channel lets the predictor express region-x-type interactions
        # directly (a purely additive first layer cannot fit per-pair
        # variation; see DESIGN.md).  Both it and the commercial predictor
        # inputs are flags so their contribution can be ablated.
        self.product_channel = product_channel
        self.commercial_in_predictor = commercial_in_predictor
        pair_dim = (3 if product_channel else 2) * d2
        self.time_attention = _TimeSemanticsAttention(pair_dim, time_heads)
        # The predictor additionally sees the pair's own observable S-A
        # commercial attributes (competitiveness, complementarity) -- the
        # graph carries them on S-A edges but attention mixes them across a
        # region's types, losing the pair-specific value.  The history-order
        # channel is deliberately NOT fed here (for training pairs it equals
        # the target, a pure shortcut).
        head_in = pair_dim + (2 if commercial_in_predictor else 0)
        self.predictor = MLP(head_in, [d2], 1, dropout=dropout)
        self._d2 = d2
        self._pair_commercial = self._dense_commercial(graph)

        self._store_features = Tensor(graph.store_features)
        self._customer_features = Tensor(graph.customer_features)
        # Hoisted per-forward constants: edge attribute matrices never
        # change after graph construction, so wrap them once instead of
        # re-allocating a Tensor per layer per period per step.
        self._sa_attr = Tensor(graph.sa_attr)
        self._su_attr = {
            period: Tensor(graph.subgraph(period).su_attr) for period in TimePeriod
        }
        self._ua_attr = {
            period: Tensor(graph.subgraph(period).ua_attr) for period in TimePeriod
        }
        # Dense commercial rows gathered per (pairs) identity -- full-batch
        # training reuses the same pair arrays every epoch.
        self._commercial_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        # All periods stacked into one block-diagonal graph (built lazily):
        # node index of store s in period p is ``s + p * num_store_nodes``,
        # and likewise for customer and type nodes.
        self._batched_edges: Optional[_EdgeSet] = None
        # Period-offset region index arrays for factored capacity attributes
        # on the batched path (row of region r in period p is ``r + p * R``).
        self._batched_cap_idx: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Period-offset pair index arrays for the batched forward, cached by
        # pair-array identity like the commercial rows.
        self._offset_idx_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        # (rows, cols) of the underlying region grid, attached by O2SiteRec;
        # required (with eval mode + fast kernels) for grid-tile sharded
        # propagation (repro.core.shard) to engage.
        self.grid_shape: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    def _fuse_base(self):
        """Step 1 (pre-dropout): node attribute fusion.

        Deterministic in the parameters, hence identical for every period
        -- the fast path computes it once per forward and only the dropout
        masks differ per period.
        """
        h0 = self.fuse_store(
            concat([self.store_embedding(), self._store_features], axis=1)
        ).relu()
        z0 = self.fuse_customer(
            concat([self.customer_embedding(), self._customer_features], axis=1)
        ).relu()
        q0 = self.type_embedding()
        return h0, z0, q0

    def _fused_nodes(self):
        """Step 1: node attribute fusion (with dropout)."""
        h0, z0, q0 = self._fuse_base()
        return self.dropout(h0), self.dropout(z0), q0

    def _period_edges(self, period: TimePeriod, capacity_su: Optional[Tensor]):
        """One period's edge set (step 2: S-U attrs fused with capacity)."""
        subgraph = self.graph.subgraph(period)
        fast = fast_kernels_enabled()
        su_attr = self._su_attr[period] if fast else Tensor(subgraph.su_attr)
        if isinstance(capacity_su, CapacityEdgeFactors):
            su_attr = FactoredEdgeAttr(
                su_attr,
                [
                    (capacity_su.values, capacity_su.dst_regions),
                    (capacity_su.values, capacity_su.src_regions),
                ],
            )
        elif capacity_su is not None:
            su_attr = concat([su_attr, capacity_su], axis=1)
        return _EdgeSet(
            sa_src_s=self.graph.sa_src_s,
            sa_dst_a=self.graph.sa_dst_a,
            sa_attr=self._sa_attr if fast else Tensor(self.graph.sa_attr),
            su_src_u=subgraph.su_src_u,
            su_dst_s=subgraph.su_dst_s,
            su_attr=su_attr,
            ua_src_a=subgraph.ua_src_a,
            ua_dst_u=subgraph.ua_dst_u,
            ua_attr=self._ua_attr[period] if fast else Tensor(subgraph.ua_attr),
        )

    def _propagate(
        self,
        period: TimePeriod,
        capacity_su: Optional[Tensor],
        fused=None,
    ):
        """Steps 2-3 for one period: edge fusion + node-level aggregation.

        ``fused`` lets :meth:`propagate_periods` pass in the per-period
        dropout-applied node embeddings (drawn serially so the RNG stream is
        identical regardless of how periods are scheduled); without it the
        nodes are fused here, as in the reference path.
        """
        h, z, q = self._fused_nodes() if fused is None else fused
        edges = self._period_edges(period, capacity_su)
        for layer in self.layers:
            h, z, q = layer(h, z, q, edges, self.use_preferences)
        return h, q

    # -- batched all-periods propagation --------------------------------
    def _build_batched(self) -> _EdgeSet:
        """Stack all periods into one block-diagonal edge set.

        Node indices are offset by ``period * num_nodes`` per node family,
        so a single layer pass over the stacked arrays computes exactly the
        same messages as one pass per period -- with 1/P the Python and
        kernel-dispatch overhead and P-fold taller matmuls.
        """
        g = self.graph
        periods = list(TimePeriod)
        n_s, n_u, n_t = g.num_store_nodes, g.num_customer_nodes, g.num_types
        subs = [g.subgraph(p) for p in periods]
        rng = range(len(periods))
        return _EdgeSet(
            sa_src_s=np.concatenate([g.sa_src_s + p * n_s for p in rng]),
            sa_dst_a=np.concatenate([g.sa_dst_a + p * n_t for p in rng]),
            sa_attr=Tensor(np.tile(g.sa_attr, (len(periods), 1))),
            su_src_u=np.concatenate([s.su_src_u + p * n_u for p, s in zip(rng, subs)]),
            su_dst_s=np.concatenate([s.su_dst_s + p * n_s for p, s in zip(rng, subs)]),
            su_attr=Tensor(np.concatenate([s.su_attr for s in subs], axis=0)),
            ua_src_a=np.concatenate([s.ua_src_a + p * n_t for p, s in zip(rng, subs)]),
            ua_dst_u=np.concatenate([s.ua_dst_u + p * n_u for p, s in zip(rng, subs)]),
            ua_attr=Tensor(np.concatenate([s.ua_attr for s in subs], axis=0)),
        )

    def _propagate_batched(
        self, capacity_su: Optional[Dict[TimePeriod, Tensor]] = None
    ) -> Tuple[Tensor, Tensor]:
        """Steps 2-3 for all periods at once; returns stacked ``(h, q)``.

        Row block ``p`` of the outputs is period ``p``'s embedding matrix.
        Dropout masks are drawn in the same order as the per-period paths,
        so all fast paths consume an identical RNG stream.
        """
        periods = list(TimePeriod)
        if self._batched_edges is None:
            self._batched_edges = self._build_batched()
        edges = self._batched_edges
        if capacity_su is not None and isinstance(
            capacity_su[periods[0]], CapacityEdgeFactors
        ):
            b_all = concat([capacity_su[p].values for p in periods], axis=0)
            if self._batched_cap_idx is None:
                num_regions = capacity_su[periods[0]].values.shape[0]
                self._batched_cap_idx = (
                    np.concatenate(
                        [
                            capacity_su[p].dst_regions + i * num_regions
                            for i, p in enumerate(periods)
                        ]
                    ),
                    np.concatenate(
                        [
                            capacity_su[p].src_regions + i * num_regions
                            for i, p in enumerate(periods)
                        ]
                    ),
                )
            dst_all, src_all = self._batched_cap_idx
            edges = edges.with_su_attr(
                FactoredEdgeAttr(
                    edges.su_attr, [(b_all, dst_all), (b_all, src_all)]
                )
            )
        elif capacity_su is not None:
            cap = concat([capacity_su[p] for p in periods], axis=0)
            edges = edges.with_su_attr(concat([edges.su_attr, cap], axis=1))

        h0, z0, q0 = self._fuse_base()
        dropped = [(self.dropout(h0), self.dropout(z0)) for _ in periods]
        h = concat([d[0] for d in dropped], axis=0)
        z = concat([d[1] for d in dropped], axis=0)
        q = concat([q0] * len(periods), axis=0)
        from .shard import shard_train_tiles_for

        tiles = shard_train_tiles_for(self, capacity_su)
        if tiles:
            # Banded sharded training step (O2_SHARD_TRAIN): same layers,
            # same stacked edges, bit-identical outputs and gradients --
            # see repro.core.shard_train.
            from .shard_train import apply_layers_banded

            h, z, q = apply_layers_banded(self, edges, h, z, q, tiles)
        else:
            for layer in self.layers:
                h, z, q = layer(h, z, q, edges, self.use_preferences)
        return h, q

    def propagate_periods(
        self, capacity_su: Optional[Dict[TimePeriod, Tensor]] = None
    ) -> Dict[TimePeriod, Tuple[Tensor, Tensor]]:
        """Steps 2-3 for every period: ``{period: (h, q)}``.

        The propagation is completely query-independent -- only the final
        gather + time attention + predictor depend on the requested pairs --
        so these outputs can be frozen once per trained model and reused for
        every online query (see :mod:`repro.serve`).

        Fast-path execution: with more than one worker thread available
        (``O2_NUM_THREADS``), the P periods build their disjoint autograd
        subgraphs concurrently on the shared thread pool; the serial
        fallback runs one batched pass over the period-stacked graph.  All
        dropout masks are drawn serially in period order in either case, so
        threaded and serial runs are bit-for-bit identical.
        """
        periods = list(TimePeriod)
        if not fast_kernels_enabled():
            out: Dict[TimePeriod, Tuple[Tensor, Tensor]] = {}
            for period in periods:
                cap = capacity_su.get(period) if capacity_su else None
                out[period] = self._propagate(period, cap)
            return out

        from .shard import propagate_periods_sharded, shard_tiles_for

        tiles = shard_tiles_for(self, capacity_su)
        if tiles:
            # Metropolis-scale eval: fan the aggregation out over grid-tile
            # workers; bit-identical to the per-period path below.
            return propagate_periods_sharded(self, capacity_su, tiles)

        if num_threads(len(periods)) > 1 or not batch_periods_enabled():
            h0, z0, q0 = self._fuse_base()  # shared across periods
            fused = {p: (self.dropout(h0), self.dropout(z0), q0) for p in periods}

            def run(period: TimePeriod) -> Tuple[Tensor, Tensor]:
                cap = capacity_su.get(period) if capacity_su else None
                return self._propagate(period, cap, fused=fused[period])

            return dict(zip(periods, parallel_map(run, periods)))

        h_b, q_b = self._propagate_batched(capacity_su)
        n_s, n_t = self.graph.num_store_nodes, self.graph.num_types
        return {
            period: (
                h_b[p * n_s : (p + 1) * n_s],
                q_b[p * n_t : (p + 1) * n_t],
            )
            for p, period in enumerate(periods)
        }

    def forward(
        self,
        pairs_store_idx: np.ndarray,
        pairs_type: np.ndarray,
        capacity_su: Optional[Dict[TimePeriod, Tensor]] = None,
    ) -> Tensor:
        """Predict normalised order counts for (store-node, type) pairs."""
        from .shard import shard_tiles_for

        periods = list(TimePeriod)
        if (
            fast_kernels_enabled()
            and batch_periods_enabled()
            and num_threads(len(periods)) <= 1
            and not shard_tiles_for(self, capacity_su)
        ):
            # Batched path: gather all periods' pair rows straight from the
            # stacked embeddings with period-offset indices -- one gather
            # per node family instead of one per family per period.
            h_b, q_b = self._propagate_batched(capacity_su)
            idx_s, idx_a = self._offset_pair_indices(pairs_store_idx, pairs_type)
            k = len(pairs_store_idx)
            h_pairs = gather_rows(h_b, idx_s)
            q_pairs = gather_rows(q_b, idx_a)
            blocks = [h_pairs, q_pairs]
            if self.product_channel:
                blocks.append(h_pairs * q_pairs)
            flat = concat(blocks, axis=1)  # (P*K, pair_dim), period-major
            if self.time_attention_enabled:
                # Row p*K + j of ``flat`` equals row j of period p's pair
                # embedding bit-for-bit, so the fused attention node sees
                # the very same operands as the per-period path's
                # stack+reshape -- the predictions stay bitwise identical.
                fused = self.time_attention.attend_flat(flat, len(periods))
            else:
                pair_dim = (3 if self.product_channel else 2) * self._d2
                stacked = flat.reshape(len(periods), k, pair_dim)
                fused = stacked.mean(axis=0)  # w/o SA ablation
        else:
            per_period: List[Tensor] = []
            per_period_hq = self.propagate_periods(capacity_su)
            for period in periods:
                h_t, q_t = per_period_hq[period]
                h_pairs = gather_rows(h_t, pairs_store_idx)
                q_pairs = gather_rows(q_t, pairs_type)
                blocks = [h_pairs, q_pairs]
                if self.product_channel:
                    blocks.append(h_pairs * q_pairs)
                per_period.append(concat(blocks, axis=1))
            stacked = stack(per_period, axis=0)  # (P, K, pair_dim)
            if self.time_attention_enabled:
                fused = self.time_attention(stacked)
            else:
                fused = stacked.mean(axis=0)  # w/o SA ablation
        if self.commercial_in_predictor:
            fused = concat(
                [fused, self._commercial_rows(pairs_store_idx, pairs_type)], axis=1
            )
        return self.predictor(fused).squeeze(1)

    def _offset_pair_indices(
        self, pairs_store_idx: np.ndarray, pairs_type: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Period-offset (P*K,) index arrays into the stacked embeddings.

        Cached by pair-array identity so full-batch training reuses the
        arrays (and the segment plans built on them) every epoch.
        """
        key = (id(pairs_store_idx), id(pairs_type))
        entry = self._offset_idx_cache.get(key)
        if entry is not None and entry[0] is pairs_store_idx and entry[1] is pairs_type:
            self._offset_idx_cache.move_to_end(key)
            return entry[2], entry[3]
        num_periods = len(TimePeriod)
        offs = np.arange(num_periods, dtype=np.int64)[:, None]
        s = np.asarray(pairs_store_idx, dtype=np.int64)[None, :]
        a = np.asarray(pairs_type, dtype=np.int64)[None, :]
        idx_s = (s + offs * self.graph.num_store_nodes).reshape(-1)
        idx_a = (a + offs * self.graph.num_types).reshape(-1)
        if _plan.tracing():
            # Compiled-step bind hook: the pair arrays are refreshed in
            # place per replay (see O2SiteRec._pair_indices), so recompute
            # the offset arrays from them -- same expressions as above --
            # and drop any segment plans built over the old contents.
            ns, nt = self.graph.num_store_nodes, self.graph.num_types

            def _rebind_offsets() -> None:
                s2 = np.asarray(pairs_store_idx, dtype=np.int64)[None, :]
                a2 = np.asarray(pairs_type, dtype=np.int64)[None, :]
                np.copyto(idx_s, (s2 + offs * ns).reshape(-1))
                np.copyto(idx_a, (a2 + offs * nt).reshape(-1))
                invalidate_plans_for(idx_s)
                invalidate_plans_for(idx_a)

            _plan.record_bind(_rebind_offsets)
        self._offset_idx_cache[key] = (pairs_store_idx, pairs_type, idx_s, idx_a)
        while len(self._offset_idx_cache) > 8:
            self._offset_idx_cache.popitem(last=False)
        return idx_s, idx_a

    def _commercial_rows(
        self, pairs_store_idx: np.ndarray, pairs_type: np.ndarray
    ) -> Tensor:
        """Dense commercial attributes for the requested pairs.

        The gather is a constant for a fixed pair of index arrays, so it is
        cached by array identity -- full-batch training and repeated
        evaluation hit the cache every epoch.
        """
        key = (id(pairs_store_idx), id(pairs_type))
        entry = self._commercial_cache.get(key)
        if entry is not None and entry[0] is pairs_store_idx and entry[1] is pairs_type:
            self._commercial_cache.move_to_end(key)
            return entry[2]
        value = Tensor(self._pair_commercial[pairs_store_idx, pairs_type])
        if _plan.tracing():
            dense = self._pair_commercial
            vdata = value.data

            def _rebind_commercial() -> None:
                np.copyto(vdata, dense[pairs_store_idx, pairs_type])

            _plan.record_bind(_rebind_commercial)
        self._commercial_cache[key] = (pairs_store_idx, pairs_type, value)
        while len(self._commercial_cache) > 8:
            self._commercial_cache.popitem(last=False)
        return value

    @staticmethod
    def _dense_commercial(graph: RegionTypeHeteroMultiGraph) -> np.ndarray:
        """Dense (nS, T, 2) competitiveness/complementarity from S-A edges."""
        dense = np.zeros((graph.num_store_nodes, graph.num_types, 2))
        dense[graph.sa_src_s, graph.sa_dst_a] = graph.sa_attr[:, :2]
        return dense
