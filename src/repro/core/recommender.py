"""Heterogeneous multi-graph based recommendation model (Section III-E).

Five steps, mirroring Fig. 9:

1. *Node attributes fusion*: ID embeddings fused with geographic features
   (``h_s = sigma(W_S [h'_s, f_s])`` etc.).
2. *Edge attributes fusion*: S-U edge attributes concatenated with the
   courier capacity edge embedding from the capacity model.
3. *Node-level aggregation* (Eqs. 7-12): store-region, customer-region and
   store-type embeddings updated for ``l`` layers using the edge-type and
   edge-attribute aware multi-head attention ``Aggre``.
4. *Time semantics-level aggregation* (Eqs. 13-15): per-(s, a) embeddings
   from each period combined with multi-head attention over periods.
5. *Prediction* (Eq. 16): an MLP maps the fused embedding to the order
   count; the MSE is the main loss ``O2``.

Ablations: ``node_attention=False`` swaps ``Aggre`` for mean aggregation
(w/o NA); ``time_attention=False`` averages the periods (w/o SA);
``use_preferences=False`` drops the S-U and U-A edges (half of w/o CoCu).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.periods import TimePeriod
from ..graphs.hetero import HeteroSubgraph, RegionTypeHeteroMultiGraph
from ..nn import (
    MLP,
    Dropout,
    Embedding,
    Linear,
    MeanSegmentAggregation,
    Module,
    ModuleList,
    MultiHeadSegmentAttention,
)
from ..tensor import Tensor, concat, gather_rows, softmax, stack


def _make_aggregator(
    node_attention: bool,
    query_dim: int,
    source_dim: int,
    edge_dim: int,
    num_heads: int,
    head_dim: int,
) -> Module:
    if node_attention:
        return MultiHeadSegmentAttention(
            query_dim=query_dim,
            source_dim=source_dim,
            edge_dim=edge_dim,
            num_heads=num_heads,
            head_dim=head_dim,
        )
    return MeanSegmentAggregation(source_dim, num_heads * head_dim)


class _NodeLevelLayer(Module):
    """One round of node-level aggregation over all edge types (Eqs. 7-9)."""

    def __init__(
        self,
        d2: int,
        su_edge_dim: int,
        num_heads: int,
        node_attention: bool,
    ) -> None:
        super().__init__()
        if d2 % num_heads:
            raise ValueError(f"embedding size {d2} not divisible by {num_heads} heads")
        head_dim = d2 // num_heads
        make = lambda src_dim, edge_dim: _make_aggregator(  # noqa: E731
            node_attention, d2, src_dim, edge_dim, num_heads, head_dim
        )
        # One aggregator (and thus one W_e) per edge type/direction.
        self.su = make(d2, su_edge_dim)  # customer-region -> store-region
        self.sa_to_s = make(d2, 3)  # type -> store-region
        self.ua = make(d2, 1)  # type -> customer-region
        self.sa_to_a = make(d2, 3)  # store-region -> type
        self.w_s = Linear(d2, d2)
        self.w_u = Linear(d2, d2)
        self.w_a = Linear(d2, d2)

    def forward(
        self,
        h: Tensor,
        z: Tensor,
        q: Tensor,
        graph: RegionTypeHeteroMultiGraph,
        subgraph: HeteroSubgraph,
        su_attr: Optional[Tensor],
        use_preferences: bool,
    ):
        sa_attr = Tensor(graph.sa_attr)
        # Store-region update (Eq. 7): customers in scope + incident types.
        agg_s = self.sa_to_s(h, q, graph.sa_dst_a, graph.sa_src_s, sa_attr)
        if use_preferences:
            agg_s = agg_s + self.su(
                h, z, subgraph.su_src_u, subgraph.su_dst_s, su_attr
            )
        h_new = self.w_s(agg_s + h).relu()

        # Customer-region update (Eq. 8): preferred types.
        if use_preferences:
            agg_u = self.ua(
                z, q, subgraph.ua_src_a, subgraph.ua_dst_u, Tensor(subgraph.ua_attr)
            )
            z_new = self.w_u(agg_u + z).relu()
        else:
            z_new = self.w_u(z).relu()

        # Store-type update (Eq. 9): interacting store-regions.
        agg_a = self.sa_to_a(q, h, graph.sa_src_s, graph.sa_dst_a, sa_attr)
        q_new = self.w_a(agg_a + q).relu()
        return h_new, z_new, q_new


class _TimeSemanticsAttention(Module):
    """Multi-head attention over periods (Eqs. 13-15).

    After each forward pass, :attr:`last_weights` holds the attention
    distribution over periods, shape ``(P, K, H)`` -- the interpretability
    signal behind the paper's claim that "various types of stores are
    sensitive to different periods".
    """

    def __init__(self, dim: int, num_heads: int) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by {num_heads} time heads")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.key_proj = Linear(dim, dim, bias=False)
        self.query_proj = Linear(dim, dim, bias=False)
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.last_weights: Optional[np.ndarray] = None

    def forward(self, stacked: Tensor) -> Tensor:
        """``stacked`` has shape (P, K, dim); returns (K, dim)."""
        periods, k, dim = stacked.shape
        flat = stacked.reshape(periods * k, dim)
        keys = self.key_proj(flat).reshape(periods, k, self.num_heads, self.head_dim)
        queries = self.query_proj(flat).reshape(
            periods, k, self.num_heads, self.head_dim
        )
        scores = (keys * queries).sum(axis=3) * self.scale  # (P, K, H)
        weights = softmax(scores, axis=0)
        self.last_weights = weights.data.copy()
        mixed = (keys * weights.expand_dims(3)).sum(axis=0)  # (K, H, hd)
        return mixed.reshape(k, dim).relu()


class HeteroRecommender(Module):
    """The demand-side model: multi-graph propagation + order prediction."""

    def __init__(
        self,
        graph: RegionTypeHeteroMultiGraph,
        d2: int = 40,
        node_heads: int = 5,
        time_heads: int = 2,
        num_layers: int = 2,
        capacity_edge_dim: int = 0,
        dropout: float = 0.1,
        node_attention: bool = True,
        time_attention: bool = True,
        use_preferences: bool = True,
        product_channel: bool = True,
        commercial_in_predictor: bool = True,
    ) -> None:
        super().__init__()
        self.graph = graph
        self.num_layers = num_layers
        self.use_preferences = use_preferences
        self.time_attention_enabled = time_attention
        feature_dim = graph.store_features.shape[1]

        self.store_embedding = Embedding(graph.num_store_nodes, d2)
        self.customer_embedding = Embedding(graph.num_customer_nodes, d2)
        self.type_embedding = Embedding(graph.num_types, d2)
        self.fuse_store = Linear(d2 + feature_dim, d2)  # W_S (fusion)
        self.fuse_customer = Linear(d2 + feature_dim, d2)  # W_U (fusion)
        self.dropout = Dropout(dropout)

        su_edge_dim = 2 + capacity_edge_dim  # [distance, transactions, em^c]
        self.layers = ModuleList(
            _NodeLevelLayer(d2, su_edge_dim, node_heads, node_attention)
            for _ in range(num_layers)
        )
        # H_sa,t = [h_s,t, q_a,t, h_s,t * q_a,t]: the elementwise product
        # channel lets the predictor express region-x-type interactions
        # directly (a purely additive first layer cannot fit per-pair
        # variation; see DESIGN.md).  Both it and the commercial predictor
        # inputs are flags so their contribution can be ablated.
        self.product_channel = product_channel
        self.commercial_in_predictor = commercial_in_predictor
        pair_dim = (3 if product_channel else 2) * d2
        self.time_attention = _TimeSemanticsAttention(pair_dim, time_heads)
        # The predictor additionally sees the pair's own observable S-A
        # commercial attributes (competitiveness, complementarity) -- the
        # graph carries them on S-A edges but attention mixes them across a
        # region's types, losing the pair-specific value.  The history-order
        # channel is deliberately NOT fed here (for training pairs it equals
        # the target, a pure shortcut).
        head_in = pair_dim + (2 if commercial_in_predictor else 0)
        self.predictor = MLP(head_in, [d2], 1, dropout=dropout)
        self._d2 = d2
        self._pair_commercial = self._dense_commercial(graph)

        self._store_features = Tensor(graph.store_features)
        self._customer_features = Tensor(graph.customer_features)

    # ------------------------------------------------------------------
    def _fused_nodes(self):
        """Step 1: node attribute fusion."""
        h0 = self.fuse_store(
            concat([self.store_embedding(), self._store_features], axis=1)
        ).relu()
        z0 = self.fuse_customer(
            concat([self.customer_embedding(), self._customer_features], axis=1)
        ).relu()
        q0 = self.type_embedding()
        return self.dropout(h0), self.dropout(z0), q0

    def _propagate(
        self, period: TimePeriod, capacity_su: Optional[Tensor]
    ):
        """Steps 2-3 for one period: edge fusion + node-level aggregation."""
        subgraph = self.graph.subgraph(period)
        h, z, q = self._fused_nodes()
        # Step 2: fuse the hand-crafted S-U edge attributes with the courier
        # capacity edge embedding (phi' = [phi, em^c]).
        su_attr = Tensor(subgraph.su_attr)
        if capacity_su is not None:
            su_attr = concat([su_attr, capacity_su], axis=1)
        for layer in self.layers:
            h, z, q = layer(
                h, z, q, self.graph, subgraph, su_attr, self.use_preferences
            )
        return h, q

    def propagate_periods(
        self, capacity_su: Optional[Dict[TimePeriod, Tensor]] = None
    ) -> Dict[TimePeriod, Tuple[Tensor, Tensor]]:
        """Steps 2-3 for every period: ``{period: (h, q)}``.

        The propagation is completely query-independent -- only the final
        gather + time attention + predictor depend on the requested pairs --
        so these outputs can be frozen once per trained model and reused for
        every online query (see :mod:`repro.serve`).
        """
        out: Dict[TimePeriod, Tuple[Tensor, Tensor]] = {}
        for period in TimePeriod:
            cap = capacity_su.get(period) if capacity_su else None
            out[period] = self._propagate(period, cap)
        return out

    def forward(
        self,
        pairs_store_idx: np.ndarray,
        pairs_type: np.ndarray,
        capacity_su: Optional[Dict[TimePeriod, Tensor]] = None,
    ) -> Tensor:
        """Predict normalised order counts for (store-node, type) pairs."""
        per_period: List[Tensor] = []
        per_period_hq = self.propagate_periods(capacity_su)
        for period in TimePeriod:
            h_t, q_t = per_period_hq[period]
            h_pairs = gather_rows(h_t, pairs_store_idx)
            q_pairs = gather_rows(q_t, pairs_type)
            blocks = [h_pairs, q_pairs]
            if self.product_channel:
                blocks.append(h_pairs * q_pairs)
            per_period.append(concat(blocks, axis=1))

        stacked = stack(per_period, axis=0)  # (P, K, pair_dim)
        if self.time_attention_enabled:
            fused = self.time_attention(stacked)
        else:
            fused = stacked.mean(axis=0)  # w/o SA ablation
        if self.commercial_in_predictor:
            commercial = Tensor(
                self._pair_commercial[pairs_store_idx, pairs_type]
            )
            fused = concat([fused, commercial], axis=1)
        return self.predictor(fused).squeeze(1)

    @staticmethod
    def _dense_commercial(graph: RegionTypeHeteroMultiGraph) -> np.ndarray:
        """Dense (nS, T, 2) competitiveness/complementarity from S-A edges."""
        dense = np.zeros((graph.num_store_nodes, graph.num_types, 2))
        dense[graph.sa_src_s, graph.sa_dst_a] = graph.sa_attr[:, :2]
        return dense
