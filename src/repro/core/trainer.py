"""Training loop for O2-SiteRec and any module with a ``loss`` method.

Full-batch Adam by default (the propagation over the multi-graph dominates
the cost, so mini-batching the handful of (s, a) pairs buys nothing on the
scaled-down cities); mini-batches are available via ``batch_size`` for
paper-faithful runs.  Early stopping watches a held-out slice of the
*training* pairs -- the test fold is never touched during fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..optim import Adam, CosineLR, StepLR, clip_grad_norm
from ..runtime import env_flag, tune_allocator
from ..tensor.plan import CompiledStep
from .model import O2SiteRec
from .recommender import batch_periods_enabled
from .shard import shard_train_tiles_for, use_shard_tiles, use_shard_train


@dataclass
class TrainConfig:
    """Optimisation settings (paper: Adam, lr 1e-4, batch 128)."""

    epochs: int = 60
    lr: float = 3e-3
    weight_decay: float = 1e-5
    grad_clip: float = 5.0
    batch_size: Optional[int] = None  # None = full batch
    validation_frac: float = 0.1
    patience: int = 10
    min_epochs: int = 10
    seed: int = 0
    verbose: bool = False
    # Optional learning-rate schedule: None (constant), "cosine" or "step".
    schedule: Optional[str] = None
    # Trace-and-replay step compilation (see repro.tensor.plan).  None
    # defers to the ``O2_COMPILE_STEP`` env switch (default on); replay is
    # bit-identical to eager, so this is purely a throughput knob.
    compile_step: Optional[bool] = None
    # Grid-tile sharded eval propagation (see repro.core.shard).  None
    # defers to ``O2_SHARD_TILES`` / the automatic metropolis threshold;
    # an explicit count pins it for every eval pass of this fit.
    shard_tiles: Optional[int] = None
    # Banded sharded *training* steps (see repro.core.shard_train).  None
    # defers to ``O2_SHARD_TRAIN`` (default on; the band count still comes
    # from ``shard_tiles`` / ``O2_SHARD_TILES`` and the metropolis
    # threshold); ``False`` pins every step of this fit to the dense
    # reference path.  Bit-identical either way.
    shard_train: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.schedule not in (None, "cosine", "step"):
            raise ValueError(
                f"schedule must be None, 'cosine' or 'step', got {self.schedule!r}"
            )


@dataclass
class TrainResult:
    """Loss curves and the epoch at which training stopped."""

    train_losses: List[float]
    validation_losses: List[float]
    stopped_epoch: int
    best_validation: float


def paper_train_config() -> TrainConfig:
    """The paper's optimisation settings (expect long runtimes on CPU)."""
    return TrainConfig(epochs=200, lr=1e-4, batch_size=128)


class Trainer:
    """Fits a model exposing ``loss(pairs, targets) -> (Tensor, ...)``."""

    def __init__(self, model: O2SiteRec, config: Optional[TrainConfig] = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        if self.config.schedule == "cosine":
            self.schedule = CosineLR(
                self.optimizer,
                total_epochs=self.config.epochs,
                min_lr=self.config.lr * 0.05,
            )
        elif self.config.schedule == "step":
            self.schedule = StepLR(
                self.optimizer,
                step_size=max(self.config.epochs // 3, 1),
                gamma=0.3,
            )
        else:
            self.schedule = None
        self._compiled: Optional[CompiledStep] = None

    def fit(self, pairs: np.ndarray, targets: np.ndarray) -> TrainResult:
        """Train on (region, type) pairs with normalised count targets."""
        # Training churns through large short-lived arrays; keep them in the
        # malloc arena instead of handing pages back to the kernel per op
        # (no-op off glibc or with O2_MALLOC_TUNE=0; see repro.runtime).
        tune_allocator()
        cfg = self.config
        pairs = np.asarray(pairs, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.float64)
        if len(pairs) != len(targets):
            raise ValueError("pairs and targets must have the same length")
        if len(pairs) < 2:
            raise ValueError("need at least two training pairs")

        rng = np.random.default_rng(cfg.seed)
        order = rng.permutation(len(pairs))
        n_val = max(int(len(pairs) * cfg.validation_frac), 1)
        val_idx, fit_idx = order[:n_val], order[n_val:]
        if len(fit_idx) == 0:
            fit_idx, val_idx = order, order[:1]

        fit_pairs, fit_targets = pairs[fit_idx], targets[fit_idx]
        val_pairs, val_targets = pairs[val_idx], targets[val_idx]

        train_losses: List[float] = []
        val_losses: List[float] = []
        best_val = np.inf
        best_state = None
        bad_epochs = 0
        stopped = cfg.epochs

        compile_enabled = (
            cfg.compile_step
            if cfg.compile_step is not None
            else env_flag("O2_COMPILE_STEP", True)
        )
        if compile_enabled:
            self._compiled = CompiledStep(
                loss_fn=lambda p, t: self.model.loss(p, t)[0],
                parameters=self.model.parameters(),
                optimizer=self.optimizer,
                clip_fn=lambda: clip_grad_norm(
                    self.model.parameters(), cfg.grad_clip
                ),
                # A plan is specialised on the training-mode dropout draws,
                # the period-batching layout and the banded-training gate;
                # recapture if any flips (a banded step poisons its capture
                # and runs eager -- see repro.core.shard_train -- so a gate
                # flip must not silently replay the dense plan).
                guard_fn=lambda: (
                    self.model.training,
                    batch_periods_enabled(),
                    bool(shard_train_tiles_for(
                        getattr(self.model, "recommender", None)
                    )),
                ),
            )
            # The captured tape will pin its buffers for the life of the
            # plan; swap the arena to the matching malloc profile.
            tune_allocator(profile="pinned")
        try:
            with use_shard_tiles(cfg.shard_tiles), use_shard_train(
                cfg.shard_train
            ):
                return self._fit_loop(
                    cfg, fit_pairs, fit_targets, val_pairs, val_targets, rng,
                    train_losses, val_losses, best_val, best_state, bad_epochs,
                    stopped,
                )
        finally:
            if self._compiled is not None:
                self._compiled.close()
                self._compiled = None

    def _fit_loop(
        self, cfg, fit_pairs, fit_targets, val_pairs, val_targets, rng,
        train_losses, val_losses, best_val, best_state, bad_epochs, stopped,
    ) -> TrainResult:
        for epoch in range(cfg.epochs):
            self.model.train()
            epoch_loss = self._run_epoch(fit_pairs, fit_targets, rng)
            train_losses.append(epoch_loss)
            if self.schedule is not None:
                self.schedule.step()

            val_loss = self._evaluate(val_pairs, val_targets)
            val_losses.append(val_loss)
            if cfg.verbose:
                print(
                    f"epoch {epoch + 1:3d}: train {epoch_loss:.5f} "
                    f"val {val_loss:.5f}"
                )

            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_state = self.model.state_dict()
                bad_epochs = 0
            else:
                bad_epochs += 1
                if epoch + 1 >= cfg.min_epochs and bad_epochs > cfg.patience:
                    stopped = epoch + 1
                    break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return TrainResult(
            train_losses=train_losses,
            validation_losses=val_losses,
            stopped_epoch=stopped,
            best_validation=float(best_val),
        )

    # ------------------------------------------------------------------
    def _run_epoch(
        self, pairs: np.ndarray, targets: np.ndarray, rng: np.random.Generator
    ) -> float:
        cfg = self.config
        if cfg.batch_size is None or cfg.batch_size >= len(pairs):
            # Full batch: pass the arrays through untouched so identity-keyed
            # caches (pair indices, commercial gathers, segment plans built
            # on the pair arrays) hit on every epoch.
            batch_data = [(pairs, targets)]
        else:
            order = rng.permutation(len(pairs))
            batches = np.array_split(order, int(np.ceil(len(pairs) / cfg.batch_size)))
            batch_data = [(pairs[b], targets[b]) for b in batches]

        total, count = 0.0, 0
        for batch_pairs, batch_targets in batch_data:
            if self._compiled is not None:
                # Capture-or-replay; both are full training steps.  None
                # means this batch signature cannot be compiled -- run it
                # eagerly below (fail-soft, bit-identical either way).
                loss_val = self._compiled.step(batch_pairs, batch_targets)
                if loss_val is not None:
                    total += loss_val * len(batch_pairs)
                    count += len(batch_pairs)
                    continue
            self.optimizer.zero_grad()
            loss, _, _ = self.model.loss(batch_pairs, batch_targets)
            # Retire the tape as it is walked: intermediates (and their
            # pooled buffers) free mid-backward instead of at loss rebind,
            # so peak RSS stops scaling with graph depth.
            loss.backward(free_graph=True)
            clip_grad_norm(self.model.parameters(), cfg.grad_clip)
            self.optimizer.step()
            total += float(loss.data) * len(batch_pairs)
            count += len(batch_pairs)
        return total / max(count, 1)

    def _evaluate(self, pairs: np.ndarray, targets: np.ndarray) -> float:
        self.model.eval()
        predictions = self.model.predict(pairs)
        return float(np.mean((predictions - targets) ** 2))
