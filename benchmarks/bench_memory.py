"""Memory plane: pooled-buffer training vs the reference allocation path.

Two fresh-subprocess legs on the real-city preset, identical except for the
memory plane:

* ``ref``  -- ``O2_BUFFER_POOL=0``, the untuned stock allocator (see the
  ``LEG_ENV`` note on why the glibc mmap threshold is pinned at its
  documented default) and a plain ``loss.backward()``: every op and every
  gradient accumulation allocates a fresh array, the tape is only
  reclaimed when the loss rebinds (the pre-PR configuration);
* ``pool`` -- the default configuration: pooled ``out=`` buffers, in-place
  gradient accumulation and fused optimizer updates, and
  ``loss.backward(free_graph=True)`` tape retirement.

Both legs record the full batch-loss sequence and a SHA-256 fingerprint of
the final parameters; the driver asserts they are *identical* -- the
memory plane changes where bytes live, never what they hold.  Peak RSS is
measured as the training high-water mark over the post-dataset-build
baseline, so the (identical) pipeline build cost cancels out.

Usage::

    PYTHONPATH=src python benchmarks/bench_memory.py [--quick]

Writes ``benchmarks/results/memory.txt`` and ``BENCH_memory.json``.  Full
mode enforces the PR floors on the scale-1.0 batch-128 leg: >=1.15x epoch
speedup and >=30% training peak-RSS reduction.  ``--quick`` (CI smoke)
only asserts bit-for-bit equality and a nonzero pool hit rate.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

BATCH_SIZE = 128  # paper_train_config().batch_size


# ---------------------------------------------------------------------------
# Subprocess leg: one memory-plane configuration, fresh interpreter.
# ---------------------------------------------------------------------------

def run_leg(leg: str, scale: float, steps: int) -> dict:
    from repro.experiments.harness import build_dataset
    from repro.core.model import O2SiteRec
    from repro.nn import init
    from repro.optim import Adam
    from repro.runtime import tune_allocator
    from repro.tensor import memprof

    tune_allocator()

    dataset, split = build_dataset("real", 0, scale)
    pairs = split.train_pairs
    targets = dataset.pair_targets(pairs)

    rng = np.random.default_rng(0)
    order = rng.permutation(len(pairs))
    batches = np.array_split(order, int(np.ceil(len(pairs) / BATCH_SIZE)))
    batch_data = [
        (np.ascontiguousarray(pairs[sel]), targets[sel]) for sel in batches
    ]

    init.seed(0)
    model = O2SiteRec(dataset, split=split)
    model.train()
    optimizer = Adam(model.parameters(), lr=1e-4)

    free_graph = leg == "pool"
    gc.collect()
    rss_after_build = memprof.current_rss_bytes()
    peak_after_build = memprof.peak_rss_bytes()

    losses, batch_times = [], []
    for i in range(steps):
        batch_pairs, batch_targets = batch_data[i % len(batch_data)]
        started = time.perf_counter()
        loss, _, _ = model.loss(batch_pairs, batch_targets)
        loss.backward(free_graph=free_graph)
        optimizer.step()
        optimizer.zero_grad()
        batch_times.append((time.perf_counter() - started) * 1e3)
        losses.append(float(loss.data))
        loss = None  # ref leg: the rebind is what frees the tape

    # The batch loop runs first, so the RSS high-water mark here is the
    # batch-128 training leg's peak -- the quantity the PR floor is on.
    peak_after_train = memprof.peak_rss_bytes()

    # Full-batch steps: the deepest tape -- a diagnostic for the scale>1.0
    # regime, not part of the floored batch-128 leg.
    full_times = []
    for _ in range(max(2, steps // 5)):
        started = time.perf_counter()
        loss, _, _ = model.loss(pairs, targets)
        loss.backward(free_graph=free_graph)
        optimizer.step()
        optimizer.zero_grad()
        full_times.append((time.perf_counter() - started) * 1e3)
        losses.append(float(loss.data))
        loss = None

    peak_end = memprof.peak_rss_bytes()
    fingerprint = hashlib.sha256(
        b"".join(
            np.ascontiguousarray(p.data).tobytes() for p in model.parameters()
        )
    ).hexdigest()
    snap = memprof.report()

    steady = lambda xs: float(np.mean(xs[-min(5, len(xs)):]))  # noqa: E731
    batch_step_ms = steady(batch_times)
    return {
        "leg": leg,
        "num_pairs": int(len(pairs)),
        "num_batches": len(batch_data),
        "losses": losses,
        "param_sha256": fingerprint,
        "batch_step_ms": batch_step_ms,
        "batch_epoch_s": batch_step_ms * len(batch_data) / 1e3,
        "full_step_ms": steady(full_times),
        "rss_after_build_mb": rss_after_build / 1e6,
        "peak_after_build_mb": peak_after_build / 1e6,
        "peak_end_mb": peak_end / 1e6,
        "train_peak_delta_mb": (peak_after_train - rss_after_build) / 1e6,
        "full_peak_delta_mb": (peak_end - rss_after_build) / 1e6,
        "pool": snap["pool"],
        "memprof_text": memprof.format_report(snap),
    }


# The ref leg re-creates the pre-memory-plane configuration (pool off,
# untuned glibc allocator), mirroring how bench_train_throughput.py pins
# its pre-optimisation reference leg.  ``O2_MALLOC_TUNE=0`` alone is not
# enough to hold that configuration: glibc's dynamic mmap threshold
# self-tunes upward on every large munmap, so after a few steps the
# "untuned" process has silently converged to the tuned allocator and the
# leg measures execution history instead of the reference path.  Pinning
# ``MALLOC_MMAP_THRESHOLD_`` to the documented 128 KiB default disables
# that feedback loop and keeps the reference allocation behaviour (every
# multi-megabyte temporary is a fresh mmap + kernel page-zeroing + munmap)
# stable and reproducible.
#
# Both legs pin ``O2_COMPILE_STEP=0``: this bench characterises the eager
# memory plane, and the step compiler (default-on since it landed) would
# otherwise pin captured tapes into the RSS numbers.  The compiled-vs-eager
# comparison lives in bench_compile.py.
LEG_ENV = {
    "ref": {
        "O2_BUFFER_POOL": "0",
        "O2_MALLOC_TUNE": "0",
        "MALLOC_MMAP_THRESHOLD_": "131072",
        "O2_NUM_THREADS": "1",
        "O2_MEM_PROFILE": "1",
        "O2_COMPILE_STEP": "0",
    },
    "pool": {
        "O2_BUFFER_POOL": "1",
        "O2_NUM_THREADS": "1",
        "O2_MEM_PROFILE": "1",
        "O2_COMPILE_STEP": "0",
    },
}


def spawn_leg(name: str, scale: float, steps: int) -> dict:
    return common.run_bench_leg(
        __file__, name, ["--scale", scale, "--steps", steps], env=LEG_ENV[name]
    )


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--leg", choices=sorted(LEG_ENV), help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--steps", type=int, default=None)
    args = parser.parse_args()

    if args.leg:
        print(json.dumps(run_leg(args.leg, args.scale, args.steps)))
        return 0

    quick = args.quick
    scale = args.scale if args.scale is not None else (0.3 if quick else 1.0)
    steps = args.steps if args.steps is not None else (6 if quick else 15)
    # Quick mode is a CI correctness smoke (tiny scale, shared runners):
    # it checks bitwise equality and pool engagement only, never the
    # performance floors.
    speedup_floor = None if quick else 1.15
    rss_floor = None if quick else 0.30

    legs = {name: spawn_leg(name, scale, steps) for name in ("ref", "pool")}
    ref, pooled = legs["ref"], legs["pool"]

    identical = (
        ref["losses"] == pooled["losses"]
        and ref["param_sha256"] == pooled["param_sha256"]
    )
    speedup = ref["batch_epoch_s"] / pooled["batch_epoch_s"]
    speedup_full = ref["full_step_ms"] / pooled["full_step_ms"]
    ref_delta = max(ref["train_peak_delta_mb"], 1e-9)
    rss_reduction = 1.0 - pooled["train_peak_delta_mb"] / ref_delta
    hit_rate = pooled["pool"]["hit_rate"]

    lines = [
        "Memory plane: pooled buffers + tape retirement vs reference allocation",
        f"mode={'quick' if quick else 'full'}  scale={scale}  "
        f"batch_size={BATCH_SIZE}  pairs={pooled['num_pairs']}  "
        f"batches/epoch={pooled['num_batches']}  steps={steps}",
        "",
        f"{'leg':<6} {'batch step':>12} {'batch epoch':>12} {'full step':>11} "
        f"{'train peak RSS':>15} {'full peak RSS':>14}",
    ]
    for name in ("ref", "pool"):
        leg = legs[name]
        lines.append(
            f"{name:<6} {leg['batch_step_ms']:>9.1f} ms "
            f"{leg['batch_epoch_s']:>10.2f} s {leg['full_step_ms']:>8.1f} ms"
            f" {leg['train_peak_delta_mb']:>12.1f} MB"
            f" {leg['full_peak_delta_mb']:>11.1f} MB"
        )
    lines += [
        "",
        f"speedup: batched epoch {speedup:.2f}x"
        + (f" (floor {speedup_floor:.2f}x)" if speedup_floor else "")
        + f", full-batch step {speedup_full:.2f}x",
        f"train peak-RSS reduction: {rss_reduction * 100:.1f}%"
        + (f" (floor {rss_floor * 100:.0f}%)" if rss_floor else ""),
        f"pool hit rate: {hit_rate:.3f}  "
        f"(hits={pooled['pool']['hits']} misses={pooled['pool']['misses']})",
        f"bit-for-bit identical losses + final params: {identical}",
        "",
        "pool-leg allocation profile:",
        pooled["memprof_text"],
        "",
        "ref-leg allocation profile:",
        ref["memprof_text"],
    ]
    text = "\n".join(lines)
    print(text)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "memory.txt").write_text(text + "\n")
    payload = {
        "mode": "quick" if quick else "full",
        "scale": scale,
        "batch_size": BATCH_SIZE,
        "steps": steps,
        "floors": {"speedup": speedup_floor, "rss_reduction": rss_floor},
        "leg_env": LEG_ENV,
        "ref": {k: v for k, v in ref.items() if k != "memprof_text"},
        "pool": {k: v for k, v in pooled.items() if k != "memprof_text"},
        "speedup": {"batch_epoch": speedup, "full_step": speedup_full},
        "rss_reduction": rss_reduction,
        "identical": identical,
    }
    (ROOT / "BENCH_memory.json").write_text(json.dumps(payload, indent=2) + "\n")

    if not identical:
        print("FAIL: pooled-path training diverged from the reference path")
        return 1
    if hit_rate <= 0.0:
        print("FAIL: buffer pool never hit -- pooling is not engaged")
        return 1
    if speedup_floor is not None and speedup < speedup_floor:
        print(f"FAIL: epoch speedup {speedup:.2f}x below {speedup_floor:.2f}x")
        return 1
    if rss_floor is not None and rss_reduction < rss_floor:
        print(
            f"FAIL: peak-RSS reduction {rss_reduction * 100:.1f}% below "
            f"{rss_floor * 100:.0f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
