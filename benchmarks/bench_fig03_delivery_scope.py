"""Fig. 3: average delivery scope (farthest delivery distance) per period.

Paper shape: scopes shrink at the noon and evening rush hours (pressure
control) and relax in the afternoon.
"""

from common import emit, motivation_city, run_once

from repro.experiments import delivery_scope_by_period, format_series


def test_fig03_delivery_scope(benchmark):
    sim = motivation_city()
    data = run_once(benchmark, lambda: delivery_scope_by_period(sim))

    text = format_series(
        "Fig. 3 -- Average delivery scope per period (metres)",
        "period",
        data["periods"].tolist(),
        {"scope_m": data["scope_m"]},
        fmt="{:.0f}",
    )
    emit("fig03", text)

    scope = dict(zip(data["periods"], data["scope_m"]))
    assert scope["noon rush"] < scope["afternoon"]
    assert scope["evening rush"] < scope["afternoon"]
