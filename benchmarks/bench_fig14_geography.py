"""Fig. 14: impact of the geographic distribution of regions.

Paper shape: downtown candidates score slightly above the all-region
average; suburbs score worst (sparse data, weak features).

Reproduced: downtown >= average.  NOT reproduced: the suburb penalty --
our synthetic suburbs are sparse but *regular* (demand concentrates on the
few active sites, which the model identifies easily), whereas the paper's
suburban difficulty comes from noisy, irregular real-world data the
simulator does not model.  See EXPERIMENTS.md.
"""

from dataclasses import replace

from common import bench_harness, emit, run_once

from repro.experiments import GEOGRAPHY_GROUPS, format_bar_groups, geography_results


def test_fig14_geography(benchmark):
    # A wider city than the other benches: the suburb group needs enough
    # candidate regions per store type to be rankable at all.
    config = replace(bench_harness(), scale=max(bench_harness().scale, 0.75))
    results = run_once(benchmark, lambda: geography_results(config=config))

    emit(
        "fig14",
        format_bar_groups(
            "Fig. 14 -- NDCG@3 by geographic distribution of candidates",
            list(GEOGRAPHY_GROUPS),
            {"O2-SiteRec": [results[g] for g in GEOGRAPHY_GROUPS]},
        ),
    )

    import math

    assert not math.isnan(results["average"])
    assert not math.isnan(results["downtown"])
    # The reproducible part of the paper's shape: downtown candidates rank
    # at least as well as the all-region average.
    assert results["downtown"] >= results["average"] - 0.02
