"""Table IV: main comparison on the (noisier, sparser) simulation dataset.

Paper shape: O2-SiteRec still beats every baseline, but absolute scores are
lower than on the real-world data (noise + sparsity).  Adaption-only rows
and the reduced metric set, as in the paper.
"""

from common import bench_harness, emit, run_once

from repro.experiments import compare_models, format_comparison_table

METRICS = ("NDCG@3", "NDCG@5", "Precision@3", "Precision@5")


def test_table04_main_sim(benchmark):
    config = bench_harness()
    table = run_once(
        benchmark,
        lambda: compare_models(
            "sim", config=config, settings=("adaption",), metrics=METRICS
        ),
    )

    emit(
        "table04",
        format_comparison_table(
            table,
            title=(
                "Table IV -- Performance comparison on the simulation "
                f"stand-in ({config.rounds} rounds, scale {config.scale})"
            ),
            metrics=METRICS,
        ),
    )

    ours = table.rows["O2-SiteRec"]
    beaten = sum(
        ours.mean("NDCG@3") > row.mean("NDCG@3")
        for key, row in table.rows.items()
        if key != "O2-SiteRec"
    )
    assert beaten >= len(table.rows) - 2, "O2-SiteRec must lead the table"
