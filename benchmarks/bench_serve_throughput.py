"""Serving throughput: the scale-out plane vs the single-process baseline.

Four measurement layers, every serving leg in a fresh subprocess so socket
state, page cache warmth and allocator state cannot leak between
configurations (the BENCH_pipeline driver convention):

1. *Snapshot plane* -- ``model.predict`` vs ``snapshot.predict`` on one
   pair (the PR-1 acceptance row, kept for continuity), plus snapshot
   *open* time: ``.npz`` load (unzip + copy + fingerprint) vs the
   zero-copy ``.arena`` mmap open, on a deploy-sized snapshot.  The two
   formats must produce bit-for-bit identical scores.
2. *Baseline HTTP leg* -- one process, one TCP connection per request:
   the pre-PR serving plane (BaseHTTPRequestHandler defaulted to
   HTTP/1.0, so every query paid connection setup + a handler-thread
   spawn; that dominated small-query latency).
3. *Worker sweep* -- ``WorkerPool`` with 1/2/4 pre-forked workers on the
   shared arena snapshot, clients on persistent (HTTP/1.1 keep-alive)
   connections.  The 4-worker leg also exercises fleet-wide hot swap via
   a manifest bump mid-run.
4. *Floors* -- arena open >= 20x npz (full; 4x quick), 4-worker
   aggregate QPS >= 2.5x the reference leg (full; 1.3x quick).  On
   multi-core hosts the reference is the 1-worker leg (true horizontal
   scaling); on single-core hosts -- where four workers time-share one
   CPU and cannot beat one worker -- it is the pre-PR baseline leg, and
   the JSON records which basis was used (``speedup.basis``).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py [--quick]

Writes ``benchmarks/results/serve.txt`` and ``BENCH_serve.json`` at the
repo root (QPS, p50/p99 latency, snapshot-open times, per-worker RSS).
Exits non-zero when any equality pin or floor fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import common

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

QUERY_COMBOS = 16  # distinct (type, candidate-window) queries in rotation
CANDIDATES_PER_QUERY = 32


# ---------------------------------------------------------------------------
# Subprocess legs.
# ---------------------------------------------------------------------------

def _percentiles_ms(latencies):
    import numpy as np

    ordered = np.sort(np.asarray(latencies))
    return (
        float(np.percentile(ordered, 50) * 1e3),
        float(np.percentile(ordered, 99) * 1e3),
    )


def run_prepare_leg(args) -> dict:
    """Build the bench snapshots once; every serving leg loads from disk.

    * ``serve.npz`` / ``serve.arena`` / ``swap.arena`` -- the paper-scale
      snapshot (default embedding dim) the HTTP legs serve; the swap copy
      feeds the hot-swap exercise.
    * ``deploy.npz`` / ``deploy.arena`` -- a deploy-sized snapshot (wide
      embeddings) for the open-time comparison, where container format
      differences actually show: npz load is unzip + copy + fingerprint
      over every byte, arena open is a header read + mmap.
    """
    from common import cached_dataset

    from repro.core import O2SiteRec, O2SiteRecConfig
    from repro.nn import init
    from repro.serve import ModelSnapshot

    out = Path(args.dir)
    dataset, split = cached_dataset("real", seed=0, scale=args.scale)

    init.seed(11)
    model = O2SiteRec(dataset, split)  # untrained weights; latency-identical
    snapshot = ModelSnapshot.from_model(model)
    snapshot.save(out / "serve.npz")
    snapshot.save(out / "serve.arena", format="arena")
    snapshot.save(out / "swap.arena", format="arena")

    # PR-1 continuity rows: cold propagation vs frozen-snapshot scoring.
    import numpy as np

    pair = np.stack(
        [snapshot.candidate_regions()[:1], np.zeros(1, dtype=np.int64)], axis=1
    )
    assert np.array_equal(model.predict(pair), snapshot.predict(pair))
    cold = [0.0] * 5
    for i in range(len(cold)):
        started = time.perf_counter()
        model.predict(pair)
        cold[i] = time.perf_counter() - started
    snap = [0.0] * 200
    for i in range(len(snap)):
        started = time.perf_counter()
        snapshot.predict(pair)
        snap[i] = time.perf_counter() - started

    init.seed(11)
    deploy_model = O2SiteRec(
        dataset, split, O2SiteRecConfig(embedding_dim=args.deploy_dim)
    )
    deploy = ModelSnapshot.from_model(deploy_model)
    deploy.save(out / "deploy.npz")
    deploy.save(out / "deploy.arena", format="arena")

    cold_p50, _ = _percentiles_ms(cold)
    snap_p50, _ = _percentiles_ms(snap)
    return {
        "dataset": (
            f"{snapshot.num_store_nodes} store nodes, {snapshot.num_types} "
            f"types, d2={snapshot.embedding_dim}, {snapshot.num_periods} periods"
        ),
        "cold_p50_ms": cold_p50,
        "snap_p50_ms": snap_p50,
        "snap_speedup": cold_p50 / snap_p50,
        "deploy_dim": args.deploy_dim,
        "deploy_npz_mb": (out / "deploy.npz").stat().st_size / 2**20,
        "deploy_arena_mb": (out / "deploy.arena").stat().st_size / 2**20,
    }


def run_open_leg(args) -> dict:
    """Snapshot open time, npz vs arena, plus the bit-for-bit score pin."""
    import numpy as np

    from repro.serve import ModelSnapshot

    npz_path = Path(args.dir) / "deploy.npz"
    arena_path = Path(args.dir) / "deploy.arena"

    def time_open(path, reps):
        times = [0.0] * reps
        for i in range(reps):
            started = time.perf_counter()
            ModelSnapshot.load(path)
            times[i] = time.perf_counter() - started
        return float(np.median(times))

    reps = args.reps
    npz_s = time_open(npz_path, reps)
    arena_s = time_open(arena_path, reps)

    from_npz = ModelSnapshot.load(npz_path)
    from_arena = ModelSnapshot.load(arena_path)
    regions = from_npz.candidate_regions()
    pairs = np.stack(
        [
            np.tile(regions, from_npz.num_types),
            np.repeat(np.arange(from_npz.num_types, dtype=np.int64), len(regions)),
        ],
        axis=1,
    )
    equal = bool(
        np.array_equal(from_npz.predict(pairs), from_arena.predict(pairs))
    ) and from_npz.snapshot_id == from_arena.snapshot_id

    return {
        "npz_ms": npz_s * 1e3,
        "arena_ms": arena_s * 1e3,
        "speedup": npz_s / arena_s,
        "reps": reps,
        "equal": equal,
        "pairs_compared": int(pairs.shape[0]),
    }


def _query_paths(snapshot_path: str) -> list:
    """The rotating query mix: popular queries, server answers from cache
    after first sight -- the read-heavy regime this plane is built for."""
    from repro.serve import ModelSnapshot

    snapshot = ModelSnapshot.load(snapshot_path)
    regions = snapshot.candidate_regions()
    paths = []
    for combo in range(QUERY_COMBOS):
        store_type = combo % snapshot.num_types
        offset = (combo * 7) % max(len(regions) - CANDIDATES_PER_QUERY, 1)
        window = regions[offset:offset + CANDIDATES_PER_QUERY]
        joined = ",".join(str(int(r)) for r in window)
        paths.append(f"/recommend?type={store_type}&k=3&candidates={joined}")
    return paths


def _client_load(port: int, paths: list, requests: int, threads: int,
                 keep_alive: bool):
    """Fire ``requests`` queries from ``threads`` clients; return
    (latencies, wall-clock QPS).  ``keep_alive=False`` opens a fresh TCP
    connection per request -- the pre-PR HTTP/1.0 cost model."""
    import http.client
    from concurrent.futures import ThreadPoolExecutor

    latencies = [0.0] * requests

    def run_client(worker: int) -> None:
        conn = None
        for i in range(worker, requests, threads):
            started = time.perf_counter()
            if conn is None:
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request(
                "GET",
                paths[i % len(paths)],
                headers={} if keep_alive else {"Connection": "close"},
            )
            response = conn.getresponse()
            body = response.read()
            if response.status != 200:
                raise RuntimeError(f"HTTP {response.status}: {body[:200]!r}")
            if not keep_alive:
                conn.close()
                conn = None
            latencies[i] = time.perf_counter() - started
        if conn is not None:
            conn.close()

    started = time.perf_counter()
    with ThreadPoolExecutor(threads) as pool:
        list(pool.map(run_client, range(threads)))
    elapsed = time.perf_counter() - started
    return latencies, requests / elapsed


def run_baseline_leg(args) -> dict:
    """Pre-PR plane: one process, one TCP connection per request."""
    import threading

    from repro.serve import RecommendationService, serve_http

    snapshot_path = str(Path(args.dir) / "serve.npz")
    paths = _query_paths(snapshot_path)
    with RecommendationService.from_snapshot_file(snapshot_path) as service:
        server = serve_http(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            _client_load(port, paths, len(paths), args.threads, False)  # warm
            latencies, qps = _client_load(
                port, paths, args.requests, args.threads, keep_alive=False
            )
        finally:
            server.shutdown()
            server.server_close()
    p50, p99 = _percentiles_ms(latencies)
    return {
        "procs": 1,
        "keep_alive": False,
        "qps": qps,
        "p50_ms": p50,
        "p99_ms": p99,
        "rss_bytes": [_self_rss()],
    }


def _self_rss():
    try:
        with open(f"/proc/{os.getpid()}/statm") as handle:
            return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def run_workers_leg(args) -> dict:
    """The new plane: ``--procs`` pre-forked workers, keep-alive clients.

    The widest leg also deploys a second snapshot fleet-wide mid-run via a
    manifest bump and requires every worker to cut over.
    """
    from repro.serve import ModelSnapshot
    from repro.serve.workers import WorkerPool

    leg_dir = Path(args.dir)
    arena_path = str(leg_dir / "serve.arena")
    paths = _query_paths(arena_path)
    manifest = leg_dir / f"manifest-{args.procs}.json"

    pool = WorkerPool(
        arena_path, procs=args.procs, manifest_path=manifest,
        poll_interval_s=0.1,
    )
    started = time.perf_counter()
    with pool:
        startup_s = time.perf_counter() - started
        _client_load(pool.port, paths, len(paths), args.threads, True)  # warm
        latencies, qps = _client_load(
            pool.port, paths, args.requests, args.threads, keep_alive=True
        )

        hot_swap_ok = None
        if args.hot_swap:
            swap_path = str(leg_dir / "swap.arena")
            swap_id = ModelSnapshot.load(swap_path).snapshot_id
            pool.reload(swap_path)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if pool.shared.counter("reloads") >= args.procs:
                    break
                time.sleep(0.05)
            # Every worker cut over, queries still flow, and the deployed
            # manifest points at the new snapshot.
            _client_load(pool.port, paths, len(paths), args.threads, True)
            stats_after = pool.stats()
            hot_swap_ok = (
                stats_after["counters"]["reloads"] == args.procs
                and stats_after["counters"]["reload_errors"] == 0
                and stats_after["manifest"]["snapshot"] == swap_path
                and swap_id is not None
            )

        stats = pool.stats()
    p50, p99 = _percentiles_ms(latencies)
    return {
        "procs": args.procs,
        "keep_alive": True,
        "qps": qps,
        "p50_ms": p50,
        "p99_ms": p99,
        "startup_s": startup_s,
        "rss_bytes": stats["rss_bytes"],
        "per_worker_queries": stats["per_worker_queries"],
        "reuseport": stats["reuseport"],
        "hot_swap_ok": hot_swap_ok,
    }


LEGS = {
    "prepare": run_prepare_leg,
    "open": run_open_leg,
    "baseline": run_baseline_leg,
    "workers": run_workers_leg,
}


def spawn_leg(name: str, extra: list) -> dict:
    return common.run_bench_leg(__file__, name, extra)


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode")
    parser.add_argument("--leg", choices=sorted(LEGS), help=argparse.SUPPRESS)
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--deploy-dim", type=int, default=None)
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--procs", type=int, default=1)
    parser.add_argument("--hot-swap", action="store_true")
    args = parser.parse_args()

    if args.leg:
        print(json.dumps(LEGS[args.leg](args)))
        return 0

    quick = args.quick
    scale = args.scale if args.scale is not None else (0.35 if quick else 0.7)
    # Must be divisible by the default node_heads=5.
    deploy_dim = args.deploy_dim or (120 if quick else 240)
    reps = args.reps or (5 if quick else 15)
    requests = args.requests or (240 if quick else 1200)
    threads = args.threads or (4 if quick else 8)
    worker_counts = (1, 2, 4)
    cpu_count = os.cpu_count() or 1
    floor_open = 4.0 if quick else 20.0
    floor_qps = 1.3 if quick else 2.5

    with tempfile.TemporaryDirectory(
        prefix=".bench-serve-", dir=str(ROOT)
    ) as tmp_dir:
        common = ["--dir", tmp_dir, "--threads", str(threads)]
        prepare = spawn_leg(
            "prepare",
            ["--dir", tmp_dir, "--scale", str(scale),
             "--deploy-dim", str(deploy_dim)],
        )
        opened = spawn_leg("open", ["--dir", tmp_dir, "--reps", str(reps)])
        baseline = spawn_leg(
            "baseline", common + ["--requests", str(requests)]
        )
        sweep = {}
        for procs in worker_counts:
            extra = common + ["--requests", str(requests), "--procs", str(procs)]
            if procs == max(worker_counts):
                extra.append("--hot-swap")
            sweep[procs] = spawn_leg("workers", extra)

    top = max(worker_counts)
    vs_one = sweep[top]["qps"] / sweep[1]["qps"]
    vs_baseline = sweep[top]["qps"] / baseline["qps"]
    # Horizontal scaling needs cores to scale onto: on a single-CPU host
    # four workers time-share one core, so the floor is asserted against
    # the pre-PR baseline plane there (and says so in the JSON).
    basis = "1_worker" if cpu_count >= top else "baseline"
    asserted = vs_one if basis == "1_worker" else vs_baseline
    hot_swap_ok = sweep[top]["hot_swap_ok"]

    def fmt_rss(leg):
        sizes = [s for s in leg["rss_bytes"] if s]
        if not sizes:
            return "n/a"
        return f"{sum(sizes) / len(sizes) / 2**20:.0f}MB/worker"

    lines = [
        "Serving throughput -- scale-out plane (arena + workers + keep-alive)",
        f"mode={'quick' if quick else 'full'}  city: real preset "
        f"({prepare['dataset']})  cpu_count={cpu_count}",
        "",
        f"snapshot plane: cold model.predict {prepare['cold_p50_ms']:.2f}ms "
        f"vs snapshot.predict {prepare['snap_p50_ms']:.3f}ms "
        f"({prepare['snap_speedup']:.0f}x, threshold 10x)",
        f"snapshot open (d2={prepare['deploy_dim']}, "
        f"{prepare['deploy_npz_mb']:.1f}MB npz / "
        f"{prepare['deploy_arena_mb']:.1f}MB arena): "
        f"npz {opened['npz_ms']:.2f}ms vs arena {opened['arena_ms']:.3f}ms "
        f"({opened['speedup']:.0f}x, floor {floor_open:.0f}x), scores "
        f"{'bit-for-bit equal' if opened['equal'] else 'DIVERGE'} "
        f"over {opened['pairs_compared']} pairs",
        "",
        f"{'leg':<30}{'QPS':>9}{'p50 ms':>9}{'p99 ms':>9}   RSS",
        f"{'baseline 1 proc, conn/request':<30}{baseline['qps']:>9.0f}"
        f"{baseline['p50_ms']:>9.3f}{baseline['p99_ms']:>9.3f}   "
        f"{fmt_rss(baseline)}",
    ]
    for procs in worker_counts:
        leg = sweep[procs]
        label = f"workers={procs}, keep-alive"
        lines.append(
            f"{label:<30}{leg['qps']:>9.0f}{leg['p50_ms']:>9.3f}"
            f"{leg['p99_ms']:>9.3f}   {fmt_rss(leg)}"
        )
    lines += [
        "",
        f"keep-alive before/after (1 proc): {baseline['qps']:.0f} -> "
        f"{sweep[1]['qps']:.0f} QPS "
        f"({sweep[1]['qps'] / baseline['qps']:.2f}x; HTTP/1.0 paid TCP "
        "setup + a handler-thread spawn per query)",
        f"aggregate QPS at {top} workers: {vs_one:.2f}x vs 1 worker, "
        f"{vs_baseline:.2f}x vs pre-PR baseline "
        f"(floor {floor_qps:.1f}x on {basis}, cpu_count={cpu_count})",
        f"hot swap at {top} workers: "
        f"{'all workers cut over' if hot_swap_ok else 'FAILED'}",
    ]
    text = "\n".join(lines)
    print(text)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve.txt").write_text(text + "\n")
    payload = {
        "mode": "quick" if quick else "full",
        "cpu_count": cpu_count,
        "scale": scale,
        "requests": requests,
        "threads": threads,
        "query_combos": QUERY_COMBOS,
        "candidates_per_query": CANDIDATES_PER_QUERY,
        "prepare": prepare,
        "open": opened,
        "baseline": baseline,
        "workers": {str(procs): leg for procs, leg in sweep.items()},
        "speedup": {
            "qps_4w_vs_1w": vs_one,
            "qps_4w_vs_baseline": vs_baseline,
            "keep_alive_1w_vs_baseline": sweep[1]["qps"] / baseline["qps"],
            "basis": basis,
            "asserted": asserted,
        },
        "floors": {"open": floor_open, "qps": floor_qps},
        "hot_swap_ok": hot_swap_ok,
    }
    (ROOT / "BENCH_serve.json").write_text(json.dumps(payload, indent=2) + "\n")

    if not opened["equal"]:
        print("FAIL: arena-backed scores diverge from npz-backed scores")
        return 1
    if prepare["snap_speedup"] < 10.0:
        print(
            f"FAIL: snapshot speedup {prepare['snap_speedup']:.1f}x "
            "below the 10x PR-1 threshold"
        )
        return 1
    if opened["speedup"] < floor_open:
        print(
            f"FAIL: arena open {opened['speedup']:.1f}x below "
            f"{floor_open:.0f}x floor"
        )
        return 1
    if not hot_swap_ok:
        print("FAIL: fleet-wide hot swap did not reach every worker")
        return 1
    if asserted < floor_qps:
        print(
            f"FAIL: {top}-worker QPS {asserted:.2f}x ({basis}) below "
            f"{floor_qps:.1f}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
